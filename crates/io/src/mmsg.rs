//! Batched UDP send/receive: `sendmmsg`/`recvmmsg` on Linux, a portable
//! one-at-a-time fallback elsewhere.
//!
//! The syscall is the unit of datapath cost: at loopback rates the
//! kernel crossing dominates per-datagram work, so handing the kernel
//! *vectors* of datagrams is what turns the pool-backed egress
//! ([`mpquic_core::Connection::poll_transmit_batch`]) into wire
//! throughput. This module is the platform seam:
//!
//! * [`send_segments`] fans one GSO-shaped segment train (a payload
//!   split at `segment_size` boundaries, see
//!   [`mpquic_core::Transmit::segment_size`]) out to the kernel. On
//!   Linux it first tries real UDP GSO (`UDP_SEGMENT`): one `sendmsg`
//!   carries the whole train and the kernel segments it *once*, below
//!   the per-datagram send path — this is where most of the speedup
//!   lives, since on loopback the per-datagram kernel work dominates
//!   the bare syscall cost. Kernels or paths without GSO fall back to
//!   one `sendmmsg` per train, and non-Linux platforms to one
//!   `send_to` per segment.
//! * [`recv_batch`] fills many caller buffers per call — one `recvmmsg`
//!   on Linux, repeated `recv_from` elsewhere.
//!
//! Both return `(datagrams, syscalls)` so the caller's telemetry
//! (batch-size histogram, syscalls saved) reflects what actually
//! happened on the running platform rather than an assumed one.
//!
//! The standard library exposes neither syscall and the workspace is
//! dependency-free, so the Linux half carries its own `extern "C"`
//! declarations and `#[repr(C)]` layouts (matching `struct msghdr`,
//! `struct mmsghdr`, `struct iovec` and the `sockaddr` family on glibc
//! and musl). Those layouts are shared with the io_uring backend
//! ([`crate::uring`]), which submits the same `msghdr` shapes through
//! SQEs instead of direct syscalls. All unsafe code in the crate lives
//! behind the scoped `#[allow(unsafe_code)]` here and in `uring`.
//!
//! This module is also the middle rung of the backend ladder: the
//! [`crate::backend::MmsgBackend`] wraps these functions behind the
//! [`crate::backend::Backend`] trait.

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Most datagrams a single batched syscall will carry (the syscall
/// arrays in [`MmsgScratch`] are sized to this; `IOV_MAX` is far
/// larger).
pub const MAX_BATCH: usize = 64;

/// True when the running platform batches natively (one syscall per
/// batch) rather than falling back to one syscall per datagram.
pub const NATIVE_BATCH: bool = cfg!(target_os = "linux");

/// Reusable syscall-argument arrays. One lives in the
/// [`crate::socket::SocketRegistry`]; after the first few calls its
/// vectors reach their high-water capacity and the datapath stops
/// allocating.
#[derive(Debug, Default)]
pub struct MmsgScratch {
    inner: imp::Scratch,
}

/// Sends the segments of `payload` (chunks of `segment_size` bytes; the
/// final one may be short) from `socket` to `remote`.
///
/// Returns `(datagrams_sent, syscalls_used)`. A partial send (the
/// kernel accepted only a prefix) returns the short count; the caller
/// retries the remainder. An immediately-full socket buffer surfaces as
/// `WouldBlock`.
pub fn send_segments(
    socket: &UdpSocket,
    remote: &SocketAddr,
    payload: &[u8],
    segment_size: usize,
    scratch: &mut MmsgScratch,
) -> io::Result<(usize, usize)> {
    if payload.is_empty() {
        return Ok((0, 0));
    }
    let segment_size = if segment_size == 0 {
        payload.len()
    } else {
        segment_size
    };
    imp::send_segments(socket, remote, payload, segment_size, &mut scratch.inner)
}

/// Receives up to `bufs.len()` datagrams from `socket`, one per buffer
/// (each buffer must be pre-sized to the largest acceptable datagram;
/// its length is not changed). Appends `(remote, len)` to `out` for
/// each datagram, in buffer order.
///
/// Returns `(datagrams_received, syscalls_used)`; an empty socket
/// surfaces as `WouldBlock`.
pub fn recv_batch(
    socket: &UdpSocket,
    bufs: &mut [Vec<u8>],
    out: &mut Vec<(SocketAddr, usize)>,
    scratch: &mut MmsgScratch,
) -> io::Result<(usize, usize)> {
    if bufs.is_empty() {
        return Ok((0, 0));
    }
    imp::recv_batch(socket, bufs, out, &mut scratch.inner)
}

/// Grows `socket`'s kernel send and receive buffers toward `bytes`,
/// best-effort. A multi-connection endpoint funnels every client's
/// traffic through one listen socket; at the default ~208 KiB receive
/// buffer a brief demux-thread stall (a scheduling quantum on a loaded
/// box) overflows it and converts a healthy burst into mass loss and
/// RTO backoff. The kernel clamps the request to `rmem_max`/`wmem_max`,
/// so a refusal or an unprivileged clamp is not an error — the socket
/// simply keeps the size the kernel allows.
pub fn set_buffer_sizes(socket: &UdpSocket, bytes: usize) {
    imp::set_buffer_sizes(socket, bytes);
}

impl MmsgScratch {
    /// True once this scratch's GSO probe flipped to unsupported (the
    /// sticky `UDP_SEGMENT` fallback; always `false` off-Linux). The
    /// [`crate::backend::MmsgBackend`] watches this to count rung drops.
    pub fn gso_unsupported(&self) -> bool {
        self.inner.gso_unsupported()
    }
}

/// The kernel `msghdr`/`sockaddr` layouts, shared with the io_uring
/// backend which builds the same structures for its SQEs.
#[cfg(target_os = "linux")]
pub(crate) use imp::{
    decode_sockaddr, encode_sockaddr, GsoControl, IoVec, MsgHdr, SockaddrStorage, MAX_GSO_BYTES,
    UDP_MAX_SEGMENTS,
};

/// Linux: real `sendmmsg`/`recvmmsg` through hand-declared FFI.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use super::{SocketAddr, UdpSocket, MAX_BATCH};
    use crate::probe::ProbeState;
    use std::io;
    use std::net::{Ipv6Addr, SocketAddrV6};
    use std::os::fd::AsRawFd;

    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;

    /// `SOL_UDP` / `UDP_SEGMENT`: socket-level UDP GSO (Linux ≥ 4.18).
    const SOL_UDP: i32 = 17;
    const UDP_SEGMENT: i32 = 103;
    /// The kernel refuses GSO trains beyond these bounds.
    pub(crate) const UDP_MAX_SEGMENTS: usize = 64;
    pub(crate) const MAX_GSO_BYTES: usize = 65_507;

    /// `struct iovec`.
    #[repr(C)]
    #[derive(Debug)]
    pub(crate) struct IoVec {
        pub(crate) base: *mut std::ffi::c_void,
        pub(crate) len: usize,
    }

    /// `struct msghdr` (glibc/musl layout; the compiler inserts the
    /// same padding after `namelen` and `flags` that the C definition
    /// carries on 64-bit targets).
    #[repr(C)]
    #[derive(Debug)]
    pub(crate) struct MsgHdr {
        pub(crate) name: *mut std::ffi::c_void,
        pub(crate) namelen: u32,
        pub(crate) iov: *mut IoVec,
        pub(crate) iovlen: usize,
        pub(crate) control: *mut std::ffi::c_void,
        pub(crate) controllen: usize,
        pub(crate) flags: i32,
    }

    /// `struct mmsghdr`.
    #[repr(C)]
    #[derive(Debug)]
    pub(super) struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    /// `struct sockaddr_storage`: opaque bytes, 8-byte aligned, large
    /// enough for any address family.
    #[repr(C, align(8))]
    #[derive(Debug, Clone, Copy)]
    pub(crate) struct SockaddrStorage {
        data: [u8; 128],
    }

    impl Default for SockaddrStorage {
        fn default() -> SockaddrStorage {
            SockaddrStorage { data: [0; 128] }
        }
    }

    /// `SOL_SOCKET` / `SO_SNDBUF` / `SO_RCVBUF` for the buffer-size knob.
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;

    extern "C" {
        fn sendmmsg(sockfd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn recvmmsg(
            sockfd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut std::ffi::c_void,
        ) -> i32;
        fn sendmsg(sockfd: i32, msg: *const MsgHdr, flags: i32) -> isize;
        fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }

    pub(super) fn set_buffer_sizes(socket: &UdpSocket, bytes: usize) {
        let fd = socket.as_raw_fd();
        let value = bytes.min(i32::MAX as usize) as i32;
        for opt in [SO_RCVBUF, SO_SNDBUF] {
            // SAFETY: `value` lives across the call and `optlen` matches
            // its size. Failure (e.g. a tightened rmem_max) is ignored:
            // the socket keeps whatever size the kernel granted.
            let _ = unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    opt,
                    &value as *const i32 as *const std::ffi::c_void,
                    std::mem::size_of::<i32>() as u32,
                )
            };
        }
    }

    #[derive(Debug)]
    pub(super) struct Scratch {
        hdrs: Vec<MMsgHdr>,
        iovs: Vec<IoVec>,
        addrs: Vec<SockaddrStorage>,
        /// Sticky `UDP_SEGMENT` probe: once unsupported, every later
        /// train goes via `sendmmsg` (shared fallback machinery with
        /// the backend ladder, see [`crate::probe`]).
        gso: ProbeState,
    }

    impl Default for Scratch {
        fn default() -> Scratch {
            Scratch {
                hdrs: Vec::new(),
                iovs: Vec::new(),
                addrs: Vec::new(),
                gso: ProbeState::new("UDP GSO"),
            }
        }
    }

    impl Scratch {
        pub(super) fn gso_unsupported(&self) -> bool {
            self.gso.is_unsupported()
        }
    }

    /// `struct cmsghdr` (64-bit glibc/musl layout).
    #[repr(C)]
    #[derive(Debug)]
    pub(crate) struct CmsgHdr {
        len: usize,
        level: i32,
        ty: i32,
    }

    /// A control buffer carrying exactly one `UDP_SEGMENT` cmsg:
    /// `CMSG_SPACE(sizeof(u16))` = 24 bytes on 64-bit, header followed
    /// by the segment size and alignment padding.
    ///
    /// Carrying the segment size per *call* (instead of `setsockopt` on
    /// the fd) keeps the option off the socket itself, which matters
    /// once several shards send through `try_clone`d handles of one
    /// socket: fd-level state set by one thread would silently
    /// re-segment (or un-segment) another thread's in-flight train.
    #[repr(C, align(8))]
    #[derive(Debug)]
    pub(crate) struct GsoControl {
        hdr: CmsgHdr,
        seg: u16,
        _pad: [u8; 6],
    }

    impl GsoControl {
        /// `CMSG_LEN(sizeof(u16))`: header plus payload, no tail pad.
        const CMSG_LEN: usize = std::mem::size_of::<CmsgHdr>() + std::mem::size_of::<u16>();

        pub(crate) fn new(segment_size: usize) -> GsoControl {
            GsoControl {
                hdr: CmsgHdr {
                    len: GsoControl::CMSG_LEN,
                    level: SOL_UDP,
                    ty: UDP_SEGMENT,
                },
                seg: segment_size as u16,
                _pad: [0; 6],
            }
        }
    }

    /// One GSO send: the whole train in a single `sendmsg` with a
    /// `UDP_SEGMENT` control message, segmented once inside the kernel.
    /// `Ok(None)` means GSO is unusable here and the caller should fall
    /// back to `sendmmsg`.
    fn send_gso(
        socket: &UdpSocket,
        remote: &SocketAddr,
        payload: &[u8],
        segment_size: usize,
        segments: usize,
        s: &mut Scratch,
    ) -> io::Result<Option<(usize, usize)>> {
        let fd = socket.as_raw_fd();
        let mut addr = SockaddrStorage::default();
        let namelen = encode_sockaddr(remote, &mut addr);
        let mut iov = IoVec {
            base: payload.as_ptr() as *mut std::ffi::c_void,
            len: payload.len(),
        };
        let mut control = GsoControl::new(segment_size);
        let hdr = MsgHdr {
            name: &mut addr as *mut SockaddrStorage as *mut std::ffi::c_void,
            namelen,
            iov: &mut iov as *mut IoVec,
            iovlen: 1,
            control: &mut control as *mut GsoControl as *mut std::ffi::c_void,
            controllen: std::mem::size_of::<GsoControl>(),
            flags: 0,
        };
        // SAFETY: `addr`, `iov`, `control` and `payload` all outlive
        // the call, and `controllen` matches the control buffer's size.
        let ret = unsafe { sendmsg(fd, &hdr, 0) };
        if ret >= 0 {
            // UDP sends are atomic: success means the whole train went.
            return Ok(Some((segments, 1)));
        }
        let e = io::Error::last_os_error();
        // EINVAL/EIO/EMSGSIZE/EOPNOTSUPP (see `probe::UNSUPPORTED_ERRNOS`):
        // this socket or device cannot GSO. Let the caller use the
        // sendmmsg path from now on; nothing to undo since the fd itself
        // was never touched.
        if s.gso.observe(&e, "sendmmsg") {
            Ok(None)
        } else {
            Err(e)
        }
    }

    // SAFETY: the raw pointers inside the scratch arrays point into the
    // scratch itself or into a caller's payload, and only within one
    // `send_segments`/`recv_batch` call — every call clears and rebuilds
    // them before the syscall reads them. Between calls they are dead
    // values, so moving the scratch to another thread aliases nothing.
    unsafe impl Send for Scratch {}

    /// Writes `addr` into `out` in kernel wire layout; returns the
    /// `sockaddr` length to pass as `msg_namelen`.
    pub(crate) fn encode_sockaddr(addr: &SocketAddr, out: &mut SockaddrStorage) -> u32 {
        out.data = [0; 128];
        match addr {
            SocketAddr::V4(v4) => {
                // sockaddr_in: family, port (BE), addr (BE), zero pad.
                let family = AF_INET.to_ne_bytes();
                let port = v4.port().to_be_bytes();
                let ip = v4.ip().octets();
                let src = family.iter().chain(port.iter()).chain(ip.iter());
                for (dst, byte) in out.data.iter_mut().zip(src) {
                    *dst = *byte;
                }
                16
            }
            SocketAddr::V6(v6) => {
                // sockaddr_in6: family, port (BE), flowinfo, addr, scope.
                let family = AF_INET6.to_ne_bytes();
                let port = v6.port().to_be_bytes();
                let flow = v6.flowinfo().to_be_bytes();
                let ip = v6.ip().octets();
                let scope = v6.scope_id().to_ne_bytes();
                let src = family
                    .iter()
                    .chain(port.iter())
                    .chain(flow.iter())
                    .chain(ip.iter())
                    .chain(scope.iter());
                for (dst, byte) in out.data.iter_mut().zip(src) {
                    *dst = *byte;
                }
                28
            }
        }
    }

    /// Parses a kernel-written `sockaddr` back into a `SocketAddr`.
    pub(crate) fn decode_sockaddr(storage: &SockaddrStorage) -> Option<SocketAddr> {
        let mut it = storage.data.iter().copied();
        let family = u16::from_ne_bytes([it.next()?, it.next()?]);
        match family {
            AF_INET => {
                let port = u16::from_be_bytes([it.next()?, it.next()?]);
                let ip = [it.next()?, it.next()?, it.next()?, it.next()?];
                Some(SocketAddr::from((ip, port)))
            }
            AF_INET6 => {
                let port = u16::from_be_bytes([it.next()?, it.next()?]);
                let flow = u32::from_be_bytes([it.next()?, it.next()?, it.next()?, it.next()?]);
                let mut ip = [0u8; 16];
                for slot in ip.iter_mut() {
                    *slot = it.next()?;
                }
                let scope = u32::from_ne_bytes([it.next()?, it.next()?, it.next()?, it.next()?]);
                Some(SocketAddr::V6(SocketAddrV6::new(
                    Ipv6Addr::from(ip),
                    port,
                    flow,
                    scope,
                )))
            }
            _ => None,
        }
    }

    pub(super) fn send_segments(
        socket: &UdpSocket,
        remote: &SocketAddr,
        payload: &[u8],
        segment_size: usize,
        s: &mut Scratch,
    ) -> io::Result<(usize, usize)> {
        let segments = payload.len().div_ceil(segment_size);
        if segments > 1
            && !s.gso.is_unsupported()
            && segments <= UDP_MAX_SEGMENTS
            && payload.len() <= MAX_GSO_BYTES
        {
            if let Some(result) = send_gso(socket, remote, payload, segment_size, segments, s)? {
                return Ok(result);
            }
        }
        // sendmmsg fallback (also the single-datagram path). The GSO
        // segment size travels as a per-call cmsg, so there is no
        // fd-level option to switch off here.
        s.addrs.clear();
        s.addrs.push(SockaddrStorage::default());
        let namelen = match s.addrs.first_mut() {
            Some(slot) => encode_sockaddr(remote, slot),
            None => 0,
        };
        // Phase 1: one iovec per segment (pointers into `payload`).
        s.iovs.clear();
        for chunk in payload.chunks(segment_size).take(MAX_BATCH) {
            s.iovs.push(IoVec {
                base: chunk.as_ptr() as *mut std::ffi::c_void,
                len: chunk.len(),
            });
        }
        // Phase 2: headers, after the iovec vector stopped moving.
        let count = s.iovs.len();
        let name = s
            .addrs
            .first_mut()
            .map(|slot| slot as *mut SockaddrStorage as *mut std::ffi::c_void)
            .unwrap_or(std::ptr::null_mut());
        s.hdrs.clear();
        for iov in s.iovs.iter_mut() {
            s.hdrs.push(MMsgHdr {
                hdr: MsgHdr {
                    name,
                    namelen,
                    iov: iov as *mut IoVec,
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        // SAFETY: every pointer in `hdrs` refers into `s` or `payload`,
        // both live across the call; `count` matches the array length.
        let ret = unsafe { sendmmsg(socket.as_raw_fd(), s.hdrs.as_mut_ptr(), count as u32, 0) };
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok((ret as usize, 1))
        }
    }

    pub(super) fn recv_batch(
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        out: &mut Vec<(SocketAddr, usize)>,
        s: &mut Scratch,
    ) -> io::Result<(usize, usize)> {
        let count = bufs.len().min(MAX_BATCH);
        s.addrs.clear();
        s.addrs.resize(count, SockaddrStorage::default());
        s.iovs.clear();
        for buf in bufs.iter_mut().take(count) {
            s.iovs.push(IoVec {
                base: buf.as_mut_ptr() as *mut std::ffi::c_void,
                len: buf.len(),
            });
        }
        s.hdrs.clear();
        for (addr, iov) in s.addrs.iter_mut().zip(s.iovs.iter_mut()) {
            s.hdrs.push(MMsgHdr {
                hdr: MsgHdr {
                    name: addr as *mut SockaddrStorage as *mut std::ffi::c_void,
                    namelen: 128,
                    iov: iov as *mut IoVec,
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        // SAFETY: as in `send_segments`; the null timeout means "do not
        // wait" is governed by the socket's non-blocking mode.
        let ret = unsafe {
            recvmmsg(
                socket.as_raw_fd(),
                s.hdrs.as_mut_ptr(),
                count as u32,
                0,
                std::ptr::null_mut(),
            )
        };
        if ret < 0 {
            return Err(io::Error::last_os_error());
        }
        let received = ret as usize;
        for (hdr, addr) in s.hdrs.iter().zip(s.addrs.iter()).take(received) {
            // An undecodable source address (never seen for UDP in
            // practice) degrades to the unspecified address; the
            // transport discards unauthenticated datagrams anyway.
            let remote =
                decode_sockaddr(addr).unwrap_or_else(|| SocketAddr::from(([0, 0, 0, 0], 0)));
            out.push((remote, hdr.len as usize));
        }
        Ok((received, 1))
    }
}

/// Portable fallback: the same contract, one syscall per datagram.
#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{SocketAddr, UdpSocket, MAX_BATCH};
    use std::io;

    #[derive(Debug, Default)]
    pub(super) struct Scratch;

    impl Scratch {
        pub(super) fn gso_unsupported(&self) -> bool {
            false
        }
    }

    pub(super) fn set_buffer_sizes(_socket: &UdpSocket, _bytes: usize) {
        // No portable std API for SO_RCVBUF/SO_SNDBUF; platform defaults
        // stand. The batched endpoint still works, just with less burst
        // absorption.
    }

    pub(super) fn send_segments(
        socket: &UdpSocket,
        remote: &SocketAddr,
        payload: &[u8],
        segment_size: usize,
        _s: &mut Scratch,
    ) -> io::Result<(usize, usize)> {
        let mut sent = 0;
        for chunk in payload.chunks(segment_size).take(MAX_BATCH) {
            match socket.send_to(chunk, *remote) {
                Ok(_) => sent += 1,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok((sent, sent.max(1))),
                Err(e) if sent == 0 => return Err(e),
                // Partial train: report what went out; the caller
                // retries the rest.
                Err(_) => break,
            }
        }
        Ok((sent, sent.max(1)))
    }

    pub(super) fn recv_batch(
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        out: &mut Vec<(SocketAddr, usize)>,
        _s: &mut Scratch,
    ) -> io::Result<(usize, usize)> {
        let mut received = 0;
        for buf in bufs.iter_mut().take(MAX_BATCH) {
            match socket.recv_from(buf) {
                Ok((len, remote)) => {
                    out.push((remote, len));
                    received += 1;
                }
                Err(e) if received == 0 => return Err(e),
                Err(_) => break,
            }
        }
        Ok((received, received.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let b_addr = b.local_addr().unwrap();
        (a, b, b_addr)
    }

    #[test]
    fn segment_train_round_trips() {
        let (a, b, b_addr) = pair();
        let mut scratch = MmsgScratch::default();

        // 3 full segments + 1 short one.
        let payload: Vec<u8> = (0..350).map(|i| i as u8).collect();
        let (sent, syscalls) = send_segments(&a, &b_addr, &payload, 100, &mut scratch).unwrap();
        assert_eq!(sent, 4);
        assert!(syscalls >= 1);
        if NATIVE_BATCH {
            assert_eq!(syscalls, 1, "Linux sends the train in one syscall");
        }

        let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 2048]).collect();
        let mut metas = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut got = 0;
        while got < 4 && std::time::Instant::now() < deadline {
            match recv_batch(&b, &mut bufs[got..], &mut metas, &mut scratch) {
                Ok((k, _)) => got += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_micros(200))
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
        assert_eq!(got, 4, "all four segments arrive");
        let lens: Vec<usize> = metas.iter().map(|(_, len)| *len).collect();
        assert_eq!(lens, [100, 100, 100, 50]);
        let a_addr = a.local_addr().unwrap();
        for (remote, _) in &metas {
            assert_eq!(*remote, a_addr, "source address survives the batch path");
        }
        // Byte-for-byte reassembly across the buffers.
        let mut rejoined = Vec::new();
        for (buf, (_, len)) in bufs.iter().zip(metas.iter()) {
            rejoined.extend_from_slice(&buf[..*len]);
        }
        assert_eq!(rejoined, payload);
    }

    #[test]
    fn empty_socket_reports_would_block() {
        let (_a, b, _b_addr) = pair();
        let mut scratch = MmsgScratch::default();
        let mut bufs: Vec<Vec<u8>> = vec![vec![0u8; 128]];
        let mut metas = Vec::new();
        let err = recv_batch(&b, &mut bufs, &mut metas, &mut scratch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn zero_segment_size_means_one_datagram() {
        let (a, b, b_addr) = pair();
        let mut scratch = MmsgScratch::default();
        let (sent, _) = send_segments(&a, &b_addr, b"hello", 0, &mut scratch).unwrap();
        assert_eq!(sent, 1);
        let mut bufs: Vec<Vec<u8>> = vec![vec![0u8; 128]];
        let mut metas = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            match recv_batch(&b, &mut bufs, &mut metas, &mut scratch) {
                Ok((1, _)) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "datagram arrives");
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
        assert_eq!(metas[0].1, 5);
        assert_eq!(&bufs[0][..5], b"hello");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn ipv6_addresses_round_trip() {
        let a = UdpSocket::bind("[::1]:0").unwrap();
        let b = UdpSocket::bind("[::1]:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let b_addr = b.local_addr().unwrap();
        let mut scratch = MmsgScratch::default();
        let (sent, _) = send_segments(&a, &b_addr, b"v6", 0, &mut scratch).unwrap();
        assert_eq!(sent, 1);
        let mut bufs: Vec<Vec<u8>> = vec![vec![0u8; 128]];
        let mut metas = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            match recv_batch(&b, &mut bufs, &mut metas, &mut scratch) {
                Ok((1, _)) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "datagram arrives");
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
        assert_eq!(metas[0].0, a.local_addr().unwrap());
    }
}
