//! `mpq-server` — serve authenticated file transfers over real UDP.
//!
//! ```text
//! mpq-server [--listen ADDR]... [--single-path | --multipath]
//!            [--scheduler NAME] [--backend auto|uring|mmsg|portable]
//!            [--max-conns N] [--workers N]
//!            [--seed N] [--timeout SECS]
//!            [--metrics-addr ADDR] [--metrics-json FILE]
//!            [--metrics-interval SECS] [--flight-dump FILE]
//! ```
//!
//! Binds one UDP socket per `--listen` address (default `127.0.0.1:4433`)
//! and serves **many concurrent clients** through an
//! [`mpquic_io::Endpoint`]: a demux thread routes each datagram by its
//! connection ID, and `--workers` shards (default: one per core) each
//! drive a disjoint set of connections. Each connection receives one
//! file, verifies its checksum and reports the verdict to its client.
//!
//! `--max-conns` (default 1, the old single-shot behaviour) is both the
//! accept limit — datagrams with new connection IDs beyond it are
//! dropped and counted — and the number of transfers served before the
//! process prints its per-shard report and exits. The exit status is
//! non-zero if any transfer failed verification or `--timeout` expired
//! first.
//!
//! With `--multipath` (the default) every listen address is advertised
//! to each client via ADD_ADDRESS so it can open one path per local
//! interface.
//!
//! The observability flags expose the endpoint's metrics plane
//! (DESIGN.md §15): `--metrics-addr` serves Prometheus text exposition
//! on `/metrics` (plus `/snapshot` and `/flight`); `--metrics-json`
//! appends one JSON snapshot line every `--metrics-interval` seconds
//! (default 1); `--flight-dump` writes the flight recorder's last
//! events as JSON lines at exit — the same dump `/flight` serves live.

use mpquic_core::Config;
use mpquic_io::cli::{
    backend_choice, entropy_seed, metrics_addr, metrics_interval, print_endpoint_report,
    scheduler_kind, Args,
};
use mpquic_io::{Endpoint, TransferApp};
use mpquic_telemetry::endpoint::{MetricsServer, SnapshotWriter};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn main() {
    if let Err(message) = run() {
        eprintln!("mpq-server: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    if args.has("help") {
        println!(
            "usage: mpq-server [--listen ADDR]... [--single-path|--multipath] \
             [--scheduler NAME] [--backend auto|uring|mmsg|portable] \
             [--max-conns N] [--workers N] [--seed N] \
             [--timeout SECS] [--metrics-addr ADDR] [--metrics-json FILE] \
             [--metrics-interval SECS] [--flight-dump FILE]"
        );
        return Ok(());
    }
    // Every socket registry this process binds (listen registry and the
    // per-shard send handles alike) follows the chosen backend.
    mpquic_io::backend::set_default_choice(backend_choice(&args)?);

    let mut listen = args.addrs("listen")?;
    if listen.is_empty() {
        listen.push(SocketAddr::from(([127, 0, 0, 1], 4433)));
    }
    let single_path = args.has("single-path");
    let max_conns: usize = match args.value("max-conns") {
        Some(raw) => raw
            .parse()
            .map_err(|_| "--max-conns: not a number".to_string())?,
        None => 1,
    };
    let workers: usize = match args.value("workers") {
        Some(raw) => raw
            .parse()
            .map_err(|_| "--workers: not a number".to_string())?,
        None => 0, // auto: one shard per core
    };
    let seed = match args.value("seed") {
        Some(raw) => raw
            .parse()
            .map_err(|_| "--seed: not a number".to_string())?,
        None => entropy_seed(),
    };
    let timeout = Duration::from_secs(match args.value("timeout") {
        Some(raw) => raw
            .parse()
            .map_err(|_| "--timeout: not a number".to_string())?,
        None => 600,
    });

    let mut builder = if single_path {
        Config::builder().single_path()
    } else {
        Config::builder().multipath()
    }
    .max_incoming_connections(max_conns)
    .worker_shards(workers);
    if let Some(kind) = scheduler_kind(&args)? {
        builder = builder.scheduler(kind);
    }
    let config = builder.build().map_err(|e| format!("config: {e}"))?;

    let endpoint = Endpoint::bind(
        &listen,
        config,
        seed,
        Box::new(|_cid| Box::new(TransferApp::new())),
    )
    .map_err(|e| format!("bind: {e}"))?;
    let plane = endpoint.plane();
    let _metrics_server = match metrics_addr(&args)? {
        Some(addr) => {
            let server = MetricsServer::serve(addr, endpoint.plane())
                .map_err(|e| format!("--metrics-addr: {e}"))?;
            println!("metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let _snapshot_writer = match args.value("metrics-json") {
        Some(path) => Some(
            SnapshotWriter::spawn(path, endpoint.plane(), metrics_interval(&args)?)
                .map_err(|e| format!("--metrics-json: {e}"))?,
        ),
        None => None,
    };
    println!(
        "listening on {:?} ({}, {} workers, up to {} connections)",
        endpoint.local_addrs(),
        if single_path {
            "single-path"
        } else {
            "multipath"
        },
        endpoint.workers(),
        max_conns,
    );

    // Serve until `--max-conns` transfers have finished (counting
    // failures, so a misbehaving client cannot pin the process) or the
    // deadline passes.
    let started = Instant::now();
    let deadline = started + timeout;
    let timed_out = loop {
        let snap = endpoint.stats();
        if (snap.completed + snap.failed) as usize >= max_conns {
            break false;
        }
        if Instant::now() >= deadline {
            break true;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let elapsed = started.elapsed().as_secs_f64();

    let report = endpoint.shutdown();
    print_endpoint_report("mpq-server", &report, elapsed);

    if let Some(path) = args.value("flight-dump") {
        std::fs::write(path, plane.recorder.dump_json_lines())
            .map_err(|e| format!("--flight-dump: {e}"))?;
        println!("flight recorder dumped to {path}");
    }

    if timed_out {
        return Err(format!(
            "timed out after {:.0}s with {}/{} transfers done",
            timeout.as_secs_f64(),
            report.totals.completed + report.totals.failed,
            max_conns,
        ));
    }
    if report.totals.failed > 0 {
        return Err(format!(
            "{} of {} transfers failed verification",
            report.totals.failed,
            report.totals.completed + report.totals.failed,
        ));
    }
    Ok(())
}
