//! `mpq-server` — accept one authenticated file transfer over real UDP.
//!
//! ```text
//! mpq-server [--listen ADDR]... [--single-path | --multipath]
//!            [--qlog FILE] [--stats-interval SECS] [--out DIR]
//!            [--seed N] [--timeout SECS]
//! ```
//!
//! Binds one UDP socket per `--listen` address (default `127.0.0.1:4433`),
//! waits for an `mpq-client`, receives one file, verifies its checksum,
//! reports the verdict to the client, prints per-path transfer statistics
//! and exits. With `--multipath` (the default) every listen address is
//! advertised to the client via ADD_ADDRESS so it can open one path per
//! local interface.

use mpquic_core::Config;
use mpquic_io::cli::{entropy_seed, install_telemetry, print_report, stats_interval, Args};
use mpquic_io::{quic_server, transfer, BlockingStream};
use std::net::SocketAddr;
use std::path::Path;
use std::time::{Duration, Instant};

fn main() {
    if let Err(message) = run() {
        eprintln!("mpq-server: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    if args.has("help") {
        println!(
            "usage: mpq-server [--listen ADDR]... [--single-path|--multipath] \
             [--qlog FILE] [--stats-interval SECS] [--out DIR] [--seed N] [--timeout SECS]"
        );
        return Ok(());
    }

    let mut listen = args.addrs("listen")?;
    if listen.is_empty() {
        listen.push(SocketAddr::from(([127, 0, 0, 1], 4433)));
    }
    let single_path = args.has("single-path");
    let qlog_path = args.value("qlog").map(str::to_string);
    let stats_every = stats_interval(&args)?;
    let out_dir = args.value("out").map(str::to_string);
    let seed = match args.value("seed") {
        Some(raw) => raw
            .parse()
            .map_err(|_| "--seed: not a number".to_string())?,
        None => entropy_seed(),
    };
    let timeout = Duration::from_secs(match args.value("timeout") {
        Some(raw) => raw
            .parse()
            .map_err(|_| "--timeout: not a number".to_string())?,
        None => 600,
    });

    let config = if single_path {
        Config::builder().single_path()
    } else {
        Config::builder().multipath()
    }
    .build()
    .map_err(|e| format!("config: {e}"))?;

    let mut driver = quic_server(config, &listen, seed).map_err(|e| format!("bind: {e}"))?;
    // Streaming telemetry: the qlog is written incrementally and flushed
    // when the connection drops, so a timeout or error exit still leaves
    // the trace on disk.
    let metrics = install_telemetry(driver.connection_mut(), qlog_path.as_deref(), stats_every)?;
    if let Some(path) = &qlog_path {
        println!("qlog streaming to {path}");
    }
    println!(
        "listening on {:?} ({})",
        driver.local_addrs(),
        if single_path {
            "single-path"
        } else {
            "multipath"
        }
    );

    let mut stream = BlockingStream::with_timeout(driver, timeout);
    stream
        .wait_established()
        .map_err(|e| format!("handshake: {e}"))?;
    let started = Instant::now();

    let received = transfer::recv_request(&mut stream);
    let (verdict, checksum, saved) = match &received {
        Ok((header, payload)) => {
            println!(
                "received {:?}: {} bytes, checksum {:#018x} verified",
                header.name, header.size, header.checksum
            );
            let saved = match &out_dir {
                Some(dir) => save_upload(dir, &header.name, payload).map(Some)?,
                None => None,
            };
            (true, header.checksum, saved)
        }
        Err(e) => {
            eprintln!("transfer failed verification: {e}");
            (false, 0, None)
        }
    };
    if let Some(path) = saved {
        println!("saved to {path}");
    }

    transfer::send_response(&mut stream, verdict, checksum)
        .map_err(|e| format!("response: {e}"))?;
    stream.finish().map_err(|e| format!("finish: {e}"))?;

    // Linger until the client has acknowledged the response (stream 1 is
    // the single application stream) or a short grace period passes.
    let driver = stream.driver_mut();
    let _ = driver.run_until(Duration::from_secs(2), |t| {
        t.conn.stream_fully_acked(1) || t.conn.is_closed()
    });

    let elapsed = started.elapsed().as_secs_f64();
    print_report(
        "mpq-server",
        driver.connection(),
        &driver.stats(),
        &driver.socket_drops(),
        driver.batch_stats(),
        elapsed,
        Some(&metrics.snapshot()),
    );
    if !verdict {
        return Err("upload did not verify".into());
    }
    Ok(())
}

/// Stores an upload under `dir`, keeping only the name's final component
/// so a client cannot traverse outside the directory.
fn save_upload(dir: &str, name: &str, payload: &[u8]) -> Result<String, String> {
    let base = Path::new(name)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .filter(|n| n != "..")
        .unwrap_or_else(|| "upload.bin".to_string());
    std::fs::create_dir_all(dir).map_err(|e| format!("--out: {e}"))?;
    let path = Path::new(dir).join(base);
    std::fs::write(&path, payload).map_err(|e| format!("--out: {e}"))?;
    Ok(path.display().to_string())
}
