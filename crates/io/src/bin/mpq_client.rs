//! `mpq-client` — send one authenticated file transfer over real UDP.
//!
//! ```text
//! mpq-client --connect ADDR [--local ADDR]... [--file PATH | --size BYTES]
//!            [--single-path | --multipath] [--scheduler NAME]
//!            [--backend auto|uring|mmsg|portable] [--qlog FILE]
//!            [--stats-interval SECS] [--name NAME] [--seed N] [--timeout SECS]
//! ```
//!
//! Binds one UDP socket per `--local` address (defaults: two ephemeral
//! loopback ports under `--multipath`, one under `--single-path`), dials
//! the server from the first, and — once the handshake completes and the
//! server's ADD_ADDRESS frames arrive — the path manager opens one
//! additional path per extra local address. The file (or a `--size`-byte
//! synthetic payload) is sent with a checksum header; the exit status
//! reflects the server's verification verdict. Per-path statistics show
//! how the lowest-RTT scheduler split the transfer.

use mpquic_core::Config;
use mpquic_io::cli::{
    backend_choice, entropy_seed, install_telemetry, print_report, scheduler_kind, stats_interval,
    Args,
};
use mpquic_io::{quic_client, transfer, BlockingStream};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn main() {
    if let Err(message) = run() {
        eprintln!("mpq-client: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    if args.has("help") {
        println!(
            "usage: mpq-client --connect ADDR [--local ADDR]... [--file PATH | --size BYTES] \
             [--single-path|--multipath] [--scheduler NAME] \
             [--backend auto|uring|mmsg|portable] [--qlog FILE] \
             [--stats-interval SECS] [--name NAME] [--seed N] [--timeout SECS]"
        );
        return Ok(());
    }
    mpquic_io::backend::set_default_choice(backend_choice(&args)?);

    let remote: SocketAddr = args
        .value("connect")
        .ok_or("--connect ADDR is required")?
        .parse()
        .map_err(|_| "--connect: invalid address".to_string())?;
    let single_path = args.has("single-path");
    let mut locals = args.addrs("local")?;
    if locals.is_empty() {
        let loopback = SocketAddr::from(([127, 0, 0, 1], 0));
        locals.push(loopback);
        if !single_path {
            locals.push(loopback);
        }
    }
    let qlog_path = args.value("qlog").map(str::to_string);
    let stats_every = stats_interval(&args)?;
    let seed = match args.value("seed") {
        Some(raw) => raw
            .parse()
            .map_err(|_| "--seed: not a number".to_string())?,
        None => entropy_seed(),
    };
    let timeout = Duration::from_secs(match args.value("timeout") {
        Some(raw) => raw
            .parse()
            .map_err(|_| "--timeout: not a number".to_string())?,
        None => 60,
    });

    let (name, payload) = match args.value("file") {
        Some(path) => {
            let data = std::fs::read(path).map_err(|e| format!("--file: {e}"))?;
            let name = args.value("name").unwrap_or(path).to_string();
            (name, data)
        }
        None => {
            let size = parse_size(args.value("size").unwrap_or("4m"))?;
            let name = args.value("name").unwrap_or("synthetic.bin").to_string();
            (name, transfer::pattern(size))
        }
    };

    let mut builder = if single_path {
        Config::builder().single_path()
    } else {
        Config::builder().multipath()
    };
    if let Some(kind) = scheduler_kind(&args)? {
        builder = builder.scheduler(kind);
    }
    let config = builder.build().map_err(|e| format!("config: {e}"))?;

    let mut driver =
        quic_client(config, &locals, remote, seed).map_err(|e| format!("bind: {e}"))?;
    // Streaming telemetry: the qlog is written incrementally and flushed
    // when the connection drops, so a timeout or error exit still leaves
    // the trace on disk.
    let metrics = install_telemetry(driver.connection_mut(), qlog_path.as_deref(), stats_every)?;
    if let Some(path) = &qlog_path {
        println!("qlog streaming to {path}");
    }
    println!(
        "dialing {remote} from {:?} ({})",
        driver.local_addrs(),
        if single_path {
            "single-path"
        } else {
            "multipath"
        }
    );

    let mut stream = BlockingStream::with_timeout(driver, timeout);
    stream
        .wait_established()
        .map_err(|e| format!("handshake: {e}"))?;
    let started = Instant::now();

    let checksum = transfer::fnv1a64(&payload);
    transfer::send_request(&mut stream, &name, &payload).map_err(|e| format!("send: {e}"))?;
    stream.finish().map_err(|e| format!("finish: {e}"))?;
    println!(
        "sent {:?}: {} bytes, checksum {checksum:#018x}",
        name,
        payload.len()
    );

    let (verified, server_checksum) =
        transfer::recv_response(&mut stream).map_err(|e| format!("response: {e}"))?;
    let elapsed = started.elapsed().as_secs_f64();

    let driver = stream.driver_mut();
    driver.connection_mut().close(0, "transfer complete");
    let _ = driver.run_for(Duration::from_millis(100));

    print_report(
        "mpq-client",
        driver.connection(),
        &driver.stats(),
        &driver.socket_drops(),
        driver.batch_stats(),
        (driver.backend_kind(), &driver.backend_stats()),
        elapsed,
        Some(&metrics.snapshot()),
    );

    if !verified || server_checksum != checksum {
        return Err(format!(
            "server failed to verify the transfer (ours {checksum:#018x}, theirs {server_checksum:#018x})"
        ));
    }
    println!("server verified the transfer");
    Ok(())
}

/// Parses a byte count with an optional `k`/`m`/`g` (binary) suffix.
fn parse_size(raw: &str) -> Result<usize, String> {
    let raw = raw.trim().to_ascii_lowercase();
    let (digits, shift) = if let Some(prefix) = raw.strip_suffix('k') {
        (prefix, 10)
    } else if let Some(prefix) = raw.strip_suffix('m') {
        (prefix, 20)
    } else if let Some(prefix) = raw.strip_suffix('g') {
        (prefix, 30)
    } else {
        (raw.as_str(), 0)
    };
    let base: usize = digits
        .parse()
        .map_err(|_| format!("--size: invalid byte count {raw:?}"))?;
    base.checked_mul(1usize << shift)
        .ok_or_else(|| "--size: too large".to_string())
}
