//! Minimal flag parsing and reporting shared by `mpq-server` and
//! `mpq-client` (std-only; no argument-parsing dependency).

use mpquic_core::telemetry::{
    MetricsHandle, MetricsSnapshot, MetricsSubscriber, StatsReporter, StreamingQlog,
};
use mpquic_core::{Connection, SchedulerKind};
use std::net::SocketAddr;
use std::time::Duration;

use crate::backend::{BackendChoice, BackendKind, BackendStats};
use crate::driver::IoStats;
use crate::socket::BatchStats;

/// A parsed command line: flags with optional values, in order.
#[derive(Debug, Default)]
pub struct Args {
    items: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses `std::env::args` (skipping the program name). Flags start
    /// with `--`; a flag's value is the following argument unless that
    /// also starts with `--`.
    pub fn parse() -> Args {
        Args::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut items = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next(),
                    _ => None,
                };
                items.push((flag.to_string(), value));
            } else {
                // Bare positional: keep under an empty flag name.
                items.push((String::new(), Some(arg)));
            }
        }
        Args { items }
    }

    /// True if `flag` appeared.
    pub fn has(&self, flag: &str) -> bool {
        self.items.iter().any(|(name, _)| name == flag)
    }

    /// The last value given for `flag`.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.items
            .iter()
            .rev()
            .find(|(name, _)| name == flag)
            .and_then(|(_, value)| value.as_deref())
    }

    /// Every value given for a repeatable `flag`, in order.
    pub fn values(&self, flag: &str) -> Vec<&str> {
        self.items
            .iter()
            .filter(|(name, _)| name == flag)
            .filter_map(|(_, value)| value.as_deref())
            .collect()
    }

    /// Parses every value of a repeatable address flag.
    pub fn addrs(&self, flag: &str) -> Result<Vec<SocketAddr>, String> {
        self.values(flag)
            .into_iter()
            .map(|value| {
                value
                    .parse()
                    .map_err(|_| format!("--{flag}: invalid address {value:?}"))
            })
            .collect()
    }
}

/// A process-unique RNG seed for connection IDs (the protocol needs
/// unpredictability only across invocations, not cryptographic strength —
/// packet protection supplies that).
pub fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ (std::process::id() as u64).rotate_left(32)
}

/// Parses the binaries' `--stats-interval SECS` flag (fractional seconds
/// allowed); `None` when the flag was not given.
pub fn stats_interval(args: &Args) -> Result<Option<Duration>, String> {
    let Some(raw) = args.value("stats-interval") else {
        return Ok(None);
    };
    let secs: f64 = raw
        .parse()
        .map_err(|_| "--stats-interval: not a number".to_string())?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err("--stats-interval: must be positive".to_string());
    }
    Ok(Some(Duration::from_secs_f64(secs)))
}

/// Parses the binaries' `--scheduler NAME` flag into a
/// [`SchedulerKind`]; `None` when the flag was not given. The shared
/// `FromStr` impl supplies the error message, which lists every valid
/// scheduler name.
pub fn scheduler_kind(args: &Args) -> Result<Option<SchedulerKind>, String> {
    match args.value("scheduler") {
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|e| format!("--scheduler: {e}")),
        None => Ok(None),
    }
}

/// Parses the binaries' `--backend NAME` flag into a
/// [`BackendChoice`]; [`BackendChoice::Auto`] (probe the ladder) when
/// the flag was not given. The shared `FromStr` impl supplies the
/// error message, which lists every valid backend name.
pub fn backend_choice(args: &Args) -> Result<BackendChoice, String> {
    match args.value("backend") {
        Some(raw) => raw.parse().map_err(|e| format!("--backend: {e}")),
        None => Ok(BackendChoice::Auto),
    }
}

/// Parses `mpq-server`'s `--metrics-addr HOST:PORT` flag — where the
/// [`mpquic_core::telemetry`]-independent scrape server
/// (`mpquic_telemetry::endpoint::MetricsServer`) should listen; `None`
/// when the flag was not given.
pub fn metrics_addr(args: &Args) -> Result<Option<SocketAddr>, String> {
    let Some(raw) = args.value("metrics-addr") else {
        return Ok(None);
    };
    raw.parse()
        .map(Some)
        .map_err(|_| format!("--metrics-addr: invalid address {raw:?}"))
}

/// Parses `mpq-server`'s `--metrics-interval SECS` flag (fractional
/// seconds allowed) — the period of the JSON-lines snapshot writer.
/// Defaults to one second when only `--metrics-json` was given.
pub fn metrics_interval(args: &Args) -> Result<Duration, String> {
    let Some(raw) = args.value("metrics-interval") else {
        return Ok(Duration::from_secs(1));
    };
    let secs: f64 = raw
        .parse()
        .map_err(|_| "--metrics-interval: not a number".to_string())?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err("--metrics-interval: must be positive".to_string());
    }
    Ok(Duration::from_secs_f64(secs))
}

/// Installs the binaries' telemetry stack on a connection:
///
/// * a metrics registry (always — feeds the per-path section of
///   [`print_report`]);
/// * a streaming qlog writer when `qlog_path` is given. Events are
///   written as they happen and the buffer is flushed when the
///   connection drops, so error and timeout exits still leave a trace —
///   unlike the old write-on-success-only behaviour;
/// * a periodic stats reporter (`--stats-interval`) printing one
///   summary line per path to stdout.
///
/// Returns the handle to snapshot the metrics at the end of the run.
pub fn install_telemetry(
    conn: &mut Connection,
    qlog_path: Option<&str>,
    stats_every: Option<Duration>,
) -> Result<MetricsHandle, String> {
    let (metrics, handle) = MetricsSubscriber::new();
    let qlog = match qlog_path {
        Some(path) => Some(StreamingQlog::create(path).map_err(|e| format!("--qlog: {e}"))?),
        None => None,
    };
    let stats = stats_every.map(|every| StatsReporter::new(every, std::io::stdout()));
    conn.set_subscriber(Box::new((metrics, (qlog, stats))));
    Ok(handle)
}

/// Prints the end-of-run report both binaries share: per-path byte
/// counts and smoothed RTTs (with loss and scheduler share when a
/// metrics snapshot is supplied), connection totals, socket-level
/// counters with per-socket send drops, and a datapath batching
/// summary (datagrams per syscall, syscalls saved).
pub fn print_report(
    label: &str,
    conn: &Connection,
    io: &IoStats,
    socket_drops: &[(SocketAddr, u64)],
    batch: &BatchStats,
    backend: (BackendKind, &BackendStats),
    elapsed_secs: f64,
    metrics: Option<&MetricsSnapshot>,
) {
    let stats = conn.stats();
    println!("--- {label} ---");
    for id in conn.path_ids() {
        let Some(path) = conn.path(id) else { continue };
        println!(
            "path {}: {} -> {}  sent {} B, received {} B, srtt {:.2} ms",
            id.0,
            path.local,
            path.remote,
            path.bytes_sent,
            path.bytes_received,
            path.rtt.srtt().as_secs_f64() * 1e3,
        );
        if let Some(p) = metrics.and_then(|m| m.path(id)) {
            println!(
                "        rtt p50/p99 {:.2}/{:.2} ms, cwnd {} (max {}), \
                 loss {:.2}%, sched share {:.1}%, {} retransmits",
                p.rtt_p50_us as f64 / 1e3,
                p.rtt_p99_us as f64 / 1e3,
                p.cwnd,
                p.cwnd_max,
                p.loss_percent,
                p.sched_share * 100.0,
                p.frames_retransmitted,
            );
        }
    }
    println!(
        "totals: {} pkts / {} B sent, {} pkts / {} B received, {} retransmitted frames, {} RTOs",
        stats.packets_sent,
        stats.bytes_sent,
        stats.packets_received,
        stats.bytes_received,
        stats.frames_retransmitted,
        stats.rtos,
    );
    println!(
        "sockets: {} datagrams out ({} dropped at socket), {} in, {} timer fires",
        io.datagrams_sent, io.send_drops, io.datagrams_received, io.timer_fires,
    );
    for (local, drops) in socket_drops {
        if *drops > 0 {
            println!("        {local}: {drops} datagrams dropped (send buffer full)");
        }
    }
    if batch.send_syscalls > 0 {
        println!(
            "batching: {} send syscalls ({:.2} datagrams/syscall mean, {} max, \
             p99 {}), {} recv syscalls ({:.2} mean), {} syscalls saved",
            batch.send_syscalls,
            batch.send_batch_size.mean(),
            batch.send_batch_size.max(),
            batch.send_batch_size.quantile(0.99),
            batch.recv_syscalls,
            batch.recv_batch_size.mean(),
            batch.syscalls_saved,
        );
    }
    let (backend_kind, backend) = backend;
    if backend.submissions > 0 || backend.fallbacks > 0 {
        println!(
            "backend: {} — {} submissions, {} completions, {} fallbacks \
             (batch mean {}, max {})",
            backend_kind,
            backend.submissions,
            backend.completions,
            backend.fallbacks,
            backend.sqe_batch.mean(),
            backend.sqe_batch.max(),
        );
    }
    if elapsed_secs > 0.0 {
        let goodput = stats.bytes_sent.max(stats.bytes_received) as f64 * 8.0 / elapsed_secs / 1e6;
        println!("elapsed: {elapsed_secs:.3} s ({goodput:.2} Mbit/s on the busier direction)");
    }
}

/// Prints a multi-connection endpoint's end-of-run report: one line per
/// worker shard, the merged socket/batching counters (folded with
/// [`IoStats::merge`] / [`BatchStats::merge`]), and the endpoint-level
/// accept/verdict totals.
pub fn print_endpoint_report(label: &str, report: &crate::EndpointReport, elapsed_secs: f64) {
    let totals = &report.totals;
    println!("--- {label} ---");
    for shard in &report.shards {
        println!(
            "shard {}: {} conns, {} datagrams out / {} in, {} B out / {} B in, \
             {} timer fires, {} send drops",
            shard.shard,
            shard.conns_served,
            shard.io.datagrams_sent,
            shard.io.datagrams_received,
            shard.io.bytes_sent,
            shard.io.bytes_received,
            shard.io.timer_fires,
            shard.io.send_drops,
        );
    }
    let io = report.merged_io();
    let batch = report.merged_batch();
    println!(
        "sockets: {} datagrams out ({} dropped at socket), {} in across {} shards",
        io.datagrams_sent,
        io.send_drops,
        io.datagrams_received,
        report.shards.len(),
    );
    if batch.send_syscalls > 0 {
        println!(
            "batching: {} send syscalls ({:.2} datagrams/syscall mean, {} max), \
             {} syscalls saved",
            batch.send_syscalls,
            batch.send_batch_size.mean(),
            batch.send_batch_size.max(),
            batch.syscalls_saved,
        );
    }
    let backend = report.merged_backend();
    if backend.submissions > 0 || backend.fallbacks > 0 {
        println!(
            "backend: {} submissions, {} completions, {} fallbacks \
             (batch mean {}, max {})",
            backend.submissions,
            backend.completions,
            backend.fallbacks,
            backend.sqe_batch.mean(),
            backend.sqe_batch.max(),
        );
    }
    println!(
        "connections: {} accepted, {} completed, {} failed, {} closed, \
         {} rejected at limit, {} malformed, {} backpressure drops",
        totals.accepted,
        totals.completed,
        totals.failed,
        totals.closed,
        totals.rejected,
        totals.malformed,
        totals.backpressure_drops,
    );
    let plane = &report.plane;
    if plane.loop_ns.count() > 0 {
        println!(
            "plane: {} wakeups, loop p50/p99 {}/{} ns, queue depth p99 {}, \
             pool outstanding p99 {}",
            plane.wakeups,
            plane.loop_ns.quantile(0.50),
            plane.loop_ns.quantile(0.99),
            plane.queue_depth.quantile(0.99),
            plane.pool_outstanding.quantile(0.99),
        );
    }
    if elapsed_secs > 0.0 && totals.closed > 0 {
        println!(
            "elapsed: {elapsed_secs:.3} s ({:.1} accepts/s, {:.1} closes/s, \
             {:.2} Mbit/s aggregate in)",
            totals.accepted as f64 / elapsed_secs,
            totals.closed as f64 / elapsed_secs,
            io.bytes_received as f64 * 8.0 / elapsed_secs / 1e6,
        );
    } else if elapsed_secs > 0.0 && totals.completed > 0 {
        println!(
            "elapsed: {elapsed_secs:.3} s ({:.1} connections/s, {:.2} Mbit/s aggregate in)",
            totals.completed as f64 / elapsed_secs,
            io.bytes_received as f64 * 8.0 / elapsed_secs / 1e6,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::from_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_values_and_repeats() {
        let a = args(&[
            "--listen",
            "127.0.0.1:4433",
            "--local",
            "1.2.3.4:0",
            "--local",
            "5.6.7.8:0",
            "--single-path",
            "--qlog",
            "out.jsonl",
        ]);
        assert!(a.has("single-path"));
        assert!(!a.has("multipath"));
        assert_eq!(a.value("listen"), Some("127.0.0.1:4433"));
        assert_eq!(a.value("qlog"), Some("out.jsonl"));
        assert_eq!(a.values("local").len(), 2);
        assert_eq!(a.addrs("local").unwrap().len(), 2);
    }

    #[test]
    fn flag_followed_by_flag_has_no_value() {
        let a = args(&["--multipath", "--qlog", "q.jsonl"]);
        assert!(a.has("multipath"));
        assert_eq!(a.value("multipath"), None);
        assert_eq!(a.value("qlog"), Some("q.jsonl"));
    }

    #[test]
    fn bad_address_reports_the_flag() {
        let a = args(&["--local", "not-an-addr"]);
        let err = a.addrs("local").unwrap_err();
        assert!(err.contains("--local"));
    }

    #[test]
    fn scheduler_flag_parses_every_zoo_member() {
        for kind in mpquic_core::scheduler::SCHEDULER_KINDS {
            let a = args(&["--scheduler", kind.name()]);
            assert_eq!(scheduler_kind(&a).unwrap(), Some(kind));
        }
        assert_eq!(scheduler_kind(&args(&[])).unwrap(), None);
    }

    #[test]
    fn backend_flag_parses_every_arm() {
        for name in BackendChoice::NAMES {
            let a = args(&["--backend", name]);
            assert_eq!(backend_choice(&a).unwrap().to_string(), name);
        }
        assert_eq!(backend_choice(&args(&[])).unwrap(), BackendChoice::Auto);
    }

    #[test]
    fn bad_backend_name_lists_the_valid_ones() {
        let a = args(&["--backend", "dpdk"]);
        let err = backend_choice(&a).unwrap_err();
        assert!(err.contains("--backend"), "{err}");
        for name in BackendChoice::NAMES {
            assert!(err.contains(name), "{err} missing {name}");
        }
    }

    #[test]
    fn bad_scheduler_name_lists_the_valid_ones() {
        let a = args(&["--scheduler", "fastest"]);
        let err = scheduler_kind(&a).unwrap_err();
        assert!(err.contains("--scheduler"), "{err}");
        for kind in mpquic_core::scheduler::SCHEDULER_KINDS {
            assert!(err.contains(kind.name()), "{err} missing {}", kind.name());
        }
    }
}
