//! Deadline arithmetic for the event loop.
//!
//! The sans-IO transport exposes one aggregate deadline
//! (`Transport::next_timeout`): the earliest instant at which it needs the
//! clock again — an RTO, a delayed-ACK flush, a path probe, the idle
//! timer. The event loop must sleep *until* that deadline but no longer,
//! and, because the sockets are non-blocking and polled, never longer
//! than its polling granularity either. [`Timer`] centralizes that
//! clamping so the driver's loop body stays trivial.

use mpquic_util::SimTime;
use std::time::Duration;

/// Default polling granularity: the longest the loop will sleep while a
/// peer could be sending to us. 500 µs keeps worst-case added latency
/// well under loopback RTO scales while burning negligible CPU.
pub const DEFAULT_GRANULARITY: Duration = Duration::from_micros(500);

/// Computes how long the event loop may sleep.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    granularity: Duration,
}

impl Timer {
    /// A timer with [`DEFAULT_GRANULARITY`].
    pub fn new() -> Timer {
        Timer {
            granularity: DEFAULT_GRANULARITY,
        }
    }

    /// A timer with a custom polling granularity.
    pub fn with_granularity(granularity: Duration) -> Timer {
        Timer { granularity }
    }

    /// The polling granularity in use.
    pub fn granularity(&self) -> Duration {
        self.granularity
    }

    /// How long to sleep at `now` given the transport's next deadline:
    /// zero if the deadline is due, otherwise the time until the deadline
    /// clamped to the polling granularity (no deadline ⇒ granularity).
    pub fn sleep_for(&self, now: SimTime, deadline: Option<SimTime>) -> Duration {
        match deadline {
            Some(at) if at <= now => Duration::ZERO,
            Some(at) => at.saturating_duration_since(now).min(self.granularity),
            None => self.granularity,
        }
    }

    /// True if `deadline` has passed at `now`.
    pub fn is_due(&self, now: SimTime, deadline: Option<SimTime>) -> bool {
        deadline.is_some_and(|at| at <= now)
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_deadline_means_no_sleep() {
        let timer = Timer::new();
        let now = SimTime::from_millis(10);
        assert_eq!(
            timer.sleep_for(now, Some(SimTime::from_millis(10))),
            Duration::ZERO
        );
        assert_eq!(
            timer.sleep_for(now, Some(SimTime::from_millis(5))),
            Duration::ZERO
        );
        assert!(timer.is_due(now, Some(SimTime::from_millis(10))));
    }

    #[test]
    fn near_deadline_sleeps_exactly_until_it() {
        let timer = Timer::with_granularity(Duration::from_millis(1));
        let now = SimTime::from_millis(10);
        let deadline = SimTime::from_micros(10_200);
        assert_eq!(
            timer.sleep_for(now, Some(deadline)),
            Duration::from_micros(200)
        );
    }

    #[test]
    fn far_or_absent_deadline_clamps_to_granularity() {
        let timer = Timer::with_granularity(Duration::from_millis(1));
        let now = SimTime::from_millis(10);
        assert_eq!(
            timer.sleep_for(now, Some(SimTime::from_secs(10))),
            Duration::from_millis(1)
        );
        assert_eq!(timer.sleep_for(now, None), Duration::from_millis(1));
        assert!(!timer.is_due(now, None));
    }
}
