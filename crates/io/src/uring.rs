//! Completion-based IO: a hand-rolled `io_uring` backend.
//!
//! The top rung of the backend ladder (see [`crate::backend`]). Instead
//! of one direct syscall per batch, work is described as *submission
//! queue entries* (SQEs) in a ring of memory shared with the kernel,
//! handed over with one `io_uring_enter`, and harvested as *completion
//! queue entries* (CQEs) from a second shared ring:
//!
//! * **Egress** — a GSO-shaped train becomes a single `IORING_OP_SENDMSG`
//!   SQE carrying the `UDP_SEGMENT` cmsg (the kernel segments once, as in
//!   the mmsg backend's GSO path). Sockets or devices that refuse GSO
//!   drop — via the same sticky [`crate::probe::ProbeState`] machinery —
//!   to one `SENDMSG` SQE *per segment*, chained with `IOSQE_IO_LINK` so
//!   a refused segment cancels the rest of the chain and the accepted
//!   prefix mirrors `sendmmsg`'s partial-send contract.
//! * **Ingress** — one batch of `IORING_OP_RECVMSG` SQEs, each targeting
//!   a slot of the backend's *receive slab*: buffers taken from a
//!   [`mpquic_core::BufferPool`] at construction and held for the
//!   backend's lifetime. Pool buffers never move or shrink, which is
//!   exactly the stability `IORING_REGISTER_BUFFERS` demands — the
//!   kernel pins those pages once instead of faulting them per call —
//!   and what makes it safe for SQEs to reference slab memory while the
//!   kernel still owns them.
//!
//! Every SQE carries `MSG_DONTWAIT` (see the constant's doc: io_uring
//! would otherwise arm an internal poll on would-block instead of
//! completing), so an empty socket completes immediately with
//! `-EAGAIN` (surfaced as `WouldBlock`, preserving the polling-loop
//! contract), and a single `io_uring_enter(submit, wait)` both submits
//! and reaps a whole batch — one syscall per train or ingress poll,
//! matching `sendmmsg`/`recvmmsg` in syscall count while keeping every
//! per-datagram branch of the direct-syscall path out of the kernel
//! crossing.
//!
//! The workspace is dependency-free, so everything here is hand-rolled:
//! `io_uring_setup`/`io_uring_enter`/`io_uring_register` through the
//! variadic `syscall(2)` wrapper and the ring mappings through `mmap`,
//! with `#[repr(C)]` layouts matching `linux/io_uring.h`. The SQ/CQ
//! head/tail words are kernel-shared memory: loads of the other side's
//! index are `Acquire` and stores of our own are `Release` (registered
//! with those roles in `crates/xtask/atomics.toml`; Relaxed would let
//! the CPU reorder ring-entry writes past the index publication).
#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU32, Ordering};

use mpquic_core::BufferPool;

use crate::backend::{Backend, BackendKind, BackendStats};
use crate::mmsg::{
    self, decode_sockaddr, encode_sockaddr, GsoControl, IoVec, MsgHdr, SockaddrStorage,
    MAX_GSO_BYTES, UDP_MAX_SEGMENTS,
};
use crate::probe::ProbeState;
use crate::socket::MAX_DATAGRAM;

/// `io_uring` syscall numbers (identical across 64-bit architectures —
/// the ABI landed after the asm-generic unification).
const SYS_IO_URING_SETUP: i64 = 425;
const SYS_IO_URING_ENTER: i64 = 426;
const SYS_IO_URING_REGISTER: i64 = 427;

/// SQ ring slots. Must cover the largest batch either direction submits
/// in one call ([`mmsg::MAX_BATCH`] = 64); 128 leaves headroom without
/// bloating the mapping.
const SQ_ENTRIES: u32 = 128;

/// `struct io_sqring_offsets`.
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

/// `struct io_cqring_offsets`.
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

/// `struct io_uring_params` (setup in/out contract).
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
struct UringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

/// `struct io_uring_sqe` (64 bytes; the non-union layout every 5.x+
/// kernel accepts).
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    msg_flags: u32,
    user_data: u64,
    buf_index: u16,
    personality: u16,
    splice_fd_in: i32,
    addr3: u64,
    pad2: u64,
}

/// `struct io_uring_cqe`.
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
struct Cqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_CQ_RING: i64 = 0x0800_0000;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
const IORING_ENTER_GETEVENTS: u32 = 1 << 0;

const IORING_OP_SENDMSG: u8 = 9;
const IORING_OP_RECVMSG: u8 = 10;
const IOSQE_IO_LINK: u8 = 1 << 2;

/// Every SENDMSG/RECVMSG SQE carries `MSG_DONTWAIT`. Without it a
/// would-block op on a pollable fd does NOT complete with `-EAGAIN`:
/// io_uring arms an internal poll and holds the CQE until the socket
/// is ready, which would deadlock this backend's synchronous
/// submit-and-reap cycle (`io_uring_enter` waiting on completions
/// that only a future send could produce). The flag sets the
/// kernel-side `REQ_F_NOWAIT`, making `-EAGAIN` a final, inline
/// completion — the exact non-blocking contract the mmsg backend gets
/// from `O_NONBLOCK`.
const MSG_DONTWAIT: u32 = 0x40;

const IORING_REGISTER_BUFFERS: u32 = 0;

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 0x1;
const MAP_POPULATE: i32 = 0x8000;

const EAGAIN: i32 = 11;
const EINTR: i32 = 4;
const ECANCELED: i32 = 125;

extern "C" {
    /// The glibc/musl variadic syscall wrapper: returns -1 and sets
    /// errno on failure, so `io::Error::last_os_error()` works.
    fn syscall(num: i64, ...) -> i64;
    fn mmap(
        addr: *mut std::ffi::c_void,
        length: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut std::ffi::c_void;
    fn munmap(addr: *mut std::ffi::c_void, length: usize) -> i32;
    fn close(fd: i32) -> i32;
}

/// One kernel mapping, unmapped on drop.
#[derive(Debug)]
struct Mapping {
    ptr: *mut u8,
    len: usize,
}

impl Mapping {
    fn new(fd: i32, len: usize, offset: i64) -> io::Result<Mapping> {
        // SAFETY: mapping a fresh region chosen by the kernel (addr
        // NULL); the io_uring fd defines the region's contents. The
        // result is checked against MAP_FAILED before use.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                fd,
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr as *mut u8,
            len,
        })
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` describe exactly the region mmap returned;
        // after this the mapping is never touched again.
        unsafe {
            munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

/// The mmap'd submission/completion rings plus our cached (userspace-
/// private) copies of the indices we own.
#[derive(Debug)]
struct Ring {
    fd: i32,
    /// SQ ring mapping (with `IORING_FEAT_SINGLE_MMAP` it carries the
    /// CQ ring too).
    sq_map: Mapping,
    /// Separate CQ ring mapping on pre-5.4 kernels.
    cq_map: Option<Mapping>,
    /// The SQE array mapping.
    sqe_map: Mapping,
    // Byte offsets of the shared index words inside the ring mappings.
    sq_head_off: usize,
    sq_tail_off: usize,
    sq_mask: u32,
    sq_array_off: usize,
    cq_head_off: usize,
    cq_tail_off: usize,
    cq_mask: u32,
    cqes_off: usize,
    /// Our private copy of the SQ tail (only we advance it; published
    /// with a Release store at submit time).
    sq_tail_cache: u32,
    /// Our private copy of the CQ head (only we advance it).
    cq_head_cache: u32,
}

impl Ring {
    /// `io_uring_setup` + the two or three ring mappings.
    fn new(entries: u32) -> io::Result<Ring> {
        let mut params = UringParams::default();
        // SAFETY: `params` is a properly-sized, zeroed io_uring_params
        // the kernel fills in; it lives across the call.
        let fd = unsafe {
            syscall(
                SYS_IO_URING_SETUP,
                entries as i64,
                &mut params as *mut UringParams as i64,
            )
        };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as i32;

        let sq_ring_len =
            params.sq_off.array as usize + params.sq_entries as usize * std::mem::size_of::<u32>();
        let cq_ring_len =
            params.cq_off.cqes as usize + params.cq_entries as usize * std::mem::size_of::<Cqe>();
        let single = params.features & IORING_FEAT_SINGLE_MMAP != 0;
        let sq_map_len = if single {
            sq_ring_len.max(cq_ring_len)
        } else {
            sq_ring_len
        };

        let close_on_err = |e: io::Error| {
            // SAFETY: `fd` came from io_uring_setup above and is closed
            // exactly once on this early-exit path.
            unsafe {
                close(fd);
            }
            e
        };
        let sq_map = Mapping::new(fd, sq_map_len, IORING_OFF_SQ_RING).map_err(close_on_err)?;
        let cq_map = if single {
            None
        } else {
            Some(Mapping::new(fd, cq_ring_len, IORING_OFF_CQ_RING).map_err(close_on_err)?)
        };
        let sqe_map = Mapping::new(
            fd,
            params.sq_entries as usize * std::mem::size_of::<Sqe>(),
            IORING_OFF_SQES,
        )
        .map_err(close_on_err)?;

        // SAFETY: the offsets the kernel reported lie inside the ring
        // mappings; reading the masks once is a plain load of constants
        // the kernel wrote before setup returned.
        let (sq_mask, cq_mask) = unsafe {
            let sq_mask = *(sq_map.ptr.add(params.sq_off.ring_mask as usize) as *const u32);
            let cq_base = cq_map.as_ref().map_or(sq_map.ptr, |m| m.ptr);
            let cq_mask = *(cq_base.add(params.cq_off.ring_mask as usize) as *const u32);
            (sq_mask, cq_mask)
        };

        Ok(Ring {
            fd,
            sq_map,
            cq_map,
            sqe_map,
            sq_head_off: params.sq_off.head as usize,
            sq_tail_off: params.sq_off.tail as usize,
            sq_mask,
            sq_array_off: params.sq_off.array as usize,
            cq_head_off: params.cq_off.head as usize,
            cq_tail_off: params.cq_off.tail as usize,
            cq_mask,
            cqes_off: params.cq_off.cqes as usize,
            sq_tail_cache: 0,
            cq_head_cache: 0,
        })
    }

    /// Base of the CQ ring (the SQ mapping when the kernel granted
    /// `IORING_FEAT_SINGLE_MMAP`).
    fn cq_base(&self) -> *mut u8 {
        self.cq_map.as_ref().map_or(self.sq_map.ptr, |m| m.ptr)
    }

    /// The kernel-shared SQ head word (kernel-written consumer index).
    fn sq_head_word(&self) -> &AtomicU32 {
        // SAFETY: the offset is inside the SQ mapping, 4-aligned per the
        // kernel ABI, and the word is only ever accessed atomically on
        // both sides — that is the io_uring ring contract.
        unsafe { &*(self.sq_map.ptr.add(self.sq_head_off) as *const AtomicU32) }
    }

    /// The kernel-shared SQ tail word (our producer index).
    fn sq_tail_word(&self) -> &AtomicU32 {
        // SAFETY: as in `sq_head_word`, for the tail offset.
        unsafe { &*(self.sq_map.ptr.add(self.sq_tail_off) as *const AtomicU32) }
    }

    /// The kernel-shared CQ head word (our consumer index).
    fn cq_head_word(&self) -> &AtomicU32 {
        // SAFETY: as in `sq_head_word`, inside the CQ ring mapping.
        unsafe { &*(self.cq_base().add(self.cq_head_off) as *const AtomicU32) }
    }

    /// The kernel-shared CQ tail word (kernel-written producer index).
    fn cq_tail_word(&self) -> &AtomicU32 {
        // SAFETY: as in `sq_head_word`, inside the CQ ring mapping.
        unsafe { &*(self.cq_base().add(self.cq_tail_off) as *const AtomicU32) }
    }

    /// Stages one SQE at the next free slot. Returns `false` when the
    /// ring is full (never happens for this backend's ≤ 64-entry
    /// batches against a 128-slot ring, but checked anyway).
    fn push_sqe(&mut self, sqe: Sqe) -> bool {
        let sq_head = self.sq_head_word();
        // Acquire pairs with the kernel's Release of the head after it
        // consumed entries: slots before `head` are free for reuse.
        let head = sq_head.load(Ordering::Acquire);
        if self.sq_tail_cache.wrapping_sub(head) >= SQ_ENTRIES {
            return false;
        }
        let index = self.sq_tail_cache & self.sq_mask;
        // SAFETY: `index` is masked into the SQE array and the index
        // array, both sized `sq_entries` by the kernel; the slot is free
        // because `tail - head < entries` was just checked.
        unsafe {
            *(self.sqe_map.ptr as *mut Sqe).add(index as usize) = sqe;
            *(self.sq_map.ptr.add(self.sq_array_off) as *mut u32).add(index as usize) = index;
        }
        self.sq_tail_cache = self.sq_tail_cache.wrapping_add(1);
        true
    }

    /// Publishes staged SQEs and performs one `io_uring_enter`,
    /// waiting until `wait_for` completions are available. Returns the
    /// number of SQEs the kernel consumed.
    fn submit_and_wait(&mut self, to_submit: u32, wait_for: u32) -> io::Result<u32> {
        let sq_tail = self.sq_tail_word();
        // Release publishes the SQE and index-array writes above to the
        // kernel, which Acquire-loads the tail.
        sq_tail.store(self.sq_tail_cache, Ordering::Release);
        loop {
            // SAFETY: plain integer arguments; the fd is our ring. The
            // NULL sigmask (arg 5, size 0) means no signal-mask swap.
            let ret = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.fd as i64,
                    to_submit as i64,
                    wait_for as i64,
                    IORING_ENTER_GETEVENTS as i64,
                    0i64,
                    0i64,
                )
            };
            if ret >= 0 {
                return Ok(ret as u32);
            }
            let e = io::Error::last_os_error();
            if e.raw_os_error() != Some(EINTR) {
                return Err(e);
            }
        }
    }

    /// Pops one completion, if any.
    fn pop_cqe(&mut self) -> Option<Cqe> {
        let cq_tail = self.cq_tail_word();
        // Acquire pairs with the kernel's Release of the tail after it
        // wrote the CQE: the entry read below is fully visible.
        let tail = cq_tail.load(Ordering::Acquire);
        if self.cq_head_cache == tail {
            return None;
        }
        let index = (self.cq_head_cache & self.cq_mask) as usize;
        // SAFETY: `index` is masked into the CQE array (sized
        // `cq_entries`); the Acquire above guarantees the kernel's
        // write of this entry happened-before this read.
        let cqe = unsafe { *(self.cq_base().add(self.cqes_off) as *const Cqe).add(index) };
        self.cq_head_cache = self.cq_head_cache.wrapping_add(1);
        let cq_head = self.cq_head_word();
        // Release hands the slot back: the kernel may overwrite it only
        // after seeing our head advance.
        cq_head.store(self.cq_head_cache, Ordering::Release);
        Some(cqe)
    }

    /// `io_uring_register(REGISTER_BUFFERS)` over `iovecs`. Best-effort:
    /// registration pins the pages (subject to `RLIMIT_MEMLOCK`), so a
    /// refusal just means per-call page faults, not a broken backend.
    fn register_buffers(&mut self, iovecs: &[IoVec]) -> bool {
        // SAFETY: `iovecs` points at live, stable slab buffers and the
        // length matches; the kernel copies the table before returning.
        let ret = unsafe {
            syscall(
                SYS_IO_URING_REGISTER,
                self.fd as i64,
                IORING_REGISTER_BUFFERS as i64,
                iovecs.as_ptr() as i64,
                iovecs.len() as i64,
            )
        };
        ret == 0
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // SAFETY: closing the setup fd exactly once; the kernel tears
        // down the rings when the last reference (fd + mappings) goes.
        unsafe {
            close(self.fd);
        }
    }
}

/// The io_uring [`Backend`]: one ring per instance (so every registry
/// clone — one per shard — owns its rings and no submission path takes
/// a lock), plus stable staging memory for `msghdr`s and the receive
/// slab.
#[derive(Debug)]
pub struct UringBackend {
    ring: Ring,
    stats: BackendStats,
    /// Sticky `UDP_SEGMENT` probe for the single-SQE GSO path, same
    /// machinery as the mmsg backend's.
    gso: ProbeState,
    /// Heap-stable staging for egress: the SQEs reference these, so
    /// they live in the backend (not the stack) and are pre-sized so a
    /// steady-state send allocates nothing and never reallocates while
    /// SQEs are in flight.
    send_addr: Box<SockaddrStorage>,
    send_gso: Box<GsoControl>,
    send_iovs: Vec<IoVec>,
    send_hdrs: Vec<MsgHdr>,
    /// Ingress staging: `recvmsg` headers plus per-slot source
    /// addresses.
    recv_addrs: Vec<SockaddrStorage>,
    recv_iovs: Vec<IoVec>,
    recv_hdrs: Vec<MsgHdr>,
    /// The receive slab: pool buffers held for the backend's lifetime.
    /// Their heap blocks never move or shrink (the pool hands back the
    /// same allocations), which is what lets the kernel keep iovecs
    /// into them across `IORING_REGISTER_BUFFERS` and in-flight SQEs.
    recv_slab: Vec<Vec<u8>>,
    slab_pool: BufferPool,
    /// Whether `IORING_REGISTER_BUFFERS` succeeded (telemetry only; the
    /// datapath works either way).
    buffers_registered: bool,
    /// Adaptive ingress window: how many `RECVMSG` SQEs the next poll
    /// stages. Unlike `recvmmsg` — where an empty socket costs one
    /// syscall regardless of `vlen` — every staged SQE runs its own
    /// kernel-side receive attempt, so polling an idle socket with a
    /// full 64-entry batch would pay 64 `-EAGAIN` completions per call.
    /// The window doubles while polls fill completely and collapses to
    /// 1 when one comes up empty, so idle polling costs one SQE and
    /// bursts still reach the full batch within a few calls.
    recv_window: usize,
}

// SAFETY: the raw ring pointers target mappings owned exclusively by
// this instance (every registry clone builds its own ring), and the
// staging pointers inside `send_hdrs`/`recv_hdrs` only point into the
// same instance or into a caller's payload during one call. Moving the
// backend to another thread moves sole ownership of all of it.
unsafe impl Send for UringBackend {}

impl UringBackend {
    /// Builds a ring and its receive slab. Fails with `ENOSYS` on
    /// kernels without io_uring and `EPERM` where the
    /// `io_uring_disabled` sysctl forbids it — the ladder's cue to fall
    /// back to mmsg.
    pub fn new() -> io::Result<UringBackend> {
        let mut ring = Ring::new(SQ_ENTRIES)?;

        // The slab: one full-size datagram per batch slot, taken from a
        // pool and held forever so the allocations stay put.
        let mut slab_pool = BufferPool::new(mmsg::MAX_BATCH, MAX_DATAGRAM);
        let mut recv_slab = Vec::with_capacity(mmsg::MAX_BATCH);
        for _ in 0..mmsg::MAX_BATCH {
            let mut buf = slab_pool.take();
            buf.resize(MAX_DATAGRAM, 0);
            recv_slab.push(buf);
        }

        let mut recv_iovs: Vec<IoVec> = recv_slab
            .iter_mut()
            .map(|buf| IoVec {
                base: buf.as_mut_ptr() as *mut std::ffi::c_void,
                len: buf.len(),
            })
            .collect();
        let buffers_registered = ring.register_buffers(&recv_iovs);
        recv_iovs.clear();

        Ok(UringBackend {
            ring,
            stats: BackendStats::default(),
            gso: ProbeState::new("io_uring UDP GSO"),
            send_addr: Box::new(SockaddrStorage::default()),
            send_gso: Box::new(GsoControl::new(0)),
            send_iovs: Vec::with_capacity(mmsg::MAX_BATCH),
            send_hdrs: Vec::with_capacity(mmsg::MAX_BATCH),
            recv_addrs: vec![SockaddrStorage::default(); mmsg::MAX_BATCH],
            recv_iovs,
            recv_hdrs: Vec::with_capacity(mmsg::MAX_BATCH),
            recv_slab,
            slab_pool,
            buffers_registered,
            recv_window: 1,
        })
    }

    /// Whether the receive slab's pages are registered (pinned) with
    /// the kernel.
    pub fn buffers_registered(&self) -> bool {
        self.buffers_registered
    }

    /// Submits `count` staged SQEs, waits for their completions, and
    /// records the submit-side telemetry.
    fn submit_batch(&mut self, count: u32) -> io::Result<()> {
        self.stats.submissions += count as u64;
        self.stats.sqe_batch.record(count as u64);
        self.ring.submit_and_wait(count, count)?;
        Ok(())
    }

    /// The whole train as one `SENDMSG` SQE with a `UDP_SEGMENT` cmsg.
    /// `Ok(None)` means the GSO probe flipped and the caller should use
    /// the linked-SQE path.
    fn send_gso_sqe(
        &mut self,
        socket: &UdpSocket,
        remote: &SocketAddr,
        payload: &[u8],
        segment_size: usize,
        segments: usize,
    ) -> io::Result<Option<(usize, usize)>> {
        let namelen = encode_sockaddr(remote, &mut self.send_addr);
        *self.send_gso = GsoControl::new(segment_size);
        self.send_iovs.clear();
        self.send_iovs.push(IoVec {
            base: payload.as_ptr() as *mut std::ffi::c_void,
            len: payload.len(),
        });
        self.send_hdrs.clear();
        self.send_hdrs.push(MsgHdr {
            name: self.send_addr.as_mut() as *mut SockaddrStorage as *mut std::ffi::c_void,
            namelen,
            iov: self.send_iovs.as_mut_ptr(),
            iovlen: 1,
            control: self.send_gso.as_mut() as *mut GsoControl as *mut std::ffi::c_void,
            controllen: std::mem::size_of::<GsoControl>(),
            flags: 0,
        });
        let sqe = Sqe {
            opcode: IORING_OP_SENDMSG,
            fd: socket.as_raw_fd(),
            addr: self.send_hdrs.as_ptr() as u64,
            len: 1,
            msg_flags: MSG_DONTWAIT,
            ..Sqe::default()
        };
        if !self.ring.push_sqe(sqe) {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "io_uring submission queue full",
            ));
        }
        self.submit_batch(1)?;
        let Some(cqe) = self.ring.pop_cqe() else {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "io_uring returned no completion",
            ));
        };
        if cqe.res >= 0 {
            // UDP sends are atomic: success means the whole train went.
            self.stats.completions += 1;
            return Ok(Some((segments, 1)));
        }
        let e = io::Error::from_raw_os_error(-cqe.res);
        if e.raw_os_error() == Some(EAGAIN) {
            return Err(e);
        }
        if self.gso.observe(&e, "linked per-segment SQEs") {
            self.stats.fallbacks += 1;
            Ok(None)
        } else {
            Err(e)
        }
    }

    /// One `SENDMSG` SQE per segment, chained with `IOSQE_IO_LINK`: a
    /// refused segment cancels the rest, so successes are exactly the
    /// accepted prefix (the `sendmmsg` partial-send contract).
    fn send_linked(
        &mut self,
        socket: &UdpSocket,
        remote: &SocketAddr,
        payload: &[u8],
        segment_size: usize,
    ) -> io::Result<(usize, usize)> {
        let fd = socket.as_raw_fd();
        let namelen = encode_sockaddr(remote, &mut self.send_addr);
        let name = self.send_addr.as_mut() as *mut SockaddrStorage as *mut std::ffi::c_void;
        // Phase 1: one iovec per segment (pointers into `payload`).
        self.send_iovs.clear();
        for chunk in payload.chunks(segment_size).take(mmsg::MAX_BATCH) {
            self.send_iovs.push(IoVec {
                base: chunk.as_ptr() as *mut std::ffi::c_void,
                len: chunk.len(),
            });
        }
        // Phase 2: headers, after the iovec vector stopped moving.
        let count = self.send_iovs.len();
        self.send_hdrs.clear();
        for iov in self.send_iovs.iter_mut() {
            self.send_hdrs.push(MsgHdr {
                name,
                namelen,
                iov: iov as *mut IoVec,
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            });
        }
        for (i, hdr) in self.send_hdrs.iter_mut().enumerate() {
            let sqe = Sqe {
                opcode: IORING_OP_SENDMSG,
                // Link all but the last: one refusal cancels the tail.
                flags: if i + 1 < count { IOSQE_IO_LINK } else { 0 },
                fd,
                addr: hdr as *mut MsgHdr as u64,
                len: 1,
                msg_flags: MSG_DONTWAIT,
                user_data: i as u64,
                ..Sqe::default()
            };
            if !self.ring.push_sqe(sqe) {
                return Err(io::Error::new(
                    io::ErrorKind::Other,
                    "io_uring submission queue full",
                ));
            }
        }
        self.submit_batch(count as u32)?;
        let mut accepted = 0;
        let mut first_err: Option<i32> = None;
        for _ in 0..count {
            let Some(cqe) = self.ring.pop_cqe() else {
                break;
            };
            if cqe.res >= 0 {
                accepted += 1;
            } else if -cqe.res != ECANCELED && first_err.is_none() {
                first_err = Some(-cqe.res);
            }
        }
        self.stats.completions += accepted as u64;
        if accepted == 0 {
            return Err(io::Error::from_raw_os_error(first_err.unwrap_or(EAGAIN)));
        }
        Ok((accepted, 1))
    }
}

impl Backend for UringBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Uring
    }

    fn send_segments(
        &mut self,
        socket: &UdpSocket,
        remote: &SocketAddr,
        payload: &[u8],
        segment_size: usize,
    ) -> io::Result<(usize, usize)> {
        if payload.is_empty() {
            return Ok((0, 0));
        }
        let segment_size = if segment_size == 0 {
            payload.len()
        } else {
            segment_size
        };
        let segments = payload.len().div_ceil(segment_size);
        if segments > 1
            && !self.gso.is_unsupported()
            && segments <= UDP_MAX_SEGMENTS
            && payload.len() <= MAX_GSO_BYTES
        {
            if let Some(result) =
                self.send_gso_sqe(socket, remote, payload, segment_size, segments)?
            {
                return Ok(result);
            }
        }
        self.send_linked(socket, remote, payload, segment_size)
    }

    fn recv_batch(
        &mut self,
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        out: &mut Vec<(SocketAddr, usize)>,
    ) -> io::Result<(usize, usize)> {
        if bufs.is_empty() {
            return Ok((0, 0));
        }
        let fd = socket.as_raw_fd();
        let count = bufs
            .len()
            .min(self.recv_slab.len())
            .min(self.recv_window.max(1));
        // Stage one RECVMSG per slab slot: iovec into the slab buffer,
        // msg_name into the per-slot sockaddr.
        self.recv_iovs.clear();
        for buf in self.recv_slab.iter_mut().take(count) {
            self.recv_iovs.push(IoVec {
                base: buf.as_mut_ptr() as *mut std::ffi::c_void,
                len: buf.len(),
            });
        }
        self.recv_hdrs.clear();
        for (addr, iov) in self
            .recv_addrs
            .iter_mut()
            .zip(self.recv_iovs.iter_mut())
            .take(count)
        {
            self.recv_hdrs.push(MsgHdr {
                name: addr as *mut SockaddrStorage as *mut std::ffi::c_void,
                namelen: 128,
                iov: iov as *mut IoVec,
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            });
        }
        for (i, hdr) in self.recv_hdrs.iter_mut().enumerate() {
            let sqe = Sqe {
                opcode: IORING_OP_RECVMSG,
                fd,
                addr: hdr as *mut MsgHdr as u64,
                len: 1,
                msg_flags: MSG_DONTWAIT,
                user_data: i as u64,
                ..Sqe::default()
            };
            if !self.ring.push_sqe(sqe) {
                return Err(io::Error::new(
                    io::ErrorKind::Other,
                    "io_uring submission queue full",
                ));
            }
        }
        self.submit_batch(count as u32)?;
        let mut received = 0;
        let mut first_err: Option<i32> = None;
        for _ in 0..count {
            let Some(cqe) = self.ring.pop_cqe() else {
                break;
            };
            if cqe.res < 0 {
                let errno = -cqe.res;
                if errno != EAGAIN && errno != ECANCELED && first_err.is_none() {
                    first_err = Some(errno);
                }
                continue;
            }
            let slot = cqe.user_data as usize;
            let len = cqe.res as usize;
            let (Some(slab), Some(dst)) = (self.recv_slab.get(slot), bufs.get_mut(received)) else {
                continue;
            };
            let copy = len.min(slab.len()).min(dst.len());
            if let (Some(src), Some(dst)) = (slab.get(..copy), dst.get_mut(..copy)) {
                dst.copy_from_slice(src);
            }
            // An undecodable source address (never seen for UDP in
            // practice) degrades to the unspecified address; the
            // transport discards unauthenticated datagrams anyway.
            let remote = self
                .recv_addrs
                .get(slot)
                .and_then(decode_sockaddr)
                .unwrap_or_else(|| SocketAddr::from(([0, 0, 0, 0], 0)));
            out.push((remote, copy));
            received += 1;
        }
        self.stats.completions += received as u64;
        // Grow the window while batches fill, collapse it when the
        // socket runs dry (see the `recv_window` field).
        self.recv_window = if received == count {
            (count * 2).min(self.recv_slab.len())
        } else {
            1
        };
        if received == 0 {
            return Err(io::Error::from_raw_os_error(first_err.unwrap_or(EAGAIN)));
        }
        Ok((received, 1))
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }
}

impl Drop for UringBackend {
    fn drop(&mut self) {
        // Hand the slab back so the pool's leak check stays honest.
        for buf in self.recv_slab.drain(..) {
            self.slab_pool.put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend_or_skip() -> Option<UringBackend> {
        match UringBackend::new() {
            Ok(backend) => Some(backend),
            Err(e) => {
                eprintln!("skipping io_uring test: {e}");
                None
            }
        }
    }

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let b_addr = b.local_addr().unwrap();
        (a, b, b_addr)
    }

    #[test]
    fn train_round_trips_through_the_ring() {
        let Some(mut backend) = backend_or_skip() else {
            return;
        };
        let (a, b, b_addr) = pair();
        // 3 full segments + 1 short one.
        let payload: Vec<u8> = (0..350).map(|i| i as u8).collect();
        let (sent, syscalls) = backend.send_segments(&a, &b_addr, &payload, 100).unwrap();
        assert_eq!(sent, 4);
        assert_eq!(syscalls, 1, "one io_uring_enter per train");

        let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 2048]).collect();
        let mut metas = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut got = 0;
        while got < 4 && std::time::Instant::now() < deadline {
            match backend.recv_batch(&b, &mut bufs[got..], &mut metas) {
                Ok((k, _)) => got += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_micros(200))
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
        assert_eq!(got, 4, "all four segments arrive");
        let lens: Vec<usize> = metas.iter().map(|(_, len)| *len).collect();
        assert_eq!(lens, [100, 100, 100, 50]);
        let a_addr = a.local_addr().unwrap();
        for (remote, _) in &metas {
            assert_eq!(*remote, a_addr, "source address survives the ring");
        }
        let mut rejoined = Vec::new();
        for (buf, (_, len)) in bufs.iter().zip(metas.iter()) {
            rejoined.extend_from_slice(&buf[..*len]);
        }
        assert_eq!(rejoined, payload);
        assert!(backend.stats().submissions >= 1);
        assert!(backend.stats().completions >= 5);
    }

    #[test]
    fn empty_socket_reports_would_block() {
        let Some(mut backend) = backend_or_skip() else {
            return;
        };
        let (_a, b, _b_addr) = pair();
        let mut bufs: Vec<Vec<u8>> = vec![vec![0u8; 128]];
        let mut metas = Vec::new();
        let err = backend.recv_batch(&b, &mut bufs, &mut metas).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn single_datagram_uses_one_sqe() {
        let Some(mut backend) = backend_or_skip() else {
            return;
        };
        let (a, _b, b_addr) = pair();
        let (sent, syscalls) = backend.send_segments(&a, &b_addr, b"hello", 0).unwrap();
        assert_eq!((sent, syscalls), (1, 1));
        assert_eq!(backend.stats().sqe_batch.max(), 1);
    }

    #[test]
    fn ipv6_addresses_round_trip() {
        let Some(mut backend) = backend_or_skip() else {
            return;
        };
        let a = UdpSocket::bind("[::1]:0").unwrap();
        let b = UdpSocket::bind("[::1]:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let b_addr = b.local_addr().unwrap();
        let (sent, _) = backend.send_segments(&a, &b_addr, b"v6", 0).unwrap();
        assert_eq!(sent, 1);
        let mut bufs: Vec<Vec<u8>> = vec![vec![0u8; 128]];
        let mut metas = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            match backend.recv_batch(&b, &mut bufs, &mut metas) {
                Ok((1, _)) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "datagram arrives");
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
        assert_eq!(metas[0].0, a.local_addr().unwrap());
    }
}
