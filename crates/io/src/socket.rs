//! The socket registry: one non-blocking UDP socket per local address.
//!
//! A multipath endpoint is multihomed by definition — the client in the
//! paper's Fig. 2 owns a WiFi and an LTE interface. The registry binds one
//! `std::net::UdpSocket` per local address, keeps them all in non-blocking
//! mode, and routes each outgoing [`mpquic_util::Datagram`] to the socket
//! bound to the datagram's source address (that is how a `Transmit`
//! selects its path at the OS level).
//!
//! Receive is poll-based: [`SocketRegistry::poll_recv`] round-robins over
//! the sockets so a busy path cannot starve a quiet one. The event loop in
//! [`crate::driver`] owns the cadence (it sleeps until the next protocol
//! deadline between polls).

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Largest datagram the registry can receive (UDP's theoretical maximum;
/// the connection itself never sends more than its configured MTU).
pub const MAX_DATAGRAM: usize = 65_535;

/// How many times a send that hit a full socket buffer is retried before
/// the datagram is treated as dropped (loss recovery retransmits it).
const SEND_RETRIES: u32 = 3;

/// One received datagram's addressing, paired with a caller buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvMeta {
    /// The local address the datagram arrived on (identifies the path's
    /// local end).
    pub local: SocketAddr,
    /// The sender's address.
    pub remote: SocketAddr,
    /// Payload length within the caller's buffer.
    pub len: usize,
}

/// A set of non-blocking UDP sockets, one per local interface address.
#[derive(Debug)]
pub struct SocketRegistry {
    sockets: Vec<(SocketAddr, UdpSocket)>,
    /// Round-robin cursor so `poll_recv` serves interfaces fairly.
    cursor: usize,
    /// Datagrams abandoned after repeated `WouldBlock` on send.
    send_drops: u64,
}

impl SocketRegistry {
    /// Binds one non-blocking socket per address. Addresses may use port 0
    /// (the OS assigns an ephemeral port); [`SocketRegistry::local_addrs`]
    /// reports the addresses actually bound — those are what must be
    /// handed to `Connection::client`/`Connection::server`.
    pub fn bind(addrs: &[SocketAddr]) -> io::Result<SocketRegistry> {
        assert!(!addrs.is_empty(), "at least one local address required");
        let mut sockets = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            let socket = UdpSocket::bind(addr)?;
            socket.set_nonblocking(true)?;
            let local = socket.local_addr()?;
            sockets.push((local, socket));
        }
        Ok(SocketRegistry {
            sockets,
            cursor: 0,
            send_drops: 0,
        })
    }

    /// The bound local addresses, in bind order.
    pub fn local_addrs(&self) -> Vec<SocketAddr> {
        self.sockets.iter().map(|(addr, _)| *addr).collect()
    }

    /// Number of sockets in the registry.
    pub fn len(&self) -> usize {
        self.sockets.len()
    }

    /// True if the registry holds no sockets (never, post-`bind`).
    pub fn is_empty(&self) -> bool {
        self.sockets.is_empty()
    }

    /// Datagrams abandoned because the socket buffer stayed full.
    pub fn send_drops(&self) -> u64 {
        self.send_drops
    }

    /// Sends `payload` from the socket bound to `local` to `remote`.
    ///
    /// Returns `Ok(true)` if handed to the OS, `Ok(false)` if the socket
    /// buffer stayed full and the datagram was dropped — which to the
    /// transport is indistinguishable from network loss, and is recovered
    /// the same way.
    pub fn send_from(
        &mut self,
        local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
    ) -> io::Result<bool> {
        let socket = self
            .sockets
            .iter()
            .find(|(addr, _)| *addr == local)
            .map(|(_, socket)| socket)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no socket bound to {local}"),
                )
            })?;
        for attempt in 0..=SEND_RETRIES {
            match socket.send_to(payload, remote) {
                Ok(_) => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if attempt < SEND_RETRIES {
                        // Give the kernel a moment to drain the buffer.
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.send_drops += 1;
        Ok(false)
    }

    /// Polls every socket once (starting after the last one served) and
    /// returns the first datagram found, or `None` when all sockets are
    /// dry. `buf` must be at least [`MAX_DATAGRAM`] bytes.
    pub fn poll_recv(&mut self, buf: &mut [u8]) -> io::Result<Option<RecvMeta>> {
        let n = self.sockets.len();
        for i in 0..n {
            let index = (self.cursor + i) % n;
            let Some((local, socket)) = self.sockets.get(index) else {
                continue;
            };
            match socket.recv_from(buf) {
                Ok((len, remote)) => {
                    self.cursor = (index + 1) % n;
                    return Ok(Some(RecvMeta {
                        local: *local,
                        remote,
                        len,
                    }));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) => {}
                // A previous send to an unreachable port surfaces here on
                // some platforms (Linux ICMP errors); treat as no-data,
                // the transport's own timers handle the unreachable peer.
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    #[test]
    fn bind_assigns_ephemeral_ports() {
        let registry = SocketRegistry::bind(&[loopback(0), loopback(0)]).unwrap();
        let addrs = registry.local_addrs();
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0].port(), 0);
        assert_ne!(addrs[1].port(), 0);
        assert_ne!(addrs[0], addrs[1]);
    }

    #[test]
    fn send_routes_by_local_address_and_recv_reports_it() {
        let mut a = SocketRegistry::bind(&[loopback(0), loopback(0)]).unwrap();
        let mut b = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let a_addrs = a.local_addrs();
        let b_addr = b.local_addrs()[0];

        // Send one datagram from each of A's interfaces.
        assert!(a.send_from(a_addrs[0], b_addr, b"first").unwrap());
        assert!(a.send_from(a_addrs[1], b_addr, b"second").unwrap());

        let mut buf = vec![0u8; MAX_DATAGRAM];
        let mut seen = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while seen.len() < 2 && std::time::Instant::now() < deadline {
            if let Some(meta) = b.poll_recv(&mut buf).unwrap() {
                assert_eq!(meta.local, b_addr);
                seen.push((meta.remote, buf[..meta.len].to_vec()));
            } else {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        seen.sort_by_key(|(_, payload)| payload.clone());
        assert_eq!(seen.len(), 2, "both datagrams arrive");
        assert_eq!(seen[0].0, a_addrs[0], "source address identifies the path");
        assert_eq!(seen[1].0, a_addrs[1]);
        assert_eq!(seen[0].1, b"first");
        assert_eq!(seen[1].1, b"second");
    }

    #[test]
    fn send_from_unknown_local_address_errors() {
        let mut a = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let bogus = loopback(9); // not bound by us
        let err = a.send_from(bogus, loopback(10), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
