//! The socket registry: one non-blocking UDP socket per local address,
//! with a batched datapath.
//!
//! A multipath endpoint is multihomed by definition — the client in the
//! paper's Fig. 2 owns a WiFi and an LTE interface. The registry binds one
//! `std::net::UdpSocket` per local address, keeps them all in non-blocking
//! mode, and routes each outgoing datagram to the socket bound to its
//! source address (that is how a `Transmit` selects its path at the OS
//! level).
//!
//! The hot paths are *batched* and run through a pluggable
//! [`Backend`] (see [`crate::backend`]): [`send_train`] fans a
//! GSO-shaped segment train out in one submission (an io_uring SQE
//! chain, a `sendmmsg` call, or a portable loop, whichever the ladder
//! probed into) and [`poll_recv_batch`] fills a [`RecvBatch`] with one
//! batched receive per socket, round-robining so a busy path cannot
//! starve a quiet one. A backend that turns out unsupported at runtime
//! (`ENOSYS`/`EPERM`, see [`crate::probe`]) is swapped for the next
//! rung down *mid-train*: the registry retries the unsent suffix on
//! the replacement, so a probe failure never loses queued datagrams.
//! Per-batch telemetry ([`BatchStats`]) records the datagrams-per-
//! syscall histogram and the syscalls saved versus a one-at-a-time
//! loop. The one-at-a-time [`SocketRegistry::send_from`] /
//! [`SocketRegistry::poll_recv`] remain as thin shims.
//!
//! Send-buffer drops are counted **per socket** so a report can show
//! *which* interface was overwhelmed, not just that one was.
//!
//! [`send_train`]: SocketRegistry::send_train
//! [`poll_recv_batch`]: SocketRegistry::poll_recv_batch

use mpquic_telemetry::LogHistogram;
use std::io;
use std::net::{SocketAddr, UdpSocket};

use crate::backend::{self, Backend, BackendChoice, BackendKind, BackendStats};
use crate::backoff::Backoff;
use crate::mmsg;
use crate::probe;

/// Largest datagram the registry can receive (UDP's theoretical maximum;
/// the connection itself never sends more than its configured MTU).
pub const MAX_DATAGRAM: usize = 65_535;

/// How many times a send that hit a full socket buffer is retried before
/// the remaining datagrams are treated as dropped (loss recovery
/// retransmits them). The retries walk the [`Backoff`] ladder, so the
/// early ones are near-free spins and only a persistently full buffer
/// accumulates real sleep time (~150 µs total, matching the fixed
/// 3 × 50 µs budget this replaces).
const SEND_RETRIES: u32 = 12;

/// Kernel buffer size requested for every bound socket (clamped by the
/// kernel to `rmem_max`/`wmem_max`). The default ~208 KiB receive
/// buffer holds a listen socket only ~170 full datagrams of burst; with
/// many connections demuxed through one socket, one scheduling stall of
/// the demux thread overflows it and triggers an RTO storm. 4 MiB
/// matches the common `rmem_max` ceiling.
const SOCKET_BUFFER_BYTES: usize = 4 << 20;

/// One received datagram's addressing, paired with a caller buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvMeta {
    /// The local address the datagram arrived on (identifies the path's
    /// local end).
    pub local: SocketAddr,
    /// The sender's address.
    pub remote: SocketAddr,
    /// Payload length within the caller's buffer.
    pub len: usize,
}

/// Per-batch datapath telemetry: how well the syscall batching works.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Batched send syscalls issued.
    pub send_syscalls: u64,
    /// Batched receive syscalls that returned at least one datagram.
    pub recv_syscalls: u64,
    /// Syscalls avoided versus a one-datagram-per-syscall loop
    /// (`datagrams - syscalls`, summed; 0 on platforms without native
    /// batching).
    pub syscalls_saved: u64,
    /// Datagrams handed to the OS per send syscall.
    pub send_batch_size: LogHistogram,
    /// Datagrams returned per productive receive syscall.
    pub recv_batch_size: LogHistogram,
}

impl BatchStats {
    /// Folds another registry's counters into this one — used to
    /// aggregate the per-shard registries of an endpoint into one
    /// report without sharing any state between the shards at runtime.
    pub fn merge(&mut self, other: &BatchStats) {
        self.send_syscalls += other.send_syscalls;
        self.recv_syscalls += other.recv_syscalls;
        self.syscalls_saved += other.syscalls_saved;
        self.send_batch_size.merge(&other.send_batch_size);
        self.recv_batch_size.merge(&other.recv_batch_size);
    }
}

/// One bound socket plus its local counters.
#[derive(Debug)]
struct Entry {
    local: SocketAddr,
    socket: UdpSocket,
    /// Datagrams abandoned after repeated `WouldBlock` on send — kept
    /// per socket so reports can name the overwhelmed interface.
    send_drops: u64,
}

/// A reusable receive batch: fixed buffers plus the metadata of the
/// datagrams the last [`SocketRegistry::poll_recv_batch`] call filled
/// them with. Buffer `i` pairs with meta `i`; after warm-up the batch
/// performs no allocation.
#[derive(Debug)]
pub struct RecvBatch {
    bufs: Vec<Vec<u8>>,
    metas: Vec<RecvMeta>,
}

impl RecvBatch {
    /// A batch accepting up to `capacity` datagrams per poll, each up
    /// to [`MAX_DATAGRAM`] bytes.
    pub fn new(capacity: usize) -> RecvBatch {
        let capacity = capacity.max(1);
        RecvBatch {
            bufs: (0..capacity).map(|_| vec![0u8; MAX_DATAGRAM]).collect(),
            metas: Vec::with_capacity(capacity),
        }
    }

    /// Datagrams held from the last poll.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True when the last poll returned nothing.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// The received datagrams, in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (RecvMeta, &[u8])> {
        self.metas
            .iter()
            .zip(self.bufs.iter())
            .map(|(meta, buf)| (*meta, buf.get(..meta.len).unwrap_or(&[])))
    }

    fn clear(&mut self) {
        self.metas.clear();
    }
}

/// A set of non-blocking UDP sockets, one per local interface address.
#[derive(Debug)]
pub struct SocketRegistry {
    sockets: Vec<Entry>,
    /// Round-robin cursor so receive polls serve interfaces fairly.
    cursor: usize,
    /// The datapath implementation the probe ladder selected (see
    /// [`crate::backend`]); swapped in place for the next rung when a
    /// runtime refusal proves it unsupported.
    backend: Box<dyn Backend>,
    /// Ladder descents taken by *this* registry (a backend swap after a
    /// runtime refusal) — merged into [`SocketRegistry::backend_stats`]
    /// on top of the backend's own intra-rung fallback count.
    backend_fallbacks: u64,
    /// Scratch for `(remote, len)` pairs coming back from a batch recv.
    pairs: Vec<(SocketAddr, usize)>,
    batch: BatchStats,
}

impl SocketRegistry {
    /// Binds one non-blocking socket per address. Addresses may use port 0
    /// (the OS assigns an ephemeral port); [`SocketRegistry::local_addrs`]
    /// reports the addresses actually bound — those are what must be
    /// handed to `Connection::client`/`Connection::server`.
    pub fn bind(addrs: &[SocketAddr]) -> io::Result<SocketRegistry> {
        Self::bind_with(addrs, backend::default_choice())
    }

    /// [`SocketRegistry::bind`] with an explicit datapath backend choice
    /// instead of the process default. [`BackendChoice::Auto`] probes
    /// down the ladder and cannot fail on the backend's account; a
    /// forced arm (`--backend uring` on a kernel without io_uring)
    /// returns the probe error so the caller can refuse honestly
    /// rather than silently running a different datapath than asked.
    pub fn bind_with(addrs: &[SocketAddr], choice: BackendChoice) -> io::Result<SocketRegistry> {
        assert!(!addrs.is_empty(), "at least one local address required");
        let backend = backend::create(choice)?;
        let mut sockets = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            let socket = UdpSocket::bind(addr)?;
            socket.set_nonblocking(true)?;
            mmsg::set_buffer_sizes(&socket, SOCKET_BUFFER_BYTES);
            let local = socket.local_addr()?;
            sockets.push(Entry {
                local,
                socket,
                send_drops: 0,
            });
        }
        Ok(SocketRegistry {
            sockets,
            cursor: 0,
            backend,
            backend_fallbacks: 0,
            pairs: Vec::with_capacity(mmsg::MAX_BATCH),
            batch: BatchStats::default(),
        })
    }

    /// Clones the registry: the same underlying sockets (`dup`ed file
    /// descriptors, so datagrams sent through either handle leave the
    /// same bound ports) with fresh, independent scratch arrays, batch
    /// telemetry and drop counters.
    ///
    /// This is how an endpoint's worker shards each get a send handle
    /// over the shared listen sockets without any locking: kernel UDP
    /// sends are atomic per syscall, and everything mutable in the
    /// registry itself is per-clone. Receiving through more than one
    /// clone is *not* coordinated — concurrent receivers steal
    /// datagrams from each other — so keep ingress on one handle.
    pub fn try_clone(&self) -> io::Result<SocketRegistry> {
        let mut sockets = Vec::with_capacity(self.sockets.len());
        for entry in &self.sockets {
            sockets.push(Entry {
                local: entry.local,
                socket: entry.socket.try_clone()?,
                send_drops: 0,
            });
        }
        Ok(SocketRegistry {
            sockets,
            cursor: 0,
            // Rings and registered buffers are per-instance state, so a
            // clone builds its own backend of the same kind (degrading
            // a rung if, say, a uring setup now hits a ulimit).
            backend: backend::create_like(self.backend.kind()),
            backend_fallbacks: 0,
            pairs: Vec::with_capacity(mmsg::MAX_BATCH),
            batch: BatchStats::default(),
        })
    }

    /// The bound local addresses, in bind order.
    pub fn local_addrs(&self) -> Vec<SocketAddr> {
        self.sockets.iter().map(|entry| entry.local).collect()
    }

    /// Rebinds the socket bound to `old_local` onto a fresh ephemeral
    /// port on the same interface, returning the new local address —
    /// the client half of a NAT rebinding / connection migration.
    /// Subsequent sends routed to the returned address leave from the
    /// new source port; anything still in the old socket's receive
    /// buffer is abandoned with it (to the transport that is loss, and
    /// is recovered the same way).
    pub fn rebind(&mut self, old_local: SocketAddr) -> io::Result<SocketAddr> {
        let index = self
            .sockets
            .iter()
            .position(|entry| entry.local == old_local)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no socket bound to {old_local}"),
                )
            })?;
        let mut fresh = old_local;
        fresh.set_port(0);
        let socket = UdpSocket::bind(fresh)?;
        socket.set_nonblocking(true)?;
        mmsg::set_buffer_sizes(&socket, SOCKET_BUFFER_BYTES);
        let local = socket.local_addr()?;
        if let Some(entry) = self.sockets.get_mut(index) {
            entry.socket = socket;
            entry.local = local;
        }
        Ok(local)
    }

    /// Number of sockets in the registry.
    pub fn len(&self) -> usize {
        self.sockets.len()
    }

    /// True if the registry holds no sockets (never, post-`bind`).
    pub fn is_empty(&self) -> bool {
        self.sockets.is_empty()
    }

    /// Total datagrams abandoned because a socket buffer stayed full.
    pub fn send_drops(&self) -> u64 {
        self.sockets.iter().map(|entry| entry.send_drops).sum()
    }

    /// Send drops broken down by local address, in bind order.
    pub fn send_drops_per_socket(&self) -> Vec<(SocketAddr, u64)> {
        self.sockets
            .iter()
            .map(|entry| (entry.local, entry.send_drops))
            .collect()
    }

    /// Datapath batching telemetry.
    pub fn batch_stats(&self) -> &BatchStats {
        &self.batch
    }

    /// Which datapath backend this registry is currently running on
    /// (may be a lower rung than originally probed, after a runtime
    /// fallback).
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Backend telemetry: submissions/completions/batch-size from the
    /// live backend, plus the ladder descents this registry took on top
    /// of the backend's own intra-rung (GSO → per-segment) fallbacks.
    pub fn backend_stats(&self) -> BackendStats {
        let mut stats = self.backend.stats().clone();
        stats.fallbacks += self.backend_fallbacks;
        stats
    }

    /// Swaps the live backend out — test hook for simulating a runtime
    /// probe failure (e.g. a backend that starts returning `ENOSYS`).
    #[cfg(test)]
    pub(crate) fn set_backend_for_tests(&mut self, backend: Box<dyn Backend>) {
        self.backend = backend;
    }

    /// Drops to the next rung of the backend ladder after `err` proved
    /// the current one unsupported. Returns `false` when already on the
    /// floor (the error then surfaces to the caller).
    fn descend_ladder(&mut self, err: &io::Error) -> bool {
        match backend::next_fallback(self.backend.kind()) {
            Some(next) => {
                eprintln!(
                    "warn: {} backend refused at runtime ({err}); falling back to {}",
                    self.backend.kind(),
                    next.kind()
                );
                self.backend = next;
                self.backend_fallbacks += 1;
                true
            }
            None => false,
        }
    }

    /// Sends a segment train — `payload` split at `segment_size`
    /// boundaries (`None`: a single datagram) — from the socket bound
    /// to `local` to `remote`, batching all segments into one syscall
    /// where the platform allows.
    ///
    /// Returns the number of datagrams handed to the OS. Segments the
    /// socket buffer would not take after retries are counted in the
    /// socket's drop counter — to the transport that is
    /// indistinguishable from network loss, and is recovered the same
    /// way.
    pub fn send_train(
        &mut self,
        local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
        segment_size: Option<usize>,
    ) -> io::Result<usize> {
        let index = self
            .sockets
            .iter()
            .position(|entry| entry.local == local)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no socket bound to {local}"),
                )
            })?;
        let seg = match segment_size {
            Some(seg) if seg > 0 => seg,
            _ => payload.len().max(1),
        };
        let total = payload.len().div_ceil(seg);
        let mut sent = 0;
        let mut attempt = 0;
        let mut backoff = Backoff::new();
        while sent < total {
            let rest = payload.get(sent * seg..).unwrap_or(&[]);
            let Some(entry) = self.sockets.get(index) else {
                break;
            };
            match self
                .backend
                .send_segments(&entry.socket, &remote, rest, seg)
            {
                Ok((accepted, syscalls)) if accepted > 0 => {
                    sent += accepted;
                    self.batch.send_syscalls += syscalls as u64;
                    self.batch.send_batch_size.record(accepted as u64);
                    self.batch.syscalls_saved += accepted.saturating_sub(syscalls) as u64;
                    backoff.reset();
                }
                Ok(_) => {
                    // The kernel accepted nothing without erroring:
                    // treat like a full buffer.
                    attempt += 1;
                    if attempt > SEND_RETRIES {
                        break;
                    }
                    backoff.wait();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    attempt += 1;
                    if attempt > SEND_RETRIES {
                        break;
                    }
                    // Give the kernel a moment to drain the buffer,
                    // spending as little of it waiting as possible.
                    backoff.wait();
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // The backend itself proved unsupported (ENOSYS/EPERM
                // class): descend the ladder and retry the *same*
                // unsent suffix on the replacement — a probe failure
                // must not lose the queued train.
                Err(e) if probe::is_unsupported(&e) && self.descend_ladder(&e) => {}
                Err(e) => return Err(e),
            }
        }
        if sent < total {
            if let Some(entry) = self.sockets.get_mut(index) {
                entry.send_drops += (total - sent) as u64;
            }
        }
        Ok(sent)
    }

    /// Sends a single datagram from the socket bound to `local` to
    /// `remote` (a one-segment [`SocketRegistry::send_train`]).
    ///
    /// Returns `Ok(true)` if handed to the OS, `Ok(false)` if the socket
    /// buffer stayed full and the datagram was dropped.
    pub fn send_from(
        &mut self,
        local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
    ) -> io::Result<bool> {
        let sent = self.send_train(local, remote, payload, None)?;
        Ok(sent > 0)
    }

    /// Fills `batch` with as many pending datagrams as one pass over
    /// the sockets yields (one batched receive syscall per socket,
    /// starting after the socket served last). Returns how many
    /// datagrams were received; 0 means all sockets were dry.
    pub fn poll_recv_batch(&mut self, batch: &mut RecvBatch) -> io::Result<usize> {
        batch.clear();
        let n = self.sockets.len();
        if n == 0 {
            return Ok(0);
        }
        let mut total = 0;
        for i in 0..n {
            let index = (self.cursor + i) % n;
            let filled = batch.metas.len();
            let Some(slots) = batch.bufs.get_mut(filled..) else {
                break;
            };
            if slots.is_empty() {
                break;
            }
            let Some(entry) = self.sockets.get(index) else {
                continue;
            };
            let local = entry.local;
            self.pairs.clear();
            match self
                .backend
                .recv_batch(&entry.socket, slots, &mut self.pairs)
            {
                Ok((received, syscalls)) if received > 0 => {
                    self.batch.recv_syscalls += syscalls as u64;
                    self.batch.recv_batch_size.record(received as u64);
                    self.batch.syscalls_saved += received.saturating_sub(syscalls) as u64;
                    for &(remote, len) in &self.pairs {
                        batch.metas.push(RecvMeta { local, remote, len });
                    }
                    total += received;
                    self.cursor = (index + 1) % n;
                }
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) => {}
                // A previous send to an unreachable port surfaces here on
                // some platforms (Linux ICMP errors); treat as no-data,
                // the transport's own timers handle the unreachable peer.
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {}
                // Unsupported-class refusal: descend the ladder; the
                // datagrams are still in the kernel buffer, so the next
                // poll (on the replacement rung) drains them — nothing
                // is lost by treating this pass as dry.
                Err(e) if probe::is_unsupported(&e) && self.descend_ladder(&e) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    /// Polls every socket once (starting after the last one served) and
    /// returns the first datagram found, or `None` when all sockets are
    /// dry. `buf` must be at least [`MAX_DATAGRAM`] bytes.
    pub fn poll_recv(&mut self, buf: &mut [u8]) -> io::Result<Option<RecvMeta>> {
        let n = self.sockets.len();
        for i in 0..n {
            let index = (self.cursor + i) % n;
            let Some(entry) = self.sockets.get(index) else {
                continue;
            };
            match entry.socket.recv_from(buf) {
                Ok((len, remote)) => {
                    let local = entry.local;
                    self.cursor = (index + 1) % n;
                    return Ok(Some(RecvMeta { local, remote, len }));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    #[test]
    fn bind_assigns_ephemeral_ports() {
        let registry = SocketRegistry::bind(&[loopback(0), loopback(0)]).unwrap();
        let addrs = registry.local_addrs();
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0].port(), 0);
        assert_ne!(addrs[1].port(), 0);
        assert_ne!(addrs[0], addrs[1]);
    }

    #[test]
    fn send_routes_by_local_address_and_recv_reports_it() {
        let mut a = SocketRegistry::bind(&[loopback(0), loopback(0)]).unwrap();
        let mut b = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let a_addrs = a.local_addrs();
        let b_addr = b.local_addrs()[0];

        // Send one datagram from each of A's interfaces.
        assert!(a.send_from(a_addrs[0], b_addr, b"first").unwrap());
        assert!(a.send_from(a_addrs[1], b_addr, b"second").unwrap());

        let mut buf = vec![0u8; MAX_DATAGRAM];
        let mut seen = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while seen.len() < 2 && std::time::Instant::now() < deadline {
            if let Some(meta) = b.poll_recv(&mut buf).unwrap() {
                assert_eq!(meta.local, b_addr);
                seen.push((meta.remote, buf[..meta.len].to_vec()));
            } else {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        seen.sort_by_key(|(_, payload)| payload.clone());
        assert_eq!(seen.len(), 2, "both datagrams arrive");
        assert_eq!(seen[0].0, a_addrs[0], "source address identifies the path");
        assert_eq!(seen[1].0, a_addrs[1]);
        assert_eq!(seen[0].1, b"first");
        assert_eq!(seen[1].1, b"second");
    }

    #[test]
    fn send_from_unknown_local_address_errors() {
        let mut a = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let bogus = loopback(9); // not bound by us
        let err = a.send_from(bogus, loopback(10), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn train_fans_out_and_batch_recv_collects() {
        let mut a = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let mut b = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let a_addr = a.local_addrs()[0];
        let b_addr = b.local_addrs()[0];

        // A 5-segment train: 4 × 100 B + 1 × 60 B.
        let payload: Vec<u8> = (0..460).map(|i| (i % 251) as u8).collect();
        let sent = a.send_train(a_addr, b_addr, &payload, Some(100)).unwrap();
        assert_eq!(sent, 5);
        assert_eq!(a.send_drops(), 0);
        assert!(a.batch_stats().send_syscalls >= 1);
        if mmsg::NATIVE_BATCH {
            assert_eq!(a.batch_stats().send_syscalls, 1);
            assert_eq!(a.batch_stats().syscalls_saved, 4);
            assert_eq!(a.batch_stats().send_batch_size.max(), 5);
        }

        let mut batch = RecvBatch::new(16);
        let mut rejoined = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while rejoined.len() < payload.len() && std::time::Instant::now() < deadline {
            if b.poll_recv_batch(&mut batch).unwrap() == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
                continue;
            }
            for (meta, bytes) in batch.iter() {
                assert_eq!(meta.local, b_addr);
                assert_eq!(meta.remote, a_addr);
                rejoined.extend_from_slice(bytes);
            }
        }
        assert_eq!(rejoined, payload, "segments reassemble byte-for-byte");
        assert!(b.batch_stats().recv_syscalls >= 1);
        if mmsg::NATIVE_BATCH {
            assert!(
                b.batch_stats().recv_batch_size.max() > 1,
                "recvmmsg returned more than one datagram in a call"
            );
        }
    }

    /// A backend whose kernel support "disappears" at runtime: every
    /// submit is refused with `ENOSYS`, the way a forced uring arm
    /// behaves once `io_uring_disabled` flips mid-run.
    #[derive(Debug, Default)]
    struct FailingBackend {
        stats: BackendStats,
    }

    impl Backend for FailingBackend {
        fn kind(&self) -> BackendKind {
            BackendKind::Uring
        }

        fn send_segments(
            &mut self,
            _socket: &UdpSocket,
            _remote: &SocketAddr,
            _payload: &[u8],
            _segment_size: usize,
        ) -> io::Result<(usize, usize)> {
            Err(io::Error::from_raw_os_error(38)) // ENOSYS
        }

        fn recv_batch(
            &mut self,
            _socket: &UdpSocket,
            _bufs: &mut [Vec<u8>],
            _out: &mut Vec<(SocketAddr, usize)>,
        ) -> io::Result<(usize, usize)> {
            Err(io::Error::from_raw_os_error(38))
        }

        fn stats(&self) -> &BackendStats {
            &self.stats
        }
    }

    #[test]
    fn probe_failure_falls_back_without_losing_the_train() {
        let mut a = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let mut b = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let a_addr = a.local_addrs()[0];
        let b_addr = b.local_addrs()[0];

        a.set_backend_for_tests(Box::new(FailingBackend::default()));
        assert_eq!(a.backend_kind(), BackendKind::Uring);

        // The first submit hits ENOSYS; the registry must descend the
        // ladder and resend the same train, losing nothing.
        let payload: Vec<u8> = (0..460).map(|i| (i % 251) as u8).collect();
        let sent = a.send_train(a_addr, b_addr, &payload, Some(100)).unwrap();
        assert_eq!(sent, 5, "whole train handed to the fallback backend");
        assert_eq!(a.send_drops(), 0);
        assert_eq!(
            a.backend_kind(),
            BackendKind::Mmsg,
            "ladder descended one rung"
        );
        assert_eq!(a.backend_stats().fallbacks, 1);

        let mut batch = RecvBatch::new(16);
        let mut rejoined = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while rejoined.len() < payload.len() && std::time::Instant::now() < deadline {
            if b.poll_recv_batch(&mut batch).unwrap() == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
                continue;
            }
            for (_, bytes) in batch.iter() {
                rejoined.extend_from_slice(bytes);
            }
        }
        assert_eq!(rejoined, payload, "queued train survived the fallback");
    }

    #[test]
    fn recv_probe_failure_descends_ladder_and_next_poll_drains() {
        let mut a = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let mut b = SocketRegistry::bind(&[loopback(0)]).unwrap();
        let a_addr = a.local_addrs()[0];
        let b_addr = b.local_addrs()[0];
        assert!(a
            .send_from(a_addr, b_addr, b"held in kernel buffer")
            .unwrap());

        b.set_backend_for_tests(Box::new(FailingBackend::default()));
        let mut batch = RecvBatch::new(4);
        // The refused pass reports dry but swaps the backend…
        assert_eq!(b.poll_recv_batch(&mut batch).unwrap(), 0);
        assert_eq!(b.backend_kind(), BackendKind::Mmsg);
        // …and the datagram is still in the kernel buffer for the next
        // poll on the replacement rung.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut got = 0;
        while got == 0 && std::time::Instant::now() < deadline {
            got = b.poll_recv_batch(&mut batch).unwrap();
            if got == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        assert_eq!(got, 1, "nothing lost across the recv-side fallback");
    }

    #[test]
    fn drops_are_counted_per_socket() {
        let a = SocketRegistry::bind(&[loopback(0), loopback(0)]).unwrap();
        let addrs = a.local_addrs();
        let per_socket = a.send_drops_per_socket();
        assert_eq!(per_socket.len(), 2);
        assert_eq!(per_socket[0], (addrs[0], 0));
        assert_eq!(per_socket[1], (addrs[1], 0));
        assert_eq!(a.send_drops(), 0);
    }
}
