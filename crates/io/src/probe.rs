//! Sticky feature probes: "tried it once, the kernel said no, stop
//! asking".
//!
//! Two datapath features degrade this way instead of erroring: UDP GSO
//! (`UDP_SEGMENT` refused with `EINVAL`/`EIO`/`EMSGSIZE`/`EOPNOTSUPP`
//! on sockets or devices that cannot segment) and whole IO backends
//! (`io_uring_setup` refused with `ENOSYS` on old kernels or `EPERM`
//! under the `io_uring_disabled` sysctl). Both share [`ProbeState`]:
//! one sticky `unsupported` bit per probed thing, flipped by the first
//! refusal, plus a rate-limited warning so a fleet log shows *one* line
//! per fallback, not one per train.
//!
//! The state is deliberately per-instance (per socket-registry clone,
//! matching the old `gso_unsupported` flag in `mmsg.rs`): a shard that
//! rebinds onto a device with different offloads re-probes with its own
//! state instead of inheriting a stale verdict.

use std::io;

/// Errnos that mean "this feature does not exist here" rather than
/// "this call was wrong": `EPERM`, `EIO`, `EINVAL`, `ENOSYS`,
/// `EMSGSIZE`, `EOPNOTSUPP`. First refusal with one of these flips the
/// probe to unsupported; anything else stays an ordinary error.
pub const UNSUPPORTED_ERRNOS: [i32; 6] = [1, 5, 22, 38, 90, 95];

/// True when `err` carries an errno from [`UNSUPPORTED_ERRNOS`] — the
/// classification both the GSO fallback and the backend ladder use.
pub fn is_unsupported(err: &io::Error) -> bool {
    err.raw_os_error()
        .is_some_and(|errno| UNSUPPORTED_ERRNOS.contains(&errno))
}

/// One probed feature's sticky verdict.
#[derive(Debug)]
pub struct ProbeState {
    /// What is being probed, for the one-line warning ("UDP GSO",
    /// "io_uring backend").
    feature: &'static str,
    unsupported: bool,
    /// The warning fired (rate limit: once per state, i.e. once per
    /// registry clone, not once per datagram train).
    warned: bool,
}

impl ProbeState {
    /// A fresh probe: optimistic until the kernel refuses.
    pub fn new(feature: &'static str) -> ProbeState {
        ProbeState {
            feature,
            unsupported: false,
            warned: false,
        }
    }

    /// True once the feature proved unavailable; callers skip it from
    /// then on (the sticky half of the fallback ladder).
    pub fn is_unsupported(&self) -> bool {
        self.unsupported
    }

    /// Classifies `err`. An [`UNSUPPORTED_ERRNOS`] errno marks the
    /// feature unsupported (sticky), logs the one rate-limited warning,
    /// and returns `true` — the caller falls back and retries, losing
    /// nothing. Any other error returns `false` and stays the caller's
    /// problem.
    pub fn observe(&mut self, err: &io::Error, fallback: &'static str) -> bool {
        if !is_unsupported(err) {
            return false;
        }
        self.unsupported = true;
        self.warn(err, fallback);
        true
    }

    /// Marks the feature unsupported without an errno in hand (e.g. a
    /// forced arm that failed construction), with the same one-shot
    /// warning.
    pub fn mark_unsupported(&mut self, err: &io::Error, fallback: &'static str) {
        self.unsupported = true;
        self.warn(err, fallback);
    }

    fn warn(&mut self, err: &io::Error, fallback: &'static str) {
        if self.warned {
            return;
        }
        self.warned = true;
        eprintln!(
            "warn: {} unavailable ({err}); falling back to {fallback}",
            self.feature
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_errnos_flip_sticky_bit() {
        for errno in UNSUPPORTED_ERRNOS {
            let mut probe = ProbeState::new("test feature");
            let err = io::Error::from_raw_os_error(errno);
            assert!(probe.observe(&err, "next rung"), "errno {errno}");
            assert!(probe.is_unsupported());
        }
    }

    #[test]
    fn ordinary_errors_do_not_flip() {
        let mut probe = ProbeState::new("test feature");
        let err = io::Error::from_raw_os_error(11); // EAGAIN
        assert!(!probe.observe(&err, "next rung"));
        assert!(!probe.is_unsupported());
        let err = io::Error::new(io::ErrorKind::Other, "no errno at all");
        assert!(!probe.observe(&err, "next rung"));
        assert!(!probe.is_unsupported());
    }

    #[test]
    fn verdict_is_sticky() {
        let mut probe = ProbeState::new("test feature");
        let err = io::Error::from_raw_os_error(38); // ENOSYS
        assert!(probe.observe(&err, "next rung"));
        assert!(probe.is_unsupported());
        // A later success path never un-marks; callers simply stop
        // trying the feature.
        assert!(probe.is_unsupported());
    }
}
