//! Mapping the wall clock onto the protocol's time line.
//!
//! Every state machine in this workspace is sans-IO and consumes
//! [`SimTime`] — nanoseconds since an arbitrary origin. In the simulator
//! the origin is the start of the simulation; here it is the moment the
//! [`Clock`] was created. The mapping is monotonic (`std::time::Instant`
//! underneath), so suspend/resume or NTP slews cannot run protocol timers
//! backwards.

use mpquic_util::SimTime;
use std::time::Instant;

/// A monotonic wall clock expressed on the [`SimTime`] time line.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    start: Instant,
}

impl Clock {
    /// Creates a clock whose origin (`SimTime::ZERO`) is *now*.
    pub fn new() -> Clock {
        Clock {
            start: Instant::now(),
        }
    }

    /// The current instant on the protocol time line.
    pub fn now(&self) -> SimTime {
        let nanos = self.start.elapsed().as_nanos();
        SimTime::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = Clock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_advances() {
        let clock = Clock::new();
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now();
        assert!(b.saturating_duration_since(a) >= std::time::Duration::from_millis(1));
    }
}
