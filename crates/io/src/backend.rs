//! Pluggable datapath backends: one seam, three ways to cross the
//! kernel boundary.
//!
//! The [`Backend`] trait abstracts the two batched operations the
//! datapath is built from — submit one egress segment train, complete
//! one ingress batch — so [`crate::SocketRegistry`] can swap *how* those
//! batches reach the kernel without its callers noticing:
//!
//! * [`UringBackend`](crate::uring::UringBackend) (Linux): completion-
//!   based IO over hand-rolled `io_uring` FFI — linked send SQEs (or a
//!   single GSO SQE) per train, batched `recvmsg` SQEs per ingress
//!   poll, one `io_uring_enter` per batch.
//! * [`MmsgBackend`]: the PR 4 ladder — UDP GSO when the socket takes
//!   it, `sendmmsg`/`recvmmsg` otherwise (one syscall per batch).
//! * [`PortableBackend`]: one `send_to`/`recv_from` per datagram;
//!   works on every platform `std` does.
//!
//! Selection is a runtime probe, not a compile-time switch: `auto`
//! starts at the top of the ladder and every refusal ([`crate::probe`])
//! drops one rung, sticky per registry clone — exactly how the GSO
//! fallback has always behaved, now generalised to whole backends. The
//! `--backend {auto,uring,mmsg,portable}` flag on the binaries forces
//! an arm for benchmarking and tests ([`BackendChoice`]).
//!
//! Every backend keeps [`BackendStats`] — submissions, completions,
//! fallbacks, entries-per-submit histogram — which the endpoint folds
//! into the `mpq_backend_*` metric family.

use mpquic_telemetry::LogHistogram;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU8, Ordering};

use crate::mmsg::{self, MmsgScratch};

/// Which implementation a [`Backend`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// `io_uring` submission/completion rings (Linux).
    Uring,
    /// GSO + `sendmmsg`/`recvmmsg` batching (the PR 4 datapath).
    Mmsg,
    /// One datagram per syscall through `std`.
    Portable,
}

impl BackendKind {
    /// Stable lower-case name, as it appears in reports, benchmark JSON
    /// and the `--backend` flag.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Uring => "uring",
            BackendKind::Mmsg => "mmsg",
            BackendKind::Portable => "portable",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the user asked for: a forced arm, or the probe ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Probe down the ladder: uring → mmsg → portable.
    #[default]
    Auto,
    /// Force `io_uring`; construction fails where the kernel lacks it.
    Uring,
    /// Force the `sendmmsg`/`recvmmsg` path.
    Mmsg,
    /// Force the one-syscall-per-datagram path.
    Portable,
}

impl BackendChoice {
    /// Every valid `--backend` value, for usage strings.
    pub const NAMES: [&'static str; 4] = ["auto", "uring", "mmsg", "portable"];

    fn as_u8(self) -> u8 {
        match self {
            BackendChoice::Auto => 0,
            BackendChoice::Uring => 1,
            BackendChoice::Mmsg => 2,
            BackendChoice::Portable => 3,
        }
    }

    fn from_u8(value: u8) -> BackendChoice {
        match value {
            1 => BackendChoice::Uring,
            2 => BackendChoice::Mmsg,
            3 => BackendChoice::Portable,
            _ => BackendChoice::Auto,
        }
    }
}

impl std::str::FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendChoice, String> {
        match s {
            "auto" => Ok(BackendChoice::Auto),
            "uring" => Ok(BackendChoice::Uring),
            "mmsg" => Ok(BackendChoice::Mmsg),
            "portable" => Ok(BackendChoice::Portable),
            other => Err(format!(
                "unknown backend '{other}' (expected one of: {})",
                BackendChoice::NAMES.join(", ")
            )),
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Uring => "uring",
            BackendChoice::Mmsg => "mmsg",
            BackendChoice::Portable => "portable",
        })
    }
}

/// The process-wide default `--backend` choice, set once by a binary's
/// flag parsing before any registry binds. An ordinary config cell:
/// Release on store / Acquire on load publish it to whatever thread
/// binds next.
static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default backend choice (what
/// [`crate::SocketRegistry::bind`] uses). Binaries call this from
/// `--backend`; tests and benches prefer the explicit
/// [`crate::SocketRegistry::bind_with`].
pub fn set_default_choice(choice: BackendChoice) {
    DEFAULT_BACKEND.store(choice.as_u8(), Ordering::Release);
}

/// The current process-wide default backend choice.
pub fn default_choice() -> BackendChoice {
    BackendChoice::from_u8(DEFAULT_BACKEND.load(Ordering::Acquire))
}

/// Per-backend submit/complete telemetry, the raw material of the
/// `mpq_backend_*` metric family. "Entry" is one submitted unit of
/// work: an SQE on io_uring, an `mmsghdr` slot (or one GSO `sendmsg`
/// carrying a whole train) on mmsg, one syscall on portable.
#[derive(Debug, Clone, Default)]
pub struct BackendStats {
    /// Entries handed to the kernel.
    pub submissions: u64,
    /// Entries that completed successfully (datagrams on the wire or
    /// in a buffer).
    pub completions: u64,
    /// Rungs dropped: GSO → sendmmsg inside a backend, or a whole
    /// backend swapped down the ladder by the registry.
    pub fallbacks: u64,
    /// Entries per kernel submit boundary (per `io_uring_enter`, per
    /// `sendmmsg`/`recvmmsg`, per productive portable poll).
    pub sqe_batch: LogHistogram,
}

impl BackendStats {
    /// Folds another backend's counters into this one (per-shard →
    /// endpoint aggregation, same shape as `BatchStats::merge`).
    pub fn merge(&mut self, other: &BackendStats) {
        self.submissions += other.submissions;
        self.completions += other.completions;
        self.fallbacks += other.fallbacks;
        self.sqe_batch.merge(&other.sqe_batch);
    }
}

/// One way to move batches across the kernel boundary.
///
/// The contract is exactly [`crate::mmsg`]'s: both operations return
/// `(datagrams, syscalls)`, an empty payload is `Ok((0, 0))`,
/// `segment_size == 0` means "the whole payload is one datagram", a
/// partial send returns the accepted *prefix* count (the caller retries
/// the rest), and an empty socket surfaces as `WouldBlock`. Errors the
/// registry classifies as "backend unsupported"
/// ([`crate::probe::is_unsupported`]) trigger a sticky swap down the
/// ladder — implementations should let construction-type failures
/// (`ENOSYS`, `EPERM`, `EOPNOTSUPP`, `EINVAL`) escape rather than
/// retrying them forever.
pub trait Backend: std::fmt::Debug + Send {
    /// Which implementation this is (names the bench arm and report
    /// line).
    fn kind(&self) -> BackendKind;

    /// Submits one egress train: `payload` split at `segment_size`
    /// boundaries, fanned out to `remote`.
    fn send_segments(
        &mut self,
        socket: &UdpSocket,
        remote: &SocketAddr,
        payload: &[u8],
        segment_size: usize,
    ) -> io::Result<(usize, usize)>;

    /// Completes one ingress batch: up to `bufs.len()` datagrams, one
    /// per buffer, appending `(remote, len)` to `out` in buffer order.
    fn recv_batch(
        &mut self,
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        out: &mut Vec<(SocketAddr, usize)>,
    ) -> io::Result<(usize, usize)>;

    /// Submit/complete counters accumulated so far.
    fn stats(&self) -> &BackendStats;
}

/// The PR 4 datapath as a [`Backend`]: UDP GSO with a sticky per-clone
/// fallback to `sendmmsg`/`recvmmsg` (on non-Linux targets the
/// underlying seam is already the portable loop, so this backend equals
/// [`PortableBackend`] there).
#[derive(Debug, Default)]
pub struct MmsgBackend {
    scratch: MmsgScratch,
    stats: BackendStats,
}

impl MmsgBackend {
    /// A fresh backend with its own scratch arrays and GSO probe.
    pub fn new() -> MmsgBackend {
        MmsgBackend::default()
    }
}

impl Backend for MmsgBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mmsg
    }

    fn send_segments(
        &mut self,
        socket: &UdpSocket,
        remote: &SocketAddr,
        payload: &[u8],
        segment_size: usize,
    ) -> io::Result<(usize, usize)> {
        let gso_was_live = !self.scratch.gso_unsupported();
        let result = mmsg::send_segments(socket, remote, payload, segment_size, &mut self.scratch);
        if gso_was_live && self.scratch.gso_unsupported() {
            // The GSO probe flipped inside this call: one rung down.
            self.stats.fallbacks += 1;
        }
        if let Ok((datagrams, syscalls)) = result {
            if datagrams > 0 {
                self.stats.submissions += datagrams as u64;
                self.stats.completions += datagrams as u64;
                // Entries per submit boundary: the whole train on one
                // GSO/sendmmsg syscall, 1 on the portable-shaped path.
                self.stats
                    .sqe_batch
                    .record((datagrams / syscalls.max(1)) as u64);
            }
        }
        result
    }

    fn recv_batch(
        &mut self,
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        out: &mut Vec<(SocketAddr, usize)>,
    ) -> io::Result<(usize, usize)> {
        let result = mmsg::recv_batch(socket, bufs, out, &mut self.scratch);
        if let Ok((datagrams, _)) = result {
            if datagrams > 0 {
                self.stats.submissions += datagrams as u64;
                self.stats.completions += datagrams as u64;
                self.stats.sqe_batch.record(datagrams as u64);
            }
        }
        result
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }
}

/// The bottom of the ladder: one syscall per datagram through `std`'s
/// portable socket API. Never fails construction, never falls back.
#[derive(Debug, Default)]
pub struct PortableBackend {
    stats: BackendStats,
}

impl PortableBackend {
    /// A fresh portable backend.
    pub fn new() -> PortableBackend {
        PortableBackend::default()
    }
}

impl Backend for PortableBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Portable
    }

    fn send_segments(
        &mut self,
        socket: &UdpSocket,
        remote: &SocketAddr,
        payload: &[u8],
        segment_size: usize,
    ) -> io::Result<(usize, usize)> {
        if payload.is_empty() {
            return Ok((0, 0));
        }
        let segment_size = if segment_size == 0 {
            payload.len()
        } else {
            segment_size
        };
        let mut sent = 0;
        for chunk in payload.chunks(segment_size).take(mmsg::MAX_BATCH) {
            match socket.send_to(chunk, *remote) {
                Ok(_) => sent += 1,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => break,
                Err(e) if sent == 0 => return Err(e),
                // Partial train: report what went out; the caller
                // retries the rest.
                Err(_) => break,
            }
        }
        if sent > 0 {
            self.stats.submissions += sent as u64;
            self.stats.completions += sent as u64;
            self.stats.sqe_batch.record(1);
        }
        Ok((sent, sent.max(1)))
    }

    fn recv_batch(
        &mut self,
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        out: &mut Vec<(SocketAddr, usize)>,
    ) -> io::Result<(usize, usize)> {
        if bufs.is_empty() {
            return Ok((0, 0));
        }
        let mut received = 0;
        for buf in bufs.iter_mut().take(mmsg::MAX_BATCH) {
            match socket.recv_from(buf) {
                Ok((len, remote)) => {
                    out.push((remote, len));
                    received += 1;
                }
                Err(e) if received == 0 => return Err(e),
                Err(_) => break,
            }
        }
        if received > 0 {
            self.stats.submissions += received as u64;
            self.stats.completions += received as u64;
            self.stats.sqe_batch.record(1);
        }
        Ok((received, received.max(1)))
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }
}

/// Builds the backend a `--backend` choice names. `Auto` probes down
/// the ladder and cannot fail; a forced arm that the platform lacks
/// (uring on a kernel without `io_uring`, or on non-Linux) returns the
/// construction error so callers can skip-with-message instead of
/// silently testing the wrong thing.
pub fn create(choice: BackendChoice) -> io::Result<Box<dyn Backend>> {
    match choice {
        BackendChoice::Auto => Ok(probe_ladder()),
        BackendChoice::Uring => create_uring(),
        BackendChoice::Mmsg => Ok(Box::new(MmsgBackend::new())),
        BackendChoice::Portable => Ok(Box::new(PortableBackend::new())),
    }
}

#[cfg(target_os = "linux")]
fn create_uring() -> io::Result<Box<dyn Backend>> {
    crate::uring::UringBackend::new().map(|backend| Box::new(backend) as Box<dyn Backend>)
}

#[cfg(not(target_os = "linux"))]
fn create_uring() -> io::Result<Box<dyn Backend>> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "io_uring backend requires Linux",
    ))
}

/// The `auto` probe: top of the ladder downward, one process-wide
/// warning the first time the top rung is refused.
fn probe_ladder() -> Box<dyn Backend> {
    match create_uring() {
        Ok(backend) => backend,
        Err(e) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("warn: io_uring backend unavailable ({e}); falling back to mmsg");
            });
            Box::new(MmsgBackend::new())
        }
    }
}

/// The rung below `kind`, for the registry's sticky runtime fallback.
/// `None` below the portable floor.
pub fn next_fallback(kind: BackendKind) -> Option<Box<dyn Backend>> {
    match kind {
        BackendKind::Uring => Some(Box::new(MmsgBackend::new())),
        BackendKind::Mmsg => Some(Box::new(PortableBackend::new())),
        BackendKind::Portable => None,
    }
}

/// A fresh backend of the same kind as an existing one — what
/// `try_clone` uses so every registry clone owns its ring and scratch.
/// If the kind can no longer be constructed (uring refused this time),
/// the clone degrades one rung instead of failing the clone.
pub(crate) fn create_like(kind: BackendKind) -> Box<dyn Backend> {
    match kind {
        BackendKind::Uring => create_uring().unwrap_or_else(|_| Box::new(MmsgBackend::new())),
        BackendKind::Mmsg => Box::new(MmsgBackend::new()),
        BackendKind::Portable => Box::new(PortableBackend::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_round_trips_through_names() {
        for name in BackendChoice::NAMES {
            let choice: BackendChoice = name.parse().unwrap();
            assert_eq!(choice.to_string(), name);
        }
        assert!("epoll".parse::<BackendChoice>().is_err());
    }

    #[test]
    fn default_choice_is_auto_and_settable() {
        // Runs in-process with other tests, so restore the default.
        let before = default_choice();
        set_default_choice(BackendChoice::Portable);
        assert_eq!(default_choice(), BackendChoice::Portable);
        set_default_choice(before);
    }

    #[test]
    fn ladder_descends_to_portable_floor() {
        assert_eq!(
            next_fallback(BackendKind::Uring).map(|b| b.kind()),
            Some(BackendKind::Mmsg)
        );
        assert_eq!(
            next_fallback(BackendKind::Mmsg).map(|b| b.kind()),
            Some(BackendKind::Portable)
        );
        assert!(next_fallback(BackendKind::Portable).is_none());
    }

    #[test]
    fn forced_arms_construct_or_refuse_honestly() {
        assert_eq!(
            create(BackendChoice::Mmsg).unwrap().kind(),
            BackendKind::Mmsg
        );
        assert_eq!(
            create(BackendChoice::Portable).unwrap().kind(),
            BackendKind::Portable
        );
        // Auto never fails; it lands on whatever the platform has.
        let auto = create(BackendChoice::Auto).unwrap();
        assert!(matches!(
            auto.kind(),
            BackendKind::Uring | BackendKind::Mmsg
        ));
    }

    #[test]
    fn portable_backend_round_trips_a_train() {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let b_addr = b.local_addr().unwrap();
        let mut backend = PortableBackend::new();
        let payload: Vec<u8> = (0..250).map(|i| i as u8).collect();
        let (sent, syscalls) = backend.send_segments(&a, &b_addr, &payload, 100).unwrap();
        assert_eq!(sent, 3);
        assert_eq!(syscalls, 3, "portable pays one syscall per datagram");
        assert_eq!(backend.stats().completions, 3);

        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 2048]).collect();
        let mut metas = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut got = 0;
        while got < 3 && std::time::Instant::now() < deadline {
            match backend.recv_batch(&b, &mut bufs[got..], &mut metas) {
                Ok((k, _)) => got += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_micros(200))
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
        assert_eq!(got, 3);
        let lens: Vec<usize> = metas.iter().map(|(_, len)| *len).collect();
        assert_eq!(lens, [100, 100, 50]);
    }
}
