//! The multi-connection endpoint: CID demultiplexing across worker
//! shards.
//!
//! A [`crate::Driver`] serves exactly one connection; an [`Endpoint`]
//! serves many over the same listen sockets, the way deployed QUIC
//! stacks do. The split (DESIGN.md §12):
//!
//! * a **demux thread** owns ingress on the listen
//!   [`SocketRegistry`]: one `recvmmsg` batch at a time, each datagram
//!   routed by the connection ID read straight off the public header
//!   ([`mpquic_wire::PublicHeader::connection_id_of`] — no full decode,
//!   no crypto). Unknown CIDs create a server-side connection (up to
//!   [`mpquic_core::Config::max_incoming_connections`]); known CIDs
//!   forward to the owning shard over a bounded channel, with copies
//!   staged in a demux-owned [`BufferPool`] so the steady state
//!   allocates nothing.
//! * N **worker shards** ([`crate::shard`]) each run a `Driver`-style
//!   loop over a disjoint connection set, chosen by CID hash
//!   ([`shard_for_cid`]), with their own egress queue and a `dup`ed
//!   send handle on the listen sockets. A connection's packets never
//!   cross shards, so the packet path needs no locks.
//!
//! The application each accepted connection runs is pluggable
//! ([`ConnApp`]); [`TransferApp`] implements the `mpq` file-transfer
//! server the binaries speak.

use mpquic_core::{BufferPool, Config};
use mpquic_harness::{QuicTransport, Transport};
use mpquic_util::sync::atomic::{AtomicBool, Ordering};
use mpquic_util::sync::mpsc::{channel, sync_channel, Receiver, SyncSender, TrySendError};
use mpquic_util::sync::Arc;
use mpquic_util::DetRng;
use mpquic_wire::PublicHeader;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Instant;

pub use mpquic_telemetry::endpoint::{
    EndpointPlane, EndpointSnapshot, EndpointStats, FlightKind, PlaneSnapshot,
};

use crate::backoff::Backoff;
use crate::driver::IoStats;
use crate::error::{Error, Result};
use crate::shard::{
    run_shard, shard_for_cid, CidRouteOp, DemuxCtl, ShardCore, ShardMsg, ShardReport,
};
use crate::socket::{RecvBatch, RecvMeta, SocketRegistry};
use crate::transfer;

/// Datagrams pulled per demux iteration (one batched syscall's worth).
const DEMUX_BATCH: usize = 64;

/// Depth of each shard's bounded ingress channel: enough to absorb a
/// syscall batch per connection burst; beyond it the demux drops (and
/// counts) rather than let one slow shard stall ingress for the rest.
const SHARD_QUEUE_DEPTH: usize = 512;

/// Demux pool shape: buffers retained when idle, and per-buffer
/// pre-allocation (a full-size datagram; receive buffers, unlike the
/// egress queue's, must take `MAX_DATAGRAM`).
const POOL_BUFFERS: usize = 1024;
const POOL_BUF_CAPACITY: usize = 2048;

/// Retired-CID tombstones kept before the oldest is forgotten.
const MAX_TOMBSTONES: usize = 4096;

/// What a [`ConnApp::poll`] reports back to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppStatus {
    /// Still working; poll again after the next loop iteration.
    Pending,
    /// Finished. The shard closes the connection and counts the verdict
    /// in [`EndpointSnapshot::completed`] / [`EndpointSnapshot::failed`].
    Done {
        /// Whether the application's job succeeded.
        ok: bool,
    },
}

/// The application served on one accepted connection.
///
/// Polled by the owning shard on every loop iteration, between ingress
/// and egress — so data read here was fed by the freshest datagrams,
/// and data written flushes in the same iteration. Implementations must
/// never block: return [`AppStatus::Pending`] and wait to be polled
/// again.
pub trait ConnApp: Send {
    /// Advances the application one non-blocking step.
    fn poll(&mut self, transport: &mut QuicTransport) -> AppStatus;
}

/// Builds the [`ConnApp`] for each accepted connection, given its CID.
pub type AppFactory = Box<dyn Fn(u64) -> Box<dyn ConnApp> + Send + Sync>;

/// The application stream both binaries use (the client's first
/// stream; mirrors `mpquic_harness`'s `APP_STREAM`).
const APP_STREAM: mpquic_core::StreamId = 1;

/// The `mpq` file-transfer server as a [`ConnApp`]: receive one
/// request, verify its checksum, answer with the verdict, and report
/// success once the client has acknowledged the response.
#[derive(Debug, Default)]
pub struct TransferApp {
    /// Request bytes accumulated until the client's FIN.
    buf: Vec<u8>,
    state: TransferState,
}

#[derive(Debug, Default, Clone, Copy)]
enum TransferState {
    /// Accumulating the request stream until the client's FIN.
    #[default]
    Receiving,
    /// Response written; waiting for it to be fully acknowledged.
    Flushing { ok: bool },
    /// Verdict delivered to the shard.
    Finished { ok: bool },
}

impl TransferApp {
    /// A fresh transfer server. The [`AppFactory`] form is
    /// `Box::new(|_| Box::new(TransferApp::new()))`.
    pub fn new() -> TransferApp {
        TransferApp::default()
    }
}

impl ConnApp for TransferApp {
    fn poll(&mut self, transport: &mut QuicTransport) -> AppStatus {
        match self.state {
            TransferState::Receiving => {
                while let Some(chunk) = transport.read_chunk() {
                    self.buf.extend_from_slice(&chunk);
                }
                if !transport.recv_finished() {
                    return AppStatus::Pending;
                }
                let mut reader: &[u8] = &self.buf;
                let (ok, checksum) = match transfer::recv_request(&mut reader) {
                    Ok((header, _payload)) => (true, header.checksum),
                    Err(_) => (false, 0),
                };
                let mut response = Vec::new();
                let _ = transfer::send_response(&mut response, ok, checksum);
                transport.write(bytes::Bytes::from(response));
                transport.finish();
                // Release the payload memory now; only the verdict is
                // still in flight.
                self.buf = Vec::new();
                self.state = TransferState::Flushing { ok };
                AppStatus::Pending
            }
            TransferState::Flushing { ok } => {
                if transport.conn.stream_fully_acked(APP_STREAM) || transport.conn.is_closed() {
                    self.state = TransferState::Finished { ok };
                    return AppStatus::Done { ok };
                }
                AppStatus::Pending
            }
            // The shard stops polling after the first `Done`; repeat
            // the verdict if it asks again anyway.
            TransferState::Finished { ok } => AppStatus::Done { ok },
        }
    }
}

/// End-of-run report: every shard's counters plus the endpoint totals.
#[derive(Debug, Clone, Default)]
pub struct EndpointReport {
    /// Per-shard loop counters, in shard order.
    pub shards: Vec<ShardReport>,
    /// Final endpoint-level counters.
    pub totals: EndpointSnapshot,
    /// Final metrics-plane aggregate: per-shard loop telemetry, merged
    /// histograms, flight-recorder tally (DESIGN.md §15).
    pub plane: PlaneSnapshot,
}

impl EndpointReport {
    /// All shards' socket-level counters folded into one [`IoStats`].
    pub fn merged_io(&self) -> IoStats {
        let mut io = IoStats::default();
        for shard in &self.shards {
            io.merge(&shard.io);
        }
        io
    }

    /// All shards' batching telemetry folded into one
    /// [`crate::BatchStats`].
    pub fn merged_batch(&self) -> crate::BatchStats {
        let mut batch = crate::BatchStats::default();
        for shard in &self.shards {
            batch.merge(&shard.batch);
        }
        batch
    }

    /// All shards' datapath-backend telemetry folded into one
    /// [`crate::BackendStats`].
    pub fn merged_backend(&self) -> crate::BackendStats {
        let mut backend = crate::BackendStats::default();
        for shard in &self.shards {
            backend.merge(&shard.backend);
        }
        backend
    }
}

/// A multi-connection server endpoint: shared listen sockets, a demux
/// thread, and N worker shards.
pub struct Endpoint {
    demux: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<ShardReport>>,
    stop: Arc<AtomicBool>,
    plane: Arc<EndpointPlane>,
    local: Vec<SocketAddr>,
}

impl Endpoint {
    /// Binds `listen` and starts serving: every accepted connection
    /// runs the app built by `factory`. Worker count comes from
    /// [`Config::worker_shards`] (`0` = `available_parallelism`), the
    /// accept limit from [`Config::max_incoming_connections`].
    pub fn bind(
        listen: &[SocketAddr],
        config: Config,
        seed: u64,
        factory: AppFactory,
    ) -> Result<Endpoint> {
        let sockets = SocketRegistry::bind(listen).map_err(Error::Io)?;
        let local = sockets.local_addrs();
        let workers = resolve_workers(config.worker_shards);
        let stop = Arc::new(AtomicBool::new(false));
        let plane = Arc::new(EndpointPlane::new(workers));

        if workers == 1 {
            // Single-worker fast path: demux and shard merged into one
            // thread. Datagrams go straight from the receive batch into
            // the owning connection — no staging copy into the pool, no
            // channel round trip, no second thread wakeup. On a 1-core
            // host this is the difference between the endpoint beating
            // a bare `Driver` loop and losing to it (ROADMAP item 1).
            let unified = {
                let plane = Arc::clone(&plane);
                let stop = Arc::clone(&stop);
                let local = local.clone();
                std::thread::Builder::new()
                    .name("mpq-unified".to_string())
                    .spawn(move || {
                        run_unified(UnifiedState {
                            sockets,
                            local,
                            config,
                            seed,
                            factory,
                            plane,
                            stop,
                        })
                    })
                    .map_err(Error::Io)?
            };
            return Ok(Endpoint {
                demux: None,
                shards: vec![unified],
                stop,
                plane,
                local,
            });
        }

        let (ctl_tx, ctl_rx) = channel::<DemuxCtl>();
        let mut shard_txs = Vec::with_capacity(workers);
        let mut shards = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (tx, rx) = sync_channel::<ShardMsg>(SHARD_QUEUE_DEPTH);
            shard_txs.push(tx);
            let send_handle = sockets.try_clone().map_err(Error::Io)?;
            let ctl = ctl_tx.clone();
            let plane = Arc::clone(&plane);
            let stop = Arc::clone(&stop);
            shards.push(
                std::thread::Builder::new()
                    .name(format!("mpq-shard-{shard}"))
                    .spawn(move || run_shard(shard, rx, ctl, send_handle, plane, stop))
                    .map_err(Error::Io)?,
            );
        }
        drop(ctl_tx);

        let demux = {
            let core = DemuxCore::new(
                config,
                seed,
                local.clone(),
                factory,
                shard_txs,
                Arc::clone(&plane),
            );
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("mpq-demux".to_string())
                .spawn(move || run_demux(sockets, core, ctl_rx, stop))
                .map_err(Error::Io)?
        };

        Ok(Endpoint {
            demux: Some(demux),
            shards,
            stop,
            plane,
            local,
        })
    }

    /// The bound listen addresses, in bind order.
    pub fn local_addrs(&self) -> Vec<SocketAddr> {
        self.local.clone()
    }

    /// Number of worker shards serving connections.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Live endpoint counters (lock-free; safe to poll while serving).
    pub fn stats(&self) -> EndpointSnapshot {
        self.plane.stats.snapshot()
    }

    /// The endpoint's metrics plane — share it with a
    /// [`mpquic_telemetry::endpoint::MetricsServer`] /
    /// [`mpquic_telemetry::endpoint::SnapshotWriter`], or record
    /// harness-level flight events ([`FlightKind::SloFail`]) against
    /// it. Outlives the endpoint: it stays readable after `shutdown`.
    pub fn plane(&self) -> Arc<EndpointPlane> {
        Arc::clone(&self.plane)
    }

    /// Stops the demux and every shard, joins them, and returns the
    /// final per-shard and endpoint-level counters.
    pub fn shutdown(mut self) -> EndpointReport {
        self.plane
            .recorder
            .record(FlightKind::Teardown, 0, 0, self.plane.stats.active.get());
        // Release pairs with the workers' Acquire loads: everything the
        // closing thread wrote before asking for shutdown is visible to
        // the workers' final iterations.
        self.stop.store(true, Ordering::Release);
        if let Some(demux) = self.demux.take() {
            let _ = demux.join();
        }
        let mut shards: Vec<ShardReport> = Vec::with_capacity(self.shards.len());
        for handle in self.shards.drain(..) {
            if let Ok(report) = handle.join() {
                shards.push(report);
            }
        }
        shards.sort_by_key(|r| r.shard);
        EndpointReport {
            shards,
            totals: self.plane.stats.snapshot(),
            plane: self.plane.snapshot(),
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // Same Release/Acquire pairing as `shutdown`.
        self.stop.store(true, Ordering::Release);
        if let Some(demux) = self.demux.take() {
            let _ = demux.join();
        }
        for handle in self.shards.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Resolves the configured shard count (`0` = auto).
fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Bounded FIFO set of retired connection IDs.
///
/// A straggler datagram for a just-retired CID (the client ACKing our
/// CONNECTION_CLOSE, say) must not re-trigger the accept path and pin
/// a zombie connection in a shard. Bounded FIFO eviction keeps the set
/// small; forgetting the oldest tombstone is safe (the straggler would
/// merely open — and immediately starve — a throwaway connection).
#[derive(Debug, Default)]
pub struct Tombstones {
    set: HashSet<u64>,
    order: VecDeque<u64>,
}

impl Tombstones {
    /// An empty tombstone set with the endpoint's standard capacity.
    pub fn new() -> Tombstones {
        Tombstones::default()
    }

    /// Records `cid` as retired, evicting the oldest tombstone past
    /// the cap.
    pub fn insert(&mut self, cid: u64) {
        if self.set.insert(cid) {
            self.order.push_back(cid);
            if self.order.len() > MAX_TOMBSTONES {
                if let Some(old) = self.order.pop_front() {
                    self.set.remove(&old);
                }
            }
        }
    }

    /// True if `cid` retired recently enough to still be remembered.
    pub fn contains(&self, cid: u64) -> bool {
        self.set.contains(&cid)
    }
}

/// The demux loop body — routing, accepting, buffer recycling, CID
/// retirement — factored out of the thread shell.
///
/// Two consumers: [`run_demux`] wraps it in the socket-polling thread
/// loop, and the model-checked protocol tests (`tests/loom.rs`) drive
/// it directly against model channels, so every interleaving of the
/// *production* routing/recycling/accounting code against the shard
/// side can be explored exhaustively without binding sockets.
pub struct DemuxCore {
    pool: BufferPool,
    /// CID → owning shard. Entries retire when the shard reports the
    /// connection closed, freeing the accept slot.
    known: HashMap<u64, usize>,
    /// Rotated on-wire CIDs → the canonical (accept-time) CID. A
    /// rotation never moves a connection between shards: the alias
    /// routes to `known[canonical]`, so old and new CIDs land on the
    /// same shard while both are in flight.
    aliases: HashMap<u64, u64>,
    tombstones: Tombstones,
    shard_txs: Vec<SyncSender<ShardMsg>>,
    plane: Arc<EndpointPlane>,
    config: Config,
    seed: u64,
    local: Vec<SocketAddr>,
    factory: AppFactory,
}

impl DemuxCore {
    /// A demux core feeding `shard_txs`; connections are built from
    /// `config`/`seed`/`local` and serve the app `factory` builds.
    pub fn new(
        config: Config,
        seed: u64,
        local: Vec<SocketAddr>,
        factory: AppFactory,
        shard_txs: Vec<SyncSender<ShardMsg>>,
        plane: Arc<EndpointPlane>,
    ) -> DemuxCore {
        DemuxCore {
            pool: BufferPool::new(POOL_BUFFERS, POOL_BUF_CAPACITY),
            known: HashMap::new(),
            aliases: HashMap::new(),
            tombstones: Tombstones::new(),
            shard_txs,
            plane,
            config,
            seed,
            local,
            factory,
        }
    }

    /// Buffers currently loaned out to shard queues (or in flight on
    /// the control channel back). Exposed so protocol tests can assert
    /// the recycling invariant — zero once the endpoint is quiet.
    pub fn outstanding_buffers(&self) -> usize {
        self.pool.outstanding()
    }

    /// The shared metrics plane.
    pub fn plane(&self) -> &EndpointPlane {
        &self.plane
    }

    /// Samples the occupancy gauges into their histograms: buffers on
    /// loan from the pool, and each shard's ingress-queue depth. The
    /// demux calls this once per busy iteration — sampling on progress
    /// ties the distributions to traffic instead of idle spinning.
    pub fn sample_occupancy(&self) {
        self.plane
            .pool_outstanding
            .record(self.pool.outstanding() as u64);
        for shard in 0..self.shard_txs.len() {
            let plane = self.plane.shard(shard);
            plane.queue_depth.record(plane.queue_occupancy());
        }
    }

    /// Drains shard feedback: recycled buffers, retired CIDs. Returns
    /// `true` if anything was drained.
    pub fn drain_ctl(&mut self, ctl_rx: &Receiver<DemuxCtl>) -> bool {
        let mut progressed = false;
        while let Ok(ctl) = ctl_rx.try_recv() {
            self.apply_ctl(ctl);
            progressed = true;
        }
        progressed
    }

    /// Applies one piece of shard feedback. Public so model tests can
    /// block on `ctl_rx.recv()` themselves (polling `drain_ctl` in a
    /// loop explodes the model's schedule space).
    pub fn apply_ctl(&mut self, ctl: DemuxCtl) {
        match ctl {
            DemuxCtl::Return(buf) => self.pool.put(buf),
            DemuxCtl::Retire { cid } => {
                if let Some(shard) = self.known.remove(&cid) {
                    self.plane.stats.active.sub(1);
                    self.plane.stats.closed.add(1);
                    self.plane
                        .recorder
                        .record(FlightKind::Retire, cid, shard as u32, 0);
                }
                // Any live aliases of the retired connection die with
                // it; tombstone them so their stragglers are dropped
                // instead of re-entering the accept path.
                let stale: Vec<u64> = self
                    .aliases
                    .iter()
                    .filter(|&(_, &canonical)| canonical == cid)
                    .map(|(&alias, _)| alias)
                    .collect();
                for alias in stale {
                    self.aliases.remove(&alias);
                    self.tombstones.insert(alias);
                }
                self.tombstones.insert(cid);
            }
            DemuxCtl::MapCid { alias, cid } => {
                // Only alias a connection the demux still routes; a
                // rotation racing retirement is a no-op (stragglers on
                // the alias look like loss to the peer, which is gone).
                if self.known.contains_key(&cid) {
                    self.aliases.insert(alias, cid);
                }
            }
            DemuxCtl::UnmapCid { cid } => {
                self.aliases.remove(&cid);
                self.tombstones.insert(cid);
            }
        }
    }

    /// Routes one received datagram by the CID read off its public
    /// header: forward to the owning shard, accept a first-seen CID,
    /// or drop (counted) if malformed, over limit, or backpressured.
    pub fn route(&mut self, meta: RecvMeta, payload: &[u8]) {
        self.plane.stats.datagrams_in.add(1);
        let Some(cid) = PublicHeader::connection_id_of(payload) else {
            self.plane.stats.malformed.add(1);
            self.plane.recorder.record(FlightKind::Malformed, 0, 0, 0);
            return;
        };
        // A rotated CID routes to its canonical connection's shard —
        // the shard core resolves the alias again on delivery, so the
        // message keeps carrying the on-wire CID.
        let canonical = self.aliases.get(&cid).copied().unwrap_or(cid);
        let shard = match self.known.get(&canonical) {
            Some(&shard) => shard,
            None if self.tombstones.contains(cid) => {
                // Straggler for a finished connection: drop.
                return;
            }
            None => {
                let Some(shard) = self.try_accept(cid) else {
                    return;
                };
                shard
            }
        };
        let mut buf = self.pool.take();
        buf.clear();
        buf.extend_from_slice(payload);
        let Some(tx) = self.shard_txs.get(shard) else {
            self.pool.put(buf);
            return;
        };
        match tx.try_send(ShardMsg::Datagram { cid, meta, buf }) {
            Ok(()) => {
                self.plane.shard(shard).queue_sent.add(1);
            }
            Err(TrySendError::Full(msg)) => {
                self.plane.stats.backpressure_drops.add(1);
                self.plane.recorder.record(
                    FlightKind::Backpressure,
                    cid,
                    shard as u32,
                    self.plane.shard(shard).queue_occupancy(),
                );
                if let ShardMsg::Datagram { buf, .. } = msg {
                    self.pool.put(buf);
                }
            }
            Err(TrySendError::Disconnected(msg)) => {
                if let ShardMsg::Datagram { buf, .. } = msg {
                    self.pool.put(buf);
                }
            }
        }
    }

    /// Accepts a first-seen CID: creates the server-side connection
    /// and hands it to its CID-hash shard. Returns the owning shard,
    /// or `None` if the accept limit is reached, the shard's queue is
    /// full, or the shard hung up — in every case the datagram is
    /// dropped (and counted).
    fn try_accept(&mut self, cid: u64) -> Option<usize> {
        if self.known.len() >= self.config.max_incoming_connections {
            self.plane.stats.rejected.add(1);
            self.plane
                .recorder
                .record(FlightKind::Shed, cid, 0, self.known.len() as u64);
            return None;
        }
        let shard = shard_for_cid(cid, self.shard_txs.len());
        // Each connection gets an independent deterministic RNG stream:
        // the endpoint seed advanced by the (client-chosen) CID.
        let conn_seed = DetRng::new(self.seed ^ cid).next_u64();
        let conn =
            mpquic_core::Connection::server(self.config.clone(), self.local.clone(), conn_seed);
        let transport = Box::new(QuicTransport::server(conn));
        let app = (self.factory)(cid);
        let tx = self.shard_txs.get(shard)?;
        // The handoff must not block: a blocking send on this bounded
        // channel would stall ingress for every other shard behind one
        // slow one (and is exactly what the channel-topology lint
        // rejects inside the demux loop). On a full queue the accept —
        // and its datagram — are dropped; the client's retransmission
        // re-enters the accept path once the shard has drained.
        match tx.try_send(ShardMsg::Accept {
            cid,
            transport,
            app,
        }) {
            Ok(()) => {
                self.known.insert(cid, shard);
                self.plane.stats.accepted.add(1);
                self.plane.stats.active.add(1);
                self.plane.shard(shard).queue_sent.add(1);
                self.plane
                    .recorder
                    .record(FlightKind::Accept, cid, shard as u32, 0);
                Some(shard)
            }
            Err(TrySendError::Full(_)) => {
                self.plane.stats.backpressure_drops.add(1);
                self.plane.recorder.record(
                    FlightKind::Backpressure,
                    cid,
                    shard as u32,
                    self.plane.shard(shard).queue_occupancy(),
                );
                None
            }
            Err(TrySendError::Disconnected(_)) => None,
        }
    }

    /// Teardown: severs the shard queues and drains the control
    /// channel until every shard has hung up, so each loaned buffer is
    /// back in the pool (whose drop asserts exactly that) and every
    /// queued-but-unowned accept is retired before the core drops.
    ///
    /// Blocking `recv` here is safe by construction: shards never
    /// block on their ingress channel, so they always reach their own
    /// stop check, flush, and drop their control sender — there is no
    /// send→recv cycle back to this thread (the channel-topology lint
    /// checks the declared graph stays acyclic).
    pub fn finish(mut self, ctl_rx: &Receiver<DemuxCtl>) {
        // Dropping the senders makes every shard's next try_recv
        // return Disconnected, a second shutdown signal alongside the
        // stop flag.
        self.shard_txs.clear();
        while let Ok(ctl) = ctl_rx.recv() {
            self.apply_ctl(ctl);
        }
        debug_assert_eq!(
            self.pool.outstanding(),
            0,
            "demux teardown left pool buffers in flight"
        );
    }
}

/// The demux thread body: route datagrams by CID, accept unknown CIDs
/// up to the configured limit, recycle buffers and CIDs the shards
/// hand back, and on shutdown drain the control channel so nothing the
/// shards still hold is leaked.
fn run_demux(
    mut sockets: SocketRegistry,
    mut core: DemuxCore,
    ctl_rx: Receiver<DemuxCtl>,
    stop: Arc<AtomicBool>,
) {
    let mut batch = RecvBatch::new(DEMUX_BATCH);
    let mut backoff = Backoff::new();
    // The listen registry's ingress-side backend counters, published
    // as deltas like each shard's egress-side ones.
    let mut prev_backend = crate::BackendStats::default();

    loop {
        // 1. Feedback from the shards: recycled buffers, retired CIDs.
        let mut progressed = core.drain_ctl(&ctl_rx);

        // 2. Ingress: one batched receive, each datagram routed by the
        //    CID read off its public header.
        let received = sockets.poll_recv_batch(&mut batch).unwrap_or(0);
        if received > 0 {
            progressed = true;
            for (meta, payload) in batch.iter() {
                core.route(meta, payload);
            }
            core.sample_occupancy();
            crate::shard::publish_backend_delta(&core.plane, &mut prev_backend, &sockets);
        }

        // Acquire pairs with the Release store in `Endpoint::shutdown`.
        if stop.load(Ordering::Acquire) {
            break;
        }
        if progressed {
            backoff.reset();
        } else {
            backoff.wait();
        }
    }

    crate::shard::publish_backend_delta(&core.plane, &mut prev_backend, &sockets);
    core.finish(&ctl_rx);
}

/// Everything the single-worker fast path owns: the sharded setup
/// minus the channels, pool and shard map.
struct UnifiedState {
    sockets: SocketRegistry,
    local: Vec<SocketAddr>,
    config: Config,
    seed: u64,
    factory: AppFactory,
    plane: Arc<EndpointPlane>,
    stop: Arc<AtomicBool>,
}

/// The single-worker loop: demux and shard fused. Each receive batch
/// feeds connections directly (accepting first-seen CIDs inline), then
/// one [`ShardCore::process`] pass runs timers, applications, egress
/// and reaping — the same machinery the shard threads run, minus every
/// cross-thread hop.
fn run_unified(mut state: UnifiedState) -> ShardReport {
    let mut batch = RecvBatch::new(DEMUX_BATCH);
    let mut core = ShardCore::new();
    // Tombstones, same policy as the sharded demux: stragglers for a
    // retired CID must not re-enter the accept path.
    let mut retired = Tombstones::new();
    // Old CIDs unmapped by rotations this iteration; tombstoned after
    // the process pass (the retire callback already borrows `retired`).
    let mut unmapped: Vec<u64> = Vec::new();
    // On a true single-core machine the clients feeding this loop can
    // only run while it waits, so skip the spin stage of the ladder.
    let single_core = std::thread::available_parallelism()
        .map(|n| n.get() <= 1)
        .unwrap_or(false);
    let mut backoff = if single_core {
        Backoff::yielding()
    } else {
        Backoff::new()
    };
    // The unified thread is shard 0 of the metrics plane: same loop
    // telemetry as `run_shard`, minus the channel tallies (there is no
    // channel on this path).
    let mut was_idle = true;
    let mut prev_backend = crate::BackendStats::default();

    loop {
        let iter_start = Instant::now();
        let mut progressed = false;

        // 1. Ingress: one batched receive, each datagram routed by CID
        //    and handed to its connection in place — the payload never
        //    leaves the receive batch's buffer.
        let received = state.sockets.poll_recv_batch(&mut batch).unwrap_or(0);
        if received > 0 {
            progressed = true;
            for (meta, payload) in batch.iter() {
                state.plane.stats.datagrams_in.add(1);
                let Some(cid) = PublicHeader::connection_id_of(payload) else {
                    state.plane.stats.malformed.add(1);
                    state.plane.recorder.record(FlightKind::Malformed, 0, 0, 0);
                    continue;
                };
                if !core.owns(cid) {
                    if retired.contains(cid) {
                        // Straggler for a finished connection: drop.
                        continue;
                    }
                    if core.len() >= state.config.max_incoming_connections {
                        state.plane.stats.rejected.add(1);
                        state
                            .plane
                            .recorder
                            .record(FlightKind::Shed, cid, 0, core.len() as u64);
                        continue;
                    }
                    let conn_seed = DetRng::new(state.seed ^ cid).next_u64();
                    let conn = mpquic_core::Connection::server(
                        state.config.clone(),
                        state.local.clone(),
                        conn_seed,
                    );
                    core.accept(
                        cid,
                        Box::new(QuicTransport::server(conn)),
                        (state.factory)(cid),
                    );
                    state.plane.stats.accepted.add(1);
                    state.plane.stats.active.add(1);
                    state.plane.recorder.record(FlightKind::Accept, cid, 0, 0);
                }
                core.deliver(cid, meta.local, meta.remote, payload);
            }
        }

        // 2. Timers, application progress, egress, reaping. Aliases
        //    from CID rotations live inside the core (its `owns` /
        //    `deliver` resolve them); the unified loop only has to
        //    tombstone unmapped old CIDs so stragglers are dropped
        //    instead of re-entering the accept path above.
        let plane = &state.plane;
        if core.process(
            &mut state.sockets,
            &plane.stats,
            |cid| {
                plane.stats.active.sub(1);
                plane.stats.closed.add(1);
                plane.recorder.record(FlightKind::Retire, cid, 0, 0);
                retired.insert(cid);
            },
            |route| {
                if let CidRouteOp::Unmap { cid } = route {
                    unmapped.push(cid);
                }
            },
        ) {
            progressed = true;
        }
        for cid in unmapped.drain(..) {
            retired.insert(cid);
        }

        let shard_plane = state.plane.shard(0);
        shard_plane.loop_iterations.add(1);
        if progressed {
            shard_plane.busy_iterations.add(1);
            if was_idle {
                shard_plane.wakeups.add(1);
            }
            shard_plane
                .loop_ns
                .record(iter_start.elapsed().as_nanos() as u64);
            shard_plane.conns_active.set(core.len() as u64);
            crate::shard::publish_backend_delta(&state.plane, &mut prev_backend, &state.sockets);
        }
        was_idle = !progressed;

        // Acquire pairs with the Release store in `Endpoint::shutdown`.
        if state.stop.load(Ordering::Acquire) {
            break;
        }
        if progressed {
            backoff.reset();
        } else {
            backoff.wait();
        }
    }

    crate::shard::publish_backend_delta(&state.plane, &mut prev_backend, &state.sockets);
    core.into_report(0, &state.sockets)
}
