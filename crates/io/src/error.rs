//! The runtime's single error surface.
//!
//! Before this module, the io crate leaked three error vocabularies at
//! its callers: raw `std::io::Error` from the sockets, stringly
//! `InvalidData` errors from the transfer protocol, and `TimedOut` from
//! the blocking stream. [`Error`] folds them into one enum with four
//! meaningful cases, so a binary (or a test) can match on *what went
//! wrong* instead of parsing error strings:
//!
//! * [`Error::Io`] — the OS refused a socket operation;
//! * [`Error::Protocol`] — the peer (or the bytes on the stream)
//!   violated a protocol rule;
//! * [`Error::Timeout`] — a blocking operation exceeded its deadline;
//! * [`Error::Auth`] — an end-to-end integrity or authentication check
//!   failed (e.g. the transfer checksum).
//!
//! `Error` converts to `std::io::Error` (and from it), so the
//! `std::io::Read`/`Write` impls on [`crate::BlockingStream`] keep
//! their standard signatures while everything underneath speaks the
//! typed enum.

use std::fmt;
use std::io;

/// Shorthand for results across the io crate's public surface.
pub type Result<T> = std::result::Result<T, Error>;

/// Any failure the real-socket runtime can surface.
#[derive(Debug)]
pub enum Error {
    /// An OS-level socket or file failure.
    Io(io::Error),
    /// A protocol violation: malformed framing, an illegal value, or a
    /// peer-announced error code.
    Protocol {
        /// Numeric error code (application- or transport-defined).
        code: u64,
        /// Human-readable description.
        reason: String,
    },
    /// A blocking operation did not complete within its deadline.
    Timeout {
        /// The operation that timed out (e.g. `"handshake"`, `"read"`).
        op: &'static str,
    },
    /// An end-to-end integrity or authentication check failed.
    Auth(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Protocol { code, reason } => {
                write!(f, "protocol error {code:#x}: {reason}")
            }
            Error::Timeout { op } => write!(f, "{op} timed out"),
            Error::Auth(reason) => write!(f, "authentication failure: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> io::Error {
        match e {
            Error::Io(e) => e,
            Error::Timeout { op } => {
                io::Error::new(io::ErrorKind::TimedOut, format!("{op} timed out"))
            }
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = Error::Protocol {
            code: 0x2,
            reason: "bad transfer magic".into(),
        };
        assert!(e.to_string().contains("0x2"));
        assert!(e.to_string().contains("bad transfer magic"));
        assert_eq!(
            Error::Timeout { op: "handshake" }.to_string(),
            "handshake timed out"
        );
    }

    #[test]
    fn io_round_trip_preserves_kind() {
        let original = io::Error::new(io::ErrorKind::AddrInUse, "busy");
        let wrapped = Error::from(original);
        let back = io::Error::from(wrapped);
        assert_eq!(back.kind(), io::ErrorKind::AddrInUse);
    }

    #[test]
    fn timeout_maps_to_timed_out_kind() {
        let back = io::Error::from(Error::Timeout { op: "read" });
        assert_eq!(back.kind(), io::ErrorKind::TimedOut);
        let auth = io::Error::from(Error::Auth("checksum mismatch".into()));
        assert_eq!(auth.kind(), io::ErrorKind::InvalidData);
    }
}
