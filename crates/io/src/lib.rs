//! # mpquic-io — the real-socket runtime
//!
//! Everything in `mpquic-core` is sans-IO: a [`mpquic_core::Connection`]
//! only ever sees datagrams, instants and timer callbacks. The simulator
//! (`mpquic-netsim`) feeds it a modelled network; this crate feeds it the
//! *real* one, through `std::net::UdpSocket` — no async runtime, no
//! platform pollers, no new dependencies.
//!
//! The pieces, mirroring how deployed stacks split platform IO from
//! transport logic:
//!
//! * [`socket::SocketRegistry`] — one non-blocking UDP socket per local
//!   interface address; outgoing datagrams are routed to the socket bound
//!   to their source address, which is how the scheduler's path choice
//!   reaches the OS. Send and receive are batched (`sendmmsg`/`recvmmsg`
//!   on Linux, see [`mmsg`]), and GSO-shaped segment trains from the
//!   core's pool-backed egress fan out in one syscall.
//! * [`clock::Clock`] — maps the monotonic wall clock onto the
//!   `SimTime` time line the protocol speaks.
//! * [`timer::Timer`] — deadline arithmetic: sleep exactly until the
//!   transport's next RTO/ACK/probe deadline, never past it.
//! * [`driver::Driver`] — the event loop pumping any
//!   [`mpquic_harness::Transport`] (QUIC, and equally the TCP stack)
//!   through the ingress → timers → egress cycle.
//! * [`stream::BlockingStream`] — `std::io::Read`/`Write` over the
//!   transport's byte stream, for ordinary blocking application code.
//! * [`endpoint::Endpoint`] + [`shard`] — the multi-connection server:
//!   a demux thread routing datagrams by connection ID to worker
//!   shards, each running a `Driver`-style loop over a disjoint
//!   connection set (DESIGN.md §12).
//! * [`backoff::Backoff`] — graduated spin → yield → sleep waiting for
//!   transient socket stalls, shared by every loop above.
//! * [`transfer`] — the tiny authenticated file-transfer protocol the
//!   `mpq-server` / `mpq-client` binaries speak.
//! * [`rpc`] — the multi-stream request/response protocol the
//!   `mpquic-loadgen` harness drives: many concurrent exchanges per
//!   connection, one per client-opened stream.
//!
//! ## A multipath transfer over real sockets
//!
//! ```no_run
//! use mpquic_core::Config;
//! use mpquic_io::{quic_client, BlockingStream};
//! use std::io::Write;
//!
//! // Two local interfaces (here: two loopback ports) — the path manager
//! // opens the second path automatically after the handshake.
//! let driver = quic_client(
//!     Config::builder().multipath().build().unwrap(),
//!     &["127.0.0.1:0".parse().unwrap(), "127.0.0.1:0".parse().unwrap()],
//!     "127.0.0.1:4433".parse().unwrap(),
//!     7,
//! ).unwrap();
//! let mut stream = BlockingStream::new(driver);
//! stream.wait_established().unwrap();
//! stream.write_all(b"over two real UDP sockets").unwrap();
//! stream.finish().unwrap();
//! ```

// `deny`, not `forbid`: the batched datapath's `sendmmsg`/`recvmmsg`
// FFI lives behind one scoped `#[allow(unsafe_code)]` in [`mmsg`], and
// the io_uring ring FFI behind another in [`uring`].
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod backoff;
pub mod cli;
pub mod clock;
pub mod driver;
pub mod endpoint;
pub mod error;
pub mod mmsg;
pub mod probe;
pub mod rpc;
pub mod shard;
pub mod socket;
pub mod stream;
pub mod timer;
pub mod transfer;
#[cfg(target_os = "linux")]
pub mod uring;

pub use backend::{Backend, BackendChoice, BackendKind, BackendStats};
pub use backoff::Backoff;
pub use clock::Clock;
pub use driver::{quic_client, quic_server, Driver, IoStats};
pub use endpoint::{
    AppFactory, AppStatus, ConnApp, DemuxCore, Endpoint, EndpointPlane, EndpointReport,
    EndpointSnapshot, EndpointStats, FlightKind, PlaneSnapshot, Tombstones, TransferApp,
};
pub use error::Error;
pub use rpc::{RpcCall, RpcServerApp, RpcVerdict};
pub use shard::{
    drain_shard_ingress, flush_shard_ingress, shard_for_cid, CidRouteOp, DemuxCtl, IngressDrain,
    ShardMsg, ShardReport, ShardSink,
};
pub use socket::{BatchStats, RecvBatch, SocketRegistry};
pub use stream::BlockingStream;
pub use timer::Timer;

// The abstractions this runtime plugs into, re-exported for convenience.
pub use mpquic_harness::{QuicTransport, Transport};
pub use mpquic_util::Datagram;
