//! Full-pipeline tests: every protocol over the simulator, the paper's
//! metrics, and scaled-down versions of the figure sweeps. These assert
//! the *shapes* the paper reports (who wins, in which regime), not
//! absolute numbers.

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::experiments::{run_class_sweep, run_scenario, SweepConfig};
use mpquic_harness::{
    aggregation_benefit, run_file_transfer, run_handover, HandoverConfig, Overrides, Protocol,
};
use mpquic_netsim::PathSpec;
use std::time::Duration;

fn spec(mbps: f64, rtt_ms: u64, queue_ms: u64, loss_pct: f64) -> PathSpec {
    PathSpec::new(mbps, rtt_ms, queue_ms, loss_pct)
}

const MB: usize = 1 << 20;

#[test]
fn every_protocol_completes_a_transfer() {
    let duo = [spec(8.0, 30, 50, 0.0), spec(4.0, 50, 50, 0.0)];
    for protocol in Protocol::ALL {
        let specs: &[PathSpec] = if protocol.is_multipath() {
            &duo
        } else {
            &duo[..1]
        };
        let outcome = run_file_transfer(
            specs,
            protocol,
            2 * MB,
            7,
            Duration::from_secs(120),
            &Overrides::default(),
        );
        assert!(outcome.completed, "{} failed: {outcome:?}", protocol.name());
        assert_eq!(outcome.bytes_received, 2 * MB as u64);
        // Sanity: the transfer should take at least the no-overhead
        // serialization time and less than the cap.
        assert!(
            outcome.duration_secs > 1.0,
            "{}: {outcome:?}",
            protocol.name()
        );
    }
}

#[test]
fn transfers_are_deterministic() {
    let specs = [spec(5.0, 40, 60, 1.0), spec(3.0, 60, 60, 1.0)];
    let a = run_file_transfer(
        &specs,
        Protocol::Mpquic,
        MB,
        99,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let b = run_file_transfer(
        &specs,
        Protocol::Mpquic,
        MB,
        99,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    assert_eq!(a, b);
}

#[test]
fn quic_wins_short_transfers_thanks_to_handshake() {
    // 256 kB over a clean path: TCP pays 3 RTTs of handshake, QUIC 1.
    // With a 100 ms RTT the gap must be visible.
    let one = [spec(20.0, 100, 50, 0.0)];
    let quic = run_file_transfer(
        &one,
        Protocol::Quic,
        256 << 10,
        3,
        Duration::from_secs(60),
        &Overrides::default(),
    );
    let tcp = run_file_transfer(
        &one,
        Protocol::Tcp,
        256 << 10,
        3,
        Duration::from_secs(60),
        &Overrides::default(),
    );
    assert!(quic.completed && tcp.completed);
    assert!(
        tcp.duration_secs > quic.duration_secs + 0.15,
        "TCP {:.3}s should trail QUIC {:.3}s by ~2 RTTs",
        tcp.duration_secs,
        quic.duration_secs
    );
}

#[test]
fn quic_handles_random_loss_better_than_tcp() {
    // 2.5% random loss on a long path: QUIC's rich ACK ranges, precise
    // RTT estimation and cross-transmission-unambiguous recovery should
    // beat TCP's 3 SACK blocks + Karn (paper Fig. 5). Averaged over a
    // few seeds since a single lossy run is noisy.
    let lossy = [spec(10.0, 100, 50, 2.5)];
    let mut quic_total = 0.0;
    let mut tcp_total = 0.0;
    for seed in 0..4 {
        let quic = run_file_transfer(
            &lossy,
            Protocol::Quic,
            MB,
            seed,
            Duration::from_secs(300),
            &Overrides::default(),
        );
        let tcp = run_file_transfer(
            &lossy,
            Protocol::Tcp,
            MB,
            seed,
            Duration::from_secs(300),
            &Overrides::default(),
        );
        assert!(quic.completed, "{quic:?}");
        quic_total += quic.duration_secs;
        tcp_total += tcp.duration_secs;
    }
    assert!(
        tcp_total > quic_total * 1.1,
        "TCP total {tcp_total:.2}s should trail QUIC {quic_total:.2}s under loss"
    );
}

#[test]
fn mpquic_aggregates_two_good_paths() {
    // Two similar clean paths: MPQUIC should get close to the sum of the
    // single-path QUIC goodputs (EBen near 1).
    let duo = [spec(8.0, 30, 100, 0.0), spec(8.0, 40, 100, 0.0)];
    let multi = run_file_transfer(
        &duo,
        Protocol::Mpquic,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let s0 = run_file_transfer(
        &duo[..1],
        Protocol::Quic,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let s1 = run_file_transfer(
        &duo[1..],
        Protocol::Quic,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let eben = aggregation_benefit(multi.goodput, &[s0.goodput, s1.goodput]);
    assert!(
        eben > 0.6,
        "MPQUIC should aggregate: EBen {eben:.2} (multi {:.0}, singles {:.0}/{:.0})",
        multi.goodput,
        s0.goodput,
        s1.goodput
    );
}

#[test]
fn mptcp_also_aggregates_but_needs_join_time() {
    let duo = [spec(8.0, 30, 100, 0.0), spec(8.0, 40, 100, 0.0)];
    let multi = run_file_transfer(
        &duo,
        Protocol::Mptcp,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let s0 = run_file_transfer(
        &duo[..1],
        Protocol::Tcp,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let s1 = run_file_transfer(
        &duo[1..],
        Protocol::Tcp,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let eben = aggregation_benefit(multi.goodput, &[s0.goodput, s1.goodput]);
    assert!(
        eben > 0.3,
        "MPTCP should aggregate on clean equal paths: EBen {eben:.2}"
    );
}

#[test]
fn handover_recovers_after_path_failure() {
    let delays = run_handover(&HandoverConfig::default(), 21);
    assert!(
        delays.len() >= 30,
        "most requests must be answered, got {}",
        delays.len()
    );
    // Before the failure (t < 2.8 s): delays near the initial path RTT.
    let before: Vec<f64> = delays
        .iter()
        .filter(|(t, _)| *t < 2.8)
        .map(|(_, d)| *d)
        .collect();
    assert!(!before.is_empty());
    let before_max = before.iter().cloned().fold(0.0, f64::max);
    assert!(
        before_max < 60.0,
        "pre-failure delays should be ~RTT: max {before_max:.1} ms"
    );
    // The requests hitting the failure window show the RTO spike.
    let spike = delays
        .iter()
        .filter(|(t, _)| (2.8..5.0).contains(t))
        .map(|(_, d)| *d)
        .fold(0.0, f64::max);
    assert!(
        spike > 100.0,
        "the failover request should see an RTO-sized delay, got {spike:.1} ms"
    );
    // After recovery: delays settle near the second path's RTT.
    let after: Vec<f64> = delays
        .iter()
        .filter(|(t, _)| *t > 6.0)
        .map(|(_, d)| *d)
        .collect();
    assert!(
        !after.is_empty(),
        "requests must keep flowing after failover"
    );
    let after_median = {
        let mut sorted = after.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    };
    assert!(
        after_median < 80.0,
        "post-failover delays should settle near the second path RTT, median {after_median:.1} ms"
    );
}

#[test]
fn scaled_sweep_produces_complete_results() {
    let mut config = SweepConfig::scaled(ExperimentClass::LowBdpNoLoss, 4, 512 << 10);
    config.time_cap = Duration::from_secs(60);
    let results = run_class_sweep(&config);
    // 4 scenarios × 2 start modes.
    assert_eq!(results.ratio_tcp_quic.len(), 8);
    assert_eq!(results.ratio_mptcp_mpquic.len(), 8);
    assert_eq!(results.eben_mpquic[0].len(), 4);
    assert_eq!(results.eben_mpquic[1].len(), 4);
    assert_eq!(results.outcomes.len(), 4);
    for r in &results.ratio_tcp_quic {
        assert!(r.is_finite() && *r > 0.0);
    }
    for e in results.eben_mpquic.iter().flatten() {
        assert!(e.is_finite() && *e >= -1.5, "EBen {e}");
    }
}

#[test]
fn scenario_runner_uses_initial_path_correctly() {
    // Deterministic scenario: one great path, one terrible path. The
    // worst-first single-path ratio runs must be much slower than the
    // best-first ones.
    let scenario = mpquic_expdesign::table1::design_scenarios(ExperimentClass::LowBdpNoLoss, 3)
        .into_iter()
        .next()
        .unwrap();
    let outcome = run_scenario(
        &scenario,
        256 << 10,
        1,
        Duration::from_secs(60),
        &Overrides::default(),
    );
    // Path 0 of `singles` is the best path by construction.
    let best_cap = scenario
        .paths
        .iter()
        .map(|p| p.capacity_mbps)
        .fold(0.0, f64::max);
    let worst_cap = scenario
        .paths
        .iter()
        .map(|p| p.capacity_mbps)
        .fold(f64::INFINITY, f64::min);
    if best_cap / worst_cap > 2.0 {
        assert!(
            outcome.singles[0][0].goodput > outcome.singles[1][0].goodput,
            "best-path single QUIC should outpace worst-path: {:?}",
            outcome.singles
        );
    }
}

#[test]
#[ignore]
fn probe_numbers() {
    // loss comparison across seeds and sizes
    for (size, loss, rtt) in [
        (4 * MB, 2.0, 40u64),
        (MB, 2.5, 40),
        (MB, 2.5, 100),
        (20 * MB, 1.0, 40),
    ] {
        let mut q_sum = 0.0;
        let mut t_sum = 0.0;
        for seed in 0..5u64 {
            let lossy = [spec(10.0, rtt, 50, loss)];
            let q = run_file_transfer(
                &lossy,
                Protocol::Quic,
                size,
                seed,
                Duration::from_secs(600),
                &Overrides::default(),
            );
            let t = run_file_transfer(
                &lossy,
                Protocol::Tcp,
                size,
                seed,
                Duration::from_secs(600),
                &Overrides::default(),
            );
            q_sum += q.duration_secs;
            t_sum += t.duration_secs;
        }
        eprintln!(
            "size={}MB loss={loss}% rtt={rtt}: avg QUIC {:.2}s TCP {:.2}s ratio {:.3}",
            size / MB,
            q_sum / 5.0,
            t_sum / 5.0,
            t_sum / q_sum
        );
    }
    // aggregation probe
    let duo = [spec(8.0, 30, 100, 0.0), spec(8.0, 40, 100, 0.0)];
    let multi = run_file_transfer(
        &duo,
        Protocol::Mpquic,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let s0 = run_file_transfer(
        &duo[..1],
        Protocol::Quic,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let s1 = run_file_transfer(
        &duo[1..],
        Protocol::Quic,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    eprintln!(
        "agg: multi {:.0}B/s singles {:.0}/{:.0} eben {:.3} multi_dur={:.2} s0_dur={:.2}",
        multi.goodput,
        s0.goodput,
        s1.goodput,
        aggregation_benefit(multi.goodput, &[s0.goodput, s1.goodput]),
        multi.duration_secs,
        s0.duration_secs
    );
    let mt = run_file_transfer(
        &duo,
        Protocol::Mptcp,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let t0 = run_file_transfer(
        &duo[..1],
        Protocol::Tcp,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    let t1 = run_file_transfer(
        &duo[1..],
        Protocol::Tcp,
        8 * MB,
        5,
        Duration::from_secs(120),
        &Overrides::default(),
    );
    eprintln!(
        "agg tcp: multi {:.0} singles {:.0}/{:.0} eben {:.3}",
        mt.goodput,
        t0.goodput,
        t1.goodput,
        aggregation_benefit(mt.goodput, &[t0.goodput, t1.goodput])
    );
}

#[test]
#[ignore]
fn probe_mpquic_paths() {
    use mpquic_harness::{build_pair, App};
    use mpquic_netsim::{NetworkPlan, Simulation};
    use mpquic_util::SimTime;
    let duo = [spec(8.0, 30, 100, 0.0), spec(8.0, 40, 100, 0.0)];
    let plan = NetworkPlan::two_host(&duo);
    eprintln!(
        "plan client={:?} server={:?}",
        plan.client_addrs, plan.server_addrs
    );
    let (c, s) = build_pair(
        Protocol::Mpquic,
        &plan,
        5,
        App::file_client(100),
        App::file_server(100, 8 * MB),
        &Overrides::default(),
    );
    let mut sim = Simulation::new(c, s, plan, 5);
    sim.run_until(SimTime::ZERO + Duration::from_secs(120), |a, _, _| {
        a.app.done_at().is_some()
    });
    let conn = sim.a.transport.quic().unwrap();
    eprintln!("client paths: {:?}", conn.path_ids());
    for id in conn.path_ids() {
        let p = conn.path(id).unwrap();
        eprintln!(
            "  {:?}: local={} remote={} sent={} recv={} state={:?}",
            id, p.local, p.remote, p.bytes_sent, p.bytes_received, p.state
        );
    }
    eprintln!("stats: {:?}", conn.stats());
    eprintln!("net: {:?}", sim.stats());
    eprintln!("done at {:?}", sim.a.app.done_at());
}

#[test]
#[ignore]
fn probe_tcp_clean() {
    use mpquic_harness::{build_pair, App};
    use mpquic_netsim::{NetworkPlan, Simulation};
    use mpquic_util::SimTime;
    let one = [spec(8.0, 30, 100, 0.0)];
    let plan = NetworkPlan::two_host(&one);
    let (c, s) = build_pair(
        Protocol::Tcp,
        &plan,
        5,
        App::file_client(100),
        App::file_server(100, 8 * MB),
        &Overrides::default(),
    );
    let mut sim = Simulation::new(c, s, plan, 5);
    let mut last_print = 0u64;
    sim.run_until(SimTime::ZERO + Duration::from_secs(120), |a, b, now| {
        if now.as_millis() / 2000 > last_print {
            last_print = now.as_millis() / 2000;
            let sf = b.transport.tcp().unwrap().subflow(0).unwrap();
            eprintln!("t={:?} rx={} cwnd={} inflight={} has_rtx={} pf={} srtt={:?} una={} nxt={} rcv_nxt(c)={}",
                now, a.app.bytes_received(), sf.cc.window(), sf.bytes_in_flight(), sf.has_rtx(), sf.pf, sf.rtt.srtt(), sf.snd_una(), sf.snd_nxt(),
                a.transport.tcp().unwrap().subflow(0).map_or(0, |x| x.rcv_nxt()));
        }
        a.app.done_at().is_some()
    });
    eprintln!(
        "done at {:?} bytes {}",
        sim.a.app.done_at(),
        sim.a.app.bytes_received()
    );
    eprintln!("server stats: {:?}", sim.b.transport.tcp().unwrap().stats());
    eprintln!("client stats: {:?}", sim.a.transport.tcp().unwrap().stats());
    eprintln!("net: {:?}", sim.stats());
}

#[test]
#[ignore]
fn probe_tcp_pathologies() {
    use mpquic_expdesign::table1::design_scenarios;
    let scenarios = design_scenarios(ExperimentClass::LowBdpNoLoss, 30);
    for sc in &scenarios {
        let specs = sc.path_specs();
        for (i, sp) in specs.iter().enumerate() {
            let q = run_file_transfer(
                &specs[i..i + 1],
                Protocol::Quic,
                2 * MB,
                1,
                Duration::from_secs(120),
                &Overrides::default(),
            );
            let t = run_file_transfer(
                &specs[i..i + 1],
                Protocol::Tcp,
                2 * MB,
                1,
                Duration::from_secs(120),
                &Overrides::default(),
            );
            let ratio = t.duration_secs / q.duration_secs;
            if !(0.5..=2.0).contains(&ratio) {
                eprintln!("#{} path{}: cap={:.2}Mbps rtt={:.1}ms queue={:.1}ms -> TCP {:.1}s QUIC {:.1}s ratio {:.2} (tcp complete={} bytes={})",
                    sc.index, i, sp.capacity_mbps, sp.rtt.as_millis(), sp.max_queue_delay.as_millis(),
                    t.duration_secs, q.duration_secs, ratio, t.completed, t.bytes_received);
            }
        }
    }
}

#[test]
#[ignore]
fn probe_low_capacity_quic() {
    use mpquic_harness::{build_pair, App};
    use mpquic_netsim::{NetworkPlan, Simulation};
    use mpquic_util::SimTime;
    let one = [spec(0.25, 35, 20, 0.0)];
    let plan = NetworkPlan::two_host(&one);
    let (c, s) = build_pair(
        Protocol::Quic,
        &plan,
        1,
        App::file_client(100),
        App::file_server(100, 2 * MB),
        &Overrides::default(),
    );
    let mut sim = Simulation::new(c, s, plan, 1);
    sim.run_until(SimTime::ZERO + Duration::from_secs(400), |a, _, _| {
        a.app.done_at().is_some()
    });
    eprintln!("QUIC done at {:?}", sim.a.app.done_at());
    eprintln!(
        "server conn stats: {:?}",
        sim.b.transport.quic().unwrap().stats()
    );
    eprintln!("net: {:?}", sim.stats());
}

#[test]
fn bbr_lite_extension_completes_transfers() {
    // The BBR-lite extension (paper footnote 3) must move data correctly
    // even though it is not part of the evaluated configuration.
    let overrides = Overrides {
        cc: Some(mpquic_core::CcAlgorithm::BbrLite),
        ..Overrides::default()
    };
    let duo = [spec(10.0, 40, 100, 0.0), spec(5.0, 60, 100, 0.0)];
    for protocol in [Protocol::Quic, Protocol::Mpquic] {
        let specs: &[PathSpec] = if protocol.is_multipath() {
            &duo
        } else {
            &duo[..1]
        };
        let outcome = run_file_transfer(
            specs,
            protocol,
            2 * MB,
            4,
            Duration::from_secs(120),
            &overrides,
        );
        assert!(outcome.completed, "{}: {outcome:?}", protocol.name());
        // Throughput sanity: at least half the bottleneck link.
        assert!(
            outcome.goodput * 8.0 > 5e6 * 0.5,
            "{}: goodput {:.2} Mbps too low",
            protocol.name(),
            outcome.goodput * 8.0 / 1e6
        );
    }
}
