//! Regenerates **Figure 5**: ratio CDFs with random losses (low BDP).

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::report::{print_ratio_figure, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let config = args.sweep(ExperimentClass::LowBdpLosses, 20 << 20);
    let results = mpquic_harness::run_class_sweep(&config);
    print_ratio_figure(
        "Fig. 5 — GET 20 MB, low-BDP-losses",
        "(MP)QUIC reacts faster than (MP)TCP to random losses; QUIC nearly always ahead",
        &results,
    );
}
