//! Regenerates **Figure 8**: ratio CDFs in high-BDP environments with
//! random losses.

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::report::{print_ratio_figure, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let config = args.sweep(ExperimentClass::HighBdpLosses, 20 << 20);
    let results = mpquic_harness::run_class_sweep(&config);
    print_ratio_figure(
        "Fig. 8 — GET 20 MB, high-BDP-losses",
        "QUIC performs better than TCP in high-BDP environments when there are random losses",
        &results,
    );
}
