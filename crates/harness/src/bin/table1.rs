//! Regenerates **Table 1**: the experimental-design parameter ranges and
//! a sample of the WSP-designed scenarios drawn from them.

use mpquic_expdesign::table1::design_scenarios;
use mpquic_expdesign::ExperimentClass;

fn main() {
    println!("== Table 1: Experimental design parameters [37] ==");
    println!("                        Low-BDP           High-BDP");
    println!("Factor                Min.    Max.      Min.    Max.");
    let low = ExperimentClass::LowBdpNoLoss.ranges();
    let high = ExperimentClass::HighBdpNoLoss.ranges();
    println!(
        "Capacity [Mbps]      {:>5}  {:>6}     {:>5}  {:>6}",
        low.capacity_mbps.0, low.capacity_mbps.1, high.capacity_mbps.0, high.capacity_mbps.1
    );
    println!(
        "Round-Trip-Time [ms] {:>5}  {:>6}     {:>5}  {:>6}",
        low.rtt_ms.0, low.rtt_ms.1, high.rtt_ms.0, high.rtt_ms.1
    );
    println!(
        "Queuing Delay [ms]   {:>5}  {:>6}     {:>5}  {:>6}",
        low.queue_ms.0, low.queue_ms.1, high.queue_ms.0, high.queue_ms.1
    );
    println!(
        "Random Loss [%]      {:>5}  {:>6}     {:>5}  {:>6}",
        low.loss_pct.0, low.loss_pct.1, high.loss_pct.0, high.loss_pct.1
    );
    println!();
    for class in ExperimentClass::ALL {
        let scenarios = design_scenarios(class, mpquic_expdesign::SCENARIOS_PER_CLASS);
        println!(
            "class {:<18} {} WSP scenarios × 2 start modes = {} simulations per protocol",
            class.name(),
            scenarios.len(),
            scenarios.len() * 2
        );
        for s in scenarios.iter().take(3) {
            println!(
                "  #{:<3} pathA: {:6.2} Mbps {:5.1} ms rtt {:6.1} ms queue {:.2}% loss | pathB: {:6.2} Mbps {:5.1} ms rtt {:6.1} ms queue {:.2}% loss",
                s.index,
                s.paths[0].capacity_mbps, s.paths[0].rtt_ms, s.paths[0].queue_ms, s.paths[0].loss_pct,
                s.paths[1].capacity_mbps, s.paths[1].rtt_ms, s.paths[1].queue_ms, s.paths[1].loss_pct,
            );
        }
        println!("  ...");
    }
}
