//! Regenerates **Figure 10**: aggregation benefit for short transfers —
//! multipath is not useful for 256 kB downloads.

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::report::{print_benefit_figure, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let config = args.sweep(ExperimentClass::LowBdpNoLoss, 256 << 10);
    let results = mpquic_harness::run_class_sweep(&config);
    print_benefit_figure(
        "Fig. 10 — aggregation benefit, GET 256 kB, low-BDP-no-loss",
        "for short transfers QUIC should remain single-path with heterogeneous paths",
        &results,
    );
}
