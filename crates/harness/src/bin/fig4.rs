//! Regenerates **Figure 4**: the experimental aggregation benefit in
//! low-BDP-no-loss environments, split by best/worst starting path.

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::report::{print_benefit_figure, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let config = args.sweep(ExperimentClass::LowBdpNoLoss, 20 << 20);
    let results = mpquic_harness::run_class_sweep(&config);
    print_benefit_figure(
        "Fig. 4 — aggregation benefit, GET 20 MB, low-BDP-no-loss",
        "MPQUIC reaches higher aggregation in 77% of scenarios vs 45% for MPTCP; MPQUIC less affected by starting on the worst path",
        &results,
    );
}
