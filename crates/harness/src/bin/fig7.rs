//! Regenerates **Figure 7**: aggregation benefit in high-BDP
//! environments without random losses.

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::report::{print_benefit_figure, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let config = args.sweep(ExperimentClass::HighBdpNoLoss, 20 << 20);
    let results = mpquic_harness::run_class_sweep(&config);
    print_benefit_figure(
        "Fig. 7 — aggregation benefit, GET 20 MB, high-BDP-no-loss",
        "multipath beneficial in 58% of scenarios for QUIC vs 20% for TCP (bufferbloat + receive-window HoL)",
        &results,
    );
}
