//! Runs the paper's complete evaluation — one sweep per experiment class,
//! reused for both the ratio figure and the benefit figure of that class
//! — plus the handover experiment. This is what generates the data in
//! EXPERIMENTS.md.
//!
//! Scale with `--scenarios N --size BYTES --repeats K --cap SECS`.

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::report::{maybe_write_json, print_benefit_figure, print_ratio_figure, CliArgs};
use mpquic_harness::{run_class_sweep, run_handover, HandoverConfig};

fn main() {
    let args = CliArgs::parse();
    let t0 = std::time::Instant::now();

    // --- 20 MB classes (Figs. 3-8) ---
    let large = args.size.unwrap_or(20 << 20);
    println!(
        "running 4 classes × {} scenarios × 2 start modes, {} B transfers\n",
        args.scenarios, large
    );

    let low = run_class_sweep(&args.sweep(ExperimentClass::LowBdpNoLoss, large));
    maybe_write_json(&args, "low_bdp_no_loss", &low);
    print_ratio_figure(
        "Fig. 3 — GET 20 MB, low-BDP-no-loss",
        "single-path TCP and QUIC similar; MPQUIC faster than MPTCP in 89% of scenarios",
        &low,
    );
    println!();
    print_benefit_figure(
        "Fig. 4 — aggregation benefit, low-BDP-no-loss",
        "higher aggregation for MPQUIC in 77% of scenarios vs 45% for MPTCP; MPQUIC insensitive to the initial path",
        &low,
    );
    println!();

    let low_loss = run_class_sweep(&args.sweep(ExperimentClass::LowBdpLosses, large));
    maybe_write_json(&args, "low_bdp_losses", &low_loss);
    print_ratio_figure(
        "Fig. 5 — GET 20 MB, low-BDP-losses",
        "(MP)QUIC reacts faster than (MP)TCP to random losses",
        &low_loss,
    );
    println!();
    print_benefit_figure(
        "Fig. 6 — aggregation benefit, low-BDP-losses",
        "multipath still advantageous for QUIC in lossy environments",
        &low_loss,
    );
    println!();

    let high = run_class_sweep(&args.sweep(ExperimentClass::HighBdpNoLoss, large));
    maybe_write_json(&args, "high_bdp_no_loss", &high);
    print_benefit_figure(
        "Fig. 7 — aggregation benefit, high-BDP-no-loss",
        "multipath beneficial in 58% of scenarios for QUIC vs 20% for TCP",
        &high,
    );
    println!();
    print_ratio_figure(
        "(supplement) ratio CDFs, high-BDP-no-loss",
        "(not a separate paper figure; printed for completeness)",
        &high,
    );
    println!();

    let high_loss = run_class_sweep(&args.sweep(ExperimentClass::HighBdpLosses, large));
    maybe_write_json(&args, "high_bdp_losses", &high_loss);
    print_ratio_figure(
        "Fig. 8 — GET 20 MB, high-BDP-losses",
        "QUIC performs better than TCP in high-BDP environments with random losses",
        &high_loss,
    );
    println!();
    print_benefit_figure(
        "(supplement) aggregation benefit, high-BDP-losses",
        "(not a separate paper figure; printed for completeness)",
        &high_loss,
    );
    println!();

    // --- 256 kB short transfers (Figs. 9-10) ---
    // The paper pins this size; `--size` only scales the large transfers.
    let mut short_cfg = args.sweep(ExperimentClass::LowBdpNoLoss, 256 << 10);
    short_cfg.response_size = 256 << 10;
    let short = run_class_sweep(&short_cfg);
    maybe_write_json(&args, "short_transfers", &short);
    print_ratio_figure(
        "Fig. 9 — GET 256 kB, low-BDP-no-loss",
        "QUIC faster thanks to its 1-RTT handshake (TCP+TLS 1.2: 3 RTTs)",
        &short,
    );
    println!();
    print_benefit_figure(
        "Fig. 10 — aggregation benefit, GET 256 kB",
        "short transfers: QUIC should remain single-path with heterogeneous paths",
        &short,
    );
    println!();

    // --- Fig. 11 handover ---
    let delays = run_handover(&HandoverConfig::default(), 42);
    println!("== Fig. 11 — handover ==");
    let worst = delays.iter().map(|(_, d)| *d).fold(0.0, f64::max);
    let pre: Vec<f64> = delays
        .iter()
        .filter(|(t, _)| *t < 2.8)
        .map(|(_, d)| *d)
        .collect();
    let post: Vec<f64> = delays
        .iter()
        .filter(|(t, _)| *t > 5.0)
        .map(|(_, d)| *d)
        .collect();
    println!(
        "answered {}/37 requests | pre-failure ~{:.1} ms | failover spike {:.1} ms | post-failover ~{:.1} ms",
        delays.len(),
        pre.iter().sum::<f64>() / pre.len().max(1) as f64,
        worst,
        post.iter().sum::<f64>() / post.len().max(1) as f64,
    );

    println!("\ntotal wall time: {:.1?}", t0.elapsed());
}
