//! Regenerates **Figure 9**: ratio CDFs for short (256 kB) transfers —
//! the handshake-latency figure.

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::report::{print_ratio_figure, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let config = args.sweep(ExperimentClass::LowBdpNoLoss, 256 << 10);
    let results = mpquic_harness::run_class_sweep(&config);
    print_ratio_figure(
        "Fig. 9 — GET 256 kB, low-BDP-no-loss",
        "QUIC faster thanks to its 1-RTT secure handshake (TCP+TLS 1.2 needs 3 RTTs)",
        &results,
    );
}
