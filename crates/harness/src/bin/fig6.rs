//! Regenerates **Figure 6**: aggregation benefit with random losses.

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::report::{print_benefit_figure, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let config = args.sweep(ExperimentClass::LowBdpLosses, 20 << 20);
    let results = mpquic_harness::run_class_sweep(&config);
    print_benefit_figure(
        "Fig. 6 — aggregation benefit, GET 20 MB, low-BDP-losses",
        "multipath can still be advantageous for QUIC in lossy environments, with more goodput variance",
        &results,
    );
}
