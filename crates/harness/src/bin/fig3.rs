//! Regenerates **Figure 3**: CDFs of the download-time ratios
//! (TCP/QUIC and MPTCP/MPQUIC) for a 20 MB transfer in
//! low-BDP-no-loss environments.

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::report::{print_ratio_figure, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let config = args.sweep(ExperimentClass::LowBdpNoLoss, 20 << 20);
    let results = mpquic_harness::run_class_sweep(&config);
    print_ratio_figure(
        "Fig. 3 — GET 20 MB, low-BDP-no-loss",
        "single-path TCP and QUIC similar; MPQUIC faster than MPTCP in 89% of scenarios",
        &results,
    );
}
