//! Regenerates **Figure 11**: the network-handover experiment.
//!
//! Request/response traffic (750 B each way, every 400 ms) over two
//! paths (15 ms and 25 ms RTT); at t = 3 s the initial path becomes
//! completely lossy. MPQUIC fails over to the second path after one RTO
//! and tells the server via a PATHS frame, so the server answers on the
//! working path without its own RTO.

use mpquic_harness::report::print_path_metrics;
use mpquic_harness::{run_handover_instrumented, HandoverConfig};

fn main() {
    let config = HandoverConfig::default();
    let (delays, metrics) = run_handover_instrumented(&config, 42);
    println!("== Fig. 11 — network handover (MPQUIC) ==");
    println!(
        "initial path RTT {:?} fails at {:?}; second path RTT {:?}",
        config.initial_rtt, config.fail_at, config.second_rtt
    );
    println!("# sent_time[s]\tdelay[ms]");
    for (sent, delay) in &delays {
        println!("{sent:.3}\t{delay:.1}");
    }
    let max_delay = delays.iter().map(|(_, d)| *d).fold(0.0, f64::max);
    let post: Vec<f64> = delays
        .iter()
        .filter(|(t, _)| *t > 5.0)
        .map(|(_, d)| *d)
        .collect();
    let post_avg = post.iter().sum::<f64>() / post.len().max(1) as f64;
    println!("# headline: worst delay {max_delay:.1} ms at failover; post-failover average {post_avg:.1} ms");
    println!(
        "# paper:    one request sees the RTO spike; connection continues on the functional path"
    );
    if let Some(snapshot) = metrics {
        print_path_metrics(&snapshot);
    }
}
