//! Ablation study of the paper's design choices (DESIGN.md §6): runs the
//! same workloads with each mechanism toggled and prints the *simulated
//! outcome* differences. (The Criterion `ablations` bench tracks the
//! computational cost of the same variants.)

use mpquic_core::SchedulerKind;
use mpquic_harness::{run_file_transfer, run_handover, HandoverConfig, Overrides, Protocol};
use mpquic_netsim::PathSpec;
use std::time::Duration;

const CAP: Duration = Duration::from_secs(300);
const SIZE: usize = 4 << 20;

fn heterogeneous() -> [PathSpec; 2] {
    // Strongly heterogeneous RTTs: the regime where scheduling and
    // receive-window handling decide the outcome.
    [
        PathSpec::new(12.0, 20, 80, 0.0),
        PathSpec::new(8.0, 400, 400, 0.0),
    ]
}

fn main() {
    println!("== Ablations: MPQUIC design choices on a heterogeneous two-path network ==");
    println!("paths: 12 Mbps/20 ms + 8 Mbps/400 ms, 4 MB download, 1 MB receive window\n");

    // 1. Scheduler: the paper's duplicate-while-unknown vs alternatives.
    // A tight receive window + extreme RTT asymmetry makes bad placement
    // (round-robin) pay in head-of-line blocking, as §3 argues.
    println!("-- packet scheduler (paper §3: duplicate on unknown-RTT paths) --");
    for (name, kind) in [
        ("lowest-RTT + duplicate (paper)", SchedulerKind::LowestRtt),
        (
            "lowest-RTT, no duplication",
            SchedulerKind::LowestRttNoDuplicate,
        ),
        ("round-robin", SchedulerKind::RoundRobin),
        ("redundant (all paths)", SchedulerKind::Redundant),
        ("BLEST-style HoL-aware", SchedulerKind::Blest),
    ] {
        let overrides = Overrides {
            scheduler: Some(kind),
            quic_recv_window: Some(1 << 20),
            ..Overrides::default()
        };
        let o = run_file_transfer(&heterogeneous(), Protocol::Mpquic, SIZE, 3, CAP, &overrides);
        println!(
            "  {name:<32} {:.3}s  ({:.2} Mbps)",
            o.duration_secs,
            o.goodput * 8.0 / 1e6
        );
    }

    // 2. Packet-number spaces: the paper gives every path its own
    // sequence space (§3.1) so one path's reordering cannot poison
    // another's loss detection. Collapse them onto a single shared
    // space and let the 400 ms path's gaps trigger spurious
    // retransmissions on the 20 ms path.
    println!("\n-- packet-number spaces (paper §3.1: one space per path) --");
    for (name, shared) in [("per-path (paper)", false), ("single shared space", true)] {
        let overrides = Overrides {
            shared_pn_space: Some(shared),
            quic_recv_window: Some(1 << 20),
            ..Overrides::default()
        };
        let o = run_file_transfer(&heterogeneous(), Protocol::Mpquic, SIZE, 3, CAP, &overrides);
        println!(
            "  {name:<32} {:.3}s  ({:.2} Mbps)",
            o.duration_secs,
            o.goodput * 8.0 / 1e6
        );
    }

    // 3. WINDOW_UPDATE duplication under a tight receive window.
    println!("\n-- WINDOW_UPDATE duplication (tight 256 kB receive window) --");
    for (name, dup) in [("on all paths (paper)", true), ("single path", false)] {
        let overrides = Overrides {
            duplicate_window_updates: Some(dup),
            quic_recv_window: Some(256 << 10),
            scheduler: None,
            ..Overrides::default()
        };
        let o = run_file_transfer(&heterogeneous(), Protocol::Mpquic, SIZE, 3, CAP, &overrides);
        println!(
            "  {name:<32} {:.3}s  ({:.2} Mbps)",
            o.duration_secs,
            o.goodput * 8.0 / 1e6
        );
    }

    // 4. PATHS frame during handover.
    println!("\n-- PATHS frame on RTO (handover acceleration, paper §4.3) --");
    for (name, enabled) in [("enabled (paper)", true), ("disabled", false)] {
        let config = HandoverConfig {
            overrides: Overrides {
                send_paths_frames: Some(enabled),
                ..Overrides::default()
            },
            ..HandoverConfig::default()
        };
        let delays = run_handover(&config, 42);
        let worst = delays.iter().map(|(_, d)| *d).fold(0.0, f64::max);
        println!("  {name:<32} worst request delay {worst:.1} ms");
    }

    // 5. Congestion control coupling.
    println!("\n-- multipath congestion control --");
    for (name, cc) in [
        ("OLIA (paper)", mpquic_core::CcAlgorithm::Olia),
        ("LIA (RFC 6356)", mpquic_core::CcAlgorithm::Lia),
        ("uncoupled CUBIC (unfair!)", mpquic_core::CcAlgorithm::Cubic),
        ("BBR-lite (extension)", mpquic_core::CcAlgorithm::BbrLite),
    ] {
        let overrides = Overrides {
            cc: Some(cc),
            ..Overrides::default()
        };
        let o = run_file_transfer(&heterogeneous(), Protocol::Mpquic, SIZE, 3, CAP, &overrides);
        println!(
            "  {name:<32} {:.3}s  ({:.2} Mbps)",
            o.duration_secs,
            o.goodput * 8.0 / 1e6
        );
    }

    // 6. MPTCP's ORP, in the regime it exists for: a shared receive
    // window small enough that slow-path data blocks it.
    println!("\n-- MPTCP penalization + opportunistic retransmission (512 kB shared window) --");
    for (name, orp) in [("enabled (Linux default)", true), ("disabled", false)] {
        let overrides = Overrides {
            orp: Some(orp),
            tcp_recv_window: Some(512 << 10),
            ..Overrides::default()
        };
        let o = run_file_transfer(&heterogeneous(), Protocol::Mptcp, SIZE, 3, CAP, &overrides);
        println!(
            "  {name:<32} {:.3}s  ({:.2} Mbps)",
            o.duration_secs,
            o.goodput * 8.0 / 1e6
        );
    }

    // 7. ACK-range richness: the paper credits QUIC's 256 ACK ranges
    // (vs TCP's 2-3 SACK blocks) for its loss resilience. Cap QUIC at 3
    // ranges and compare on a lossy path, alongside real TCP.
    println!("\n-- ACK-range richness (2.5% loss, 100 ms RTT, 1 MB) --");
    let lossy = [PathSpec::new(10.0, 100, 50, 2.5)];
    for (name, ranges) in [
        ("QUIC, 256 ACK ranges (paper)", 256usize),
        ("QUIC capped to 3 ranges", 3),
    ] {
        let overrides = Overrides {
            quic_ack_ranges: Some(ranges),
            ..Overrides::default()
        };
        let o = run_file_transfer(&lossy, Protocol::Quic, 1 << 20, 3, CAP, &overrides);
        println!("  {name:<32} {:.3}s", o.duration_secs);
    }
    let o = run_file_transfer(
        &lossy,
        Protocol::Tcp,
        1 << 20,
        3,
        CAP,
        &Overrides::default(),
    );
    println!("  {:<32} {:.3}s", "TCP (3 SACK blocks)", o.duration_secs);

    // 8. Shared-bottleneck fairness — the §3 argument for OLIA: a 2-path
    // MPQUIC download and a single-path QUIC download share an 8 Mbps
    // bottleneck; the competitor's share shows the coupling at work.
    println!("\n-- shared-bottleneck fairness (2-path MPQUIC vs single-path QUIC, 8 Mbps) --");
    for (name, cc) in [
        ("OLIA (coupled, paper)", mpquic_core::CcAlgorithm::Olia),
        ("LIA (coupled)", mpquic_core::CcAlgorithm::Lia),
        ("uncoupled CUBIC", mpquic_core::CcAlgorithm::Cubic),
    ] {
        let o = mpquic_harness::run_shared_bottleneck(cc, 8.0, Duration::from_secs(12), 5);
        println!(
            "  {name:<32} competitor share {:.1}%  (multi {:.2} Mbps / single {:.2} Mbps)",
            o.single_share() * 100.0,
            o.multipath_goodput * 8.0 / 1e6,
            o.single_goodput * 8.0 / 1e6,
        );
    }
}
