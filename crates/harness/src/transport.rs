//! A uniform transport interface over the QUIC and TCP stacks.
//!
//! The experiments need to run the same applications (file download,
//! request/response) over four protocols. [`Transport`] exposes the
//! common surface — a single bidirectional byte stream plus the sans-IO
//! driving methods — and [`AnyTransport`] dispatches to either stack.
//!
//! The trait is substrate-agnostic: it speaks [`mpquic_util::Datagram`],
//! so the same transport can be driven by the discrete-event simulator
//! (`mpquic-netsim`) or by real UDP sockets (`mpquic-io`).

use bytes::Bytes;
use mpquic_core::{Connection, StreamId, Transmit, TransmitQueue};
use mpquic_tcp::TcpStack;
use mpquic_util::{Datagram, SimTime};
use std::net::SocketAddr;

/// One bidirectional byte stream over some transport protocol, plus the
/// sans-IO driving surface.
pub trait Transport {
    /// Appends data to the outgoing stream.
    fn write(&mut self, data: Bytes);
    /// Ends the outgoing stream.
    fn finish(&mut self);
    /// Reads the next chunk of in-order incoming data.
    fn read_chunk(&mut self) -> Option<Bytes>;
    /// True once the peer's end-of-stream was received and read.
    fn recv_finished(&self) -> bool;
    /// True once the secure handshake completed.
    fn is_established(&self) -> bool;

    /// Feeds an incoming datagram.
    fn handle_datagram(
        &mut self,
        now: SimTime,
        local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
    );
    /// Produces the next outgoing datagram.
    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram>;
    /// Fills `queue` with as many outgoing datagrams as it accepts,
    /// returning how many wire datagrams were produced.
    ///
    /// The default implementation loops [`Transport::poll_transmit`]
    /// (one allocation per datagram, no coalescing); transports with a
    /// native batched egress path override it.
    fn poll_transmit_batch(&mut self, now: SimTime, queue: &mut TransmitQueue) -> usize {
        let mut produced = 0;
        while queue.has_capacity() {
            let Some(datagram) = self.poll_transmit(now) else {
                break;
            };
            queue.push(Transmit {
                local: datagram.local,
                remote: datagram.remote,
                payload: datagram.payload,
                segment_size: None,
            });
            produced += 1;
        }
        produced
    }
    /// Earliest pending protocol timer.
    fn next_timeout(&self) -> Option<SimTime>;
    /// Fires due protocol timers.
    fn on_timeout(&mut self, now: SimTime);
}

/// The (MP)QUIC transport: an `mpquic_core::Connection` with one
/// application stream (the paper's single-stream transfers).
pub struct QuicTransport {
    /// The underlying connection (public for instrumentation).
    pub conn: Connection,
    stream: StreamId,
}

/// The client's first stream ID (client-opened streams are odd).
const APP_STREAM: StreamId = 1;

impl QuicTransport {
    /// Wraps a client connection, opening the application stream.
    pub fn client(mut conn: Connection) -> QuicTransport {
        let stream = conn.open_stream();
        debug_assert_eq!(stream, APP_STREAM);
        QuicTransport { conn, stream }
    }

    /// Wraps a server connection; the stream is created when the client's
    /// first STREAM frame arrives.
    pub fn server(conn: Connection) -> QuicTransport {
        QuicTransport {
            conn,
            stream: APP_STREAM,
        }
    }
}

impl Transport for QuicTransport {
    fn write(&mut self, data: Bytes) {
        self.conn
            .stream_write(self.stream, data)
            .expect("app writes before finish");
    }

    fn finish(&mut self) {
        self.conn.stream_finish(self.stream);
    }

    fn read_chunk(&mut self) -> Option<Bytes> {
        self.conn.stream_read(self.stream, usize::MAX)
    }

    fn recv_finished(&self) -> bool {
        self.conn.stream_is_finished(self.stream)
    }

    fn is_established(&self) -> bool {
        self.conn.is_established()
    }

    fn handle_datagram(
        &mut self,
        now: SimTime,
        local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
    ) {
        self.conn.handle_datagram(now, local, remote, payload);
        // Drain events; the polling applications don't consume them.
        while self.conn.poll_event().is_some() {}
    }

    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        self.conn.poll_transmit(now).map(|t| Datagram {
            local: t.local,
            remote: t.remote,
            payload: t.payload,
        })
    }

    fn poll_transmit_batch(&mut self, now: SimTime, queue: &mut TransmitQueue) -> usize {
        // Native batched egress: pool-backed buffers, GSO coalescing.
        self.conn.poll_transmit_batch(now, queue)
    }

    fn next_timeout(&self) -> Option<SimTime> {
        self.conn.next_timeout()
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
        while self.conn.poll_event().is_some() {}
    }
}

/// The (MP)TCP transport.
pub struct TcpTransport {
    /// The underlying stack (public for instrumentation).
    pub stack: TcpStack,
}

impl TcpTransport {
    /// Wraps a TCP stack.
    pub fn new(stack: TcpStack) -> TcpTransport {
        TcpTransport { stack }
    }
}

impl Transport for TcpTransport {
    fn write(&mut self, data: Bytes) {
        self.stack.write(data);
    }

    fn finish(&mut self) {
        self.stack.finish();
    }

    fn read_chunk(&mut self) -> Option<Bytes> {
        self.stack.read(usize::MAX)
    }

    fn recv_finished(&self) -> bool {
        self.stack.recv_finished()
    }

    fn is_established(&self) -> bool {
        self.stack.is_established()
    }

    fn handle_datagram(
        &mut self,
        now: SimTime,
        local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
    ) {
        self.stack.handle_datagram(now, local, remote, payload);
    }

    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        self.stack.poll_transmit(now).map(|t| Datagram {
            local: t.local,
            remote: t.remote,
            payload: t.payload,
        })
    }

    fn next_timeout(&self) -> Option<SimTime> {
        self.stack.next_timeout()
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.stack.on_timeout(now);
    }
}

/// Either transport, statically dispatched per call.
#[allow(clippy::large_enum_variant)] // two long-lived stacks; boxing buys nothing
pub enum AnyTransport {
    /// (MP)QUIC.
    Quic(QuicTransport),
    /// (MP)TCP.
    Tcp(TcpTransport),
}

impl AnyTransport {
    /// The QUIC connection, when this is a QUIC transport.
    pub fn quic(&self) -> Option<&Connection> {
        match self {
            AnyTransport::Quic(q) => Some(&q.conn),
            AnyTransport::Tcp(_) => None,
        }
    }

    /// Mutable access to the QUIC connection, e.g. to install a
    /// telemetry subscriber before the simulation starts.
    pub fn quic_mut(&mut self) -> Option<&mut Connection> {
        match self {
            AnyTransport::Quic(q) => Some(&mut q.conn),
            AnyTransport::Tcp(_) => None,
        }
    }

    /// The TCP stack, when this is a TCP transport.
    pub fn tcp(&self) -> Option<&TcpStack> {
        match self {
            AnyTransport::Tcp(t) => Some(&t.stack),
            AnyTransport::Quic(_) => None,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $t:ident => $body:expr) => {
        match $self {
            AnyTransport::Quic($t) => $body,
            AnyTransport::Tcp($t) => $body,
        }
    };
}

impl Transport for AnyTransport {
    fn write(&mut self, data: Bytes) {
        dispatch!(self, t => t.write(data))
    }
    fn finish(&mut self) {
        dispatch!(self, t => t.finish())
    }
    fn read_chunk(&mut self) -> Option<Bytes> {
        dispatch!(self, t => t.read_chunk())
    }
    fn recv_finished(&self) -> bool {
        dispatch!(self, t => t.recv_finished())
    }
    fn is_established(&self) -> bool {
        dispatch!(self, t => t.is_established())
    }
    fn handle_datagram(
        &mut self,
        now: SimTime,
        local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
    ) {
        dispatch!(self, t => t.handle_datagram(now, local, remote, payload))
    }
    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        dispatch!(self, t => t.poll_transmit(now))
    }
    fn poll_transmit_batch(&mut self, now: SimTime, queue: &mut TransmitQueue) -> usize {
        dispatch!(self, t => t.poll_transmit_batch(now, queue))
    }
    fn next_timeout(&self) -> Option<SimTime> {
        dispatch!(self, t => t.next_timeout())
    }
    fn on_timeout(&mut self, now: SimTime) {
        dispatch!(self, t => t.on_timeout(now))
    }
}
