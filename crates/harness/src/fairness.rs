//! Shared-bottleneck fairness — why the paper pairs MPQUIC with OLIA.
//!
//! §3 of the paper: "To achieve a fair distribution of network resources,
//! transport protocols rely on congestion control algorithms. ... Using
//! CUBIC in a multipath protocol would cause unfairness [48]." The
//! two-host simulator cannot show this (fairness is about *competing
//! connections*), so this experiment uses
//! [`mpquic_netsim::MultiSimulation`]: a multipath connection whose two
//! paths both traverse a shared bottleneck, competing with an ordinary
//! single-path QUIC connection.
//!
//! With coupled OLIA the multipath connection behaves like *one* flow at
//! the bottleneck and the single-path competitor keeps ≈ half the
//! capacity; with uncoupled CUBIC per path the multipath connection acts
//! like two flows and squeezes the competitor toward one third.

use mpquic_core::{CcAlgorithm, Config, Connection};
use mpquic_netsim::{Datagram, Endpoint, LinkParams, MultiSimulation};
use mpquic_util::SimTime;
use std::cell::Cell;
use std::net::SocketAddr;
use std::rc::Rc;
use std::time::Duration;

use crate::app::App;
use crate::protocol::ProtoEndpoint;
use crate::transport::{AnyTransport, QuicTransport};

/// Wraps a [`ProtoEndpoint`] and mirrors its application byte counter
/// into a shared cell the experiment can read after the run (boxed
/// endpoints inside the simulation are not downcastable).
struct CountingEndpoint {
    inner: ProtoEndpoint,
    bytes: Rc<Cell<u64>>,
}

impl Endpoint for CountingEndpoint {
    fn on_datagram(&mut self, now: SimTime, local: SocketAddr, remote: SocketAddr, payload: &[u8]) {
        self.inner.on_datagram(now, local, remote, payload);
        self.bytes.set(self.inner.app.bytes_received());
    }
    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        let d = self.inner.poll_transmit(now);
        self.bytes.set(self.inner.app.bytes_received());
        d
    }
    fn next_timeout(&self) -> Option<SimTime> {
        self.inner.next_timeout()
    }
    fn on_timeout(&mut self, now: SimTime) {
        self.inner.on_timeout(now);
        self.bytes.set(self.inner.app.bytes_received());
    }
}

/// Result of one fairness run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessOutcome {
    /// Goodput of the 2-path multipath connection, bytes/sec.
    pub multipath_goodput: f64,
    /// Goodput of the single-path competitor, bytes/sec.
    pub single_goodput: f64,
}

impl FairnessOutcome {
    /// The competitor's share of the aggregate goodput (0.5 = perfectly
    /// fair against a one-flow-equivalent multipath connection).
    pub fn single_share(&self) -> f64 {
        self.single_goodput / (self.multipath_goodput + self.single_goodput)
    }
}

fn addr(s: &str) -> SocketAddr {
    s.parse().unwrap()
}

/// Runs the dumbbell experiment: a 2-path MPQUIC download (with the given
/// per-path congestion controller) and a single-path QUIC download share
/// one `bottleneck_mbps` link for `horizon` of simulated time.
pub fn run_shared_bottleneck(
    multipath_cc: CcAlgorithm,
    bottleneck_mbps: f64,
    horizon: Duration,
    seed: u64,
) -> FairnessOutcome {
    // Addresses: multipath pair (c0,c1 -> s0,s1), competitor (cb -> sb).
    let c0 = addr("10.0.0.1:40000");
    let c1 = addr("10.1.0.1:40000");
    let s0 = addr("10.0.8.1:443");
    let s1 = addr("10.1.8.1:443");
    let cb = addr("10.2.0.1:40000");
    let sb = addr("10.2.8.1:443");

    let mut sim = MultiSimulation::new(seed);
    // Generous access links; the only scarce resource is the bottleneck.
    let access = LinkParams::from_paper_units(100.0, 5.0, 200.0, 0.0);
    let bottleneck = LinkParams::from_paper_units(bottleneck_mbps, 10.0, 100.0, 0.0);
    let (acc0_f, acc0_r) = sim.add_duplex(access);
    let (acc1_f, acc1_r) = sim.add_duplex(access);
    let (accb_f, accb_r) = sim.add_duplex(access);
    let (bott_f, bott_r) = sim.add_duplex(bottleneck);

    // Client -> server crosses access then bottleneck; the reverse path
    // mirrors it. Both multipath paths AND the competitor share the
    // bottleneck in each direction.
    sim.add_route(c0, s0, vec![acc0_f, bott_f]);
    sim.add_route(s0, c0, vec![bott_r, acc0_r]);
    sim.add_route(c1, s1, vec![acc1_f, bott_f]);
    sim.add_route(s1, c1, vec![bott_r, acc1_r]);
    sim.add_route(cb, sb, vec![accb_f, bott_f]);
    sim.add_route(sb, cb, vec![bott_r, accb_r]);

    // Big enough downloads that nobody finishes within the horizon
    // (64 MB at a ≤100 Mbps bottleneck outlasts any sensible horizon).
    let payload = 64 << 20;
    let make = |conn: Connection, client: bool, response: usize| ProtoEndpoint {
        transport: AnyTransport::Quic(if client {
            QuicTransport::client(conn)
        } else {
            QuicTransport::server(conn)
        }),
        app: if client {
            App::file_client(100)
        } else {
            App::file_server(100, response)
        },
    };

    let mut mp_config = Config::multipath();
    mp_config.cc = multipath_cc;
    let mp_client = Connection::client(mp_config.clone(), vec![c0, c1], 0, s0, seed * 7 + 1);
    let mp_server = Connection::server(mp_config, vec![s0, s1], seed * 7 + 2);
    let sp_config = Config::single_path();
    let sp_client = Connection::client(sp_config.clone(), vec![cb], 0, sb, seed * 7 + 3);
    let sp_server = Connection::server(sp_config, vec![sb], seed * 7 + 4);

    let mp_bytes = Rc::new(Cell::new(0u64));
    let sp_bytes = Rc::new(Cell::new(0u64));
    sim.add_endpoint(
        Box::new(CountingEndpoint {
            inner: make(mp_client, true, 0),
            bytes: Rc::clone(&mp_bytes),
        }),
        [c0, c1],
    );
    sim.add_endpoint(Box::new(make(mp_server, false, payload)), [s0, s1]);
    sim.add_endpoint(
        Box::new(CountingEndpoint {
            inner: make(sp_client, true, 0),
            bytes: Rc::clone(&sp_bytes),
        }),
        [cb],
    );
    sim.add_endpoint(Box::new(make(sp_server, false, payload)), [sb]);

    let deadline = SimTime::ZERO + horizon;
    sim.run_until(deadline, |_| false);
    let elapsed = horizon.as_secs_f64();
    FairnessOutcome {
        multipath_goodput: mp_bytes.get() as f64 / elapsed,
        single_goodput: sp_bytes.get() as f64 / elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn olia_is_fairer_than_uncoupled_cubic_at_a_shared_bottleneck() {
        let horizon = Duration::from_secs(12);
        let olia = run_shared_bottleneck(CcAlgorithm::Olia, 8.0, horizon, 5);
        let cubic = run_shared_bottleneck(CcAlgorithm::Cubic, 8.0, horizon, 5);
        // Both runs keep the bottleneck busy.
        let total_olia = olia.multipath_goodput + olia.single_goodput;
        assert!(
            total_olia * 8.0 > 8e6 * 0.6,
            "bottleneck should be well utilized: {:.2} Mbps",
            total_olia * 8.0 / 1e6
        );
        // The paper's point: coupled OLIA leaves the competitor a larger
        // share than two uncoupled CUBIC subflows do.
        assert!(
            olia.single_share() > cubic.single_share() + 0.04,
            "OLIA share {:.3} should exceed CUBIC share {:.3}",
            olia.single_share(),
            cubic.single_share()
        );
        // And OLIA's competitor lands in the fair-ish region.
        assert!(
            olia.single_share() > 0.35,
            "OLIA single share {:.3} too small",
            olia.single_share()
        );
    }
}
