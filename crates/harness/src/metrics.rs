//! The paper's metrics.
//!
//! The central one is the **experimental aggregation benefit** (§4.1),
//! adapted from Kaspar's aggregation benefit: instead of comparing the
//! multipath goodput with the sum of link capacities, it is compared with
//! the goodputs *actually achieved by the single-path protocol* on each
//! path:
//!
//! ```text
//!            ⎧ (G_m − G_s^max) / (Σ G_s^i − G_s^max)   if G_m ≥ G_s^max
//! EBen(C) =  ⎨
//!            ⎩ (G_m − G_s^max) / G_s^max               otherwise
//! ```
//!
//! * `0`  → multipath matches single-path on the best path;
//! * `1`  → multipath aggregates the full sum of single-path goodputs;
//! * `−1` → the multipath protocol failed to transfer data;
//! * `>1` is possible when multipath beats the sum (it is experimental).

/// Computes the experimental aggregation benefit.
///
/// `multipath_goodput` is `G_m`; `single_goodputs` holds `G_s^i` for each
/// of the `n` paths. All goodputs in the same unit (e.g. bytes/sec).
pub fn aggregation_benefit(multipath_goodput: f64, single_goodputs: &[f64]) -> f64 {
    assert!(!single_goodputs.is_empty());
    let g_max = single_goodputs.iter().fold(0.0f64, |a, &b| a.max(b));
    let g_sum: f64 = single_goodputs.iter().sum();
    if g_max <= 0.0 {
        // No single-path baseline managed to move data; define the
        // benefit by the multipath side alone.
        return if multipath_goodput > 0.0 { 1.0 } else { -1.0 };
    }
    if multipath_goodput >= g_max {
        let denom = g_sum - g_max;
        if denom <= 0.0 {
            // Degenerate: one path has all the capacity; matching the
            // best path is the ceiling.
            0.0
        } else {
            (multipath_goodput - g_max) / denom
        }
    } else {
        (multipath_goodput - g_max) / g_max
    }
}

/// Download-time ratio `time(baseline) / time(candidate)` — the x-axis of
/// the CDF figures; `> 1` means the candidate (QUIC-family) was faster.
pub fn time_ratio(baseline_secs: f64, candidate_secs: f64) -> f64 {
    assert!(baseline_secs > 0.0 && candidate_secs > 0.0);
    baseline_secs / candidate_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_when_matching_best_path() {
        assert_eq!(aggregation_benefit(10.0, &[10.0, 5.0]), 0.0);
    }

    #[test]
    fn one_when_fully_aggregating() {
        assert_eq!(aggregation_benefit(15.0, &[10.0, 5.0]), 1.0);
    }

    #[test]
    fn negative_when_below_best_path() {
        assert_eq!(aggregation_benefit(5.0, &[10.0, 5.0]), -0.5);
    }

    #[test]
    fn minus_one_on_failure() {
        assert_eq!(aggregation_benefit(0.0, &[10.0, 5.0]), -1.0);
    }

    #[test]
    fn can_exceed_one() {
        assert_eq!(aggregation_benefit(20.0, &[10.0, 5.0]), 2.0);
    }

    #[test]
    fn degenerate_single_capacity() {
        // All capacity on one path: matching it scores 0.
        assert_eq!(aggregation_benefit(10.0, &[10.0, 0.0]), 0.0);
        assert_eq!(aggregation_benefit(12.0, &[10.0, 0.0]), 0.0);
    }

    #[test]
    fn failed_baselines() {
        assert_eq!(aggregation_benefit(5.0, &[0.0, 0.0]), 1.0);
        assert_eq!(aggregation_benefit(0.0, &[0.0, 0.0]), -1.0);
    }

    #[test]
    fn time_ratio_orientation() {
        // TCP slower than QUIC -> ratio > 1.
        assert!(time_ratio(2.0, 1.0) > 1.0);
        assert_eq!(time_ratio(1.5, 1.5), 1.0);
    }
}
