//! # mpquic-harness — the evaluation harness
//!
//! Glues the protocol stacks (`mpquic-core`, `mpquic-tcp`) to the network
//! simulator (`mpquic-netsim`) and the experimental design
//! (`mpquic-expdesign`), and computes the paper's metrics. Each figure of
//! the paper has a binary in `src/bin/` that regenerates its data:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `table1` | Table 1 — the experimental design parameters |
//! | `fig3`   | CDF of download-time ratios, 20 MB, low-BDP-no-loss |
//! | `fig4`   | aggregation benefit, low-BDP-no-loss |
//! | `fig5`   | ratio CDF, low-BDP-losses |
//! | `fig6`   | aggregation benefit, low-BDP-losses |
//! | `fig7`   | aggregation benefit, high-BDP-no-loss |
//! | `fig8`   | ratio CDF, high-BDP-losses |
//! | `fig9`   | ratio CDF, 256 kB, low-BDP-no-loss |
//! | `fig10`  | aggregation benefit, 256 kB, low-BDP-no-loss |
//! | `fig11`  | handover request-delay time series |
//!
//! Each binary accepts `--scenarios N`, `--size BYTES`, `--repeats K` to
//! scale the sweep; defaults follow the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod experiments;
pub mod fairness;
pub mod metrics;
pub mod protocol;
pub mod report;
pub mod runner;
pub mod transport;

pub use app::App;
pub use experiments::{run_class_sweep, ClassResults, SweepConfig};
pub use fairness::{run_shared_bottleneck, FairnessOutcome};
pub use metrics::aggregation_benefit;
pub use protocol::{build_pair, Overrides, ProtoEndpoint, Protocol};
pub use runner::{
    run_file_transfer, run_file_transfer_instrumented, run_file_transfer_median, run_handover,
    run_handover_instrumented, HandoverConfig, TransferOutcome, REQUEST_SIZE,
};
pub use transport::{AnyTransport, QuicTransport, TcpTransport, Transport};
