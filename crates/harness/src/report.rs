//! Text reporting for the figure binaries: headline statistics plus the
//! machine-readable series each paper figure plots, and a tiny CLI
//! parser shared by all binaries.

use mpquic_telemetry::MetricsSnapshot;
use mpquic_util::stats::{Cdf, FiveNumber};
use std::time::Duration;

use crate::experiments::{ClassResults, SweepConfig};
use mpquic_expdesign::ExperimentClass;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// `--scenarios N` — scenario count (default: the paper's 253).
    pub scenarios: usize,
    /// `--size BYTES` — response size (default depends on the figure).
    pub size: Option<usize>,
    /// `--repeats K` — repetitions per simulation.
    pub repeats: Option<usize>,
    /// `--threads N` — worker threads.
    pub threads: Option<usize>,
    /// `--cap SECONDS` — simulated time cap per transfer.
    pub cap_secs: Option<u64>,
    /// `--json DIR` — also write full per-class results as JSON files.
    pub json_dir: Option<String>,
}

impl CliArgs {
    /// Parses `std::env::args`; unknown flags abort with usage.
    pub fn parse() -> CliArgs {
        let mut args = CliArgs {
            scenarios: mpquic_expdesign::SCENARIOS_PER_CLASS,
            size: None,
            repeats: None,
            threads: None,
            cap_secs: None,
            json_dir: None,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| -> String {
                iter.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scenarios" => args.scenarios = value("--scenarios").parse().expect("number"),
                "--size" => args.size = Some(value("--size").parse().expect("bytes")),
                "--repeats" => args.repeats = Some(value("--repeats").parse().expect("count")),
                "--threads" => args.threads = Some(value("--threads").parse().expect("count")),
                "--cap" => args.cap_secs = Some(value("--cap").parse().expect("seconds")),
                "--json" => args.json_dir = Some(value("--json")),
                "--help" | "-h" => {
                    println!(
                        "options: --scenarios N  --size BYTES  --repeats K  --threads N  --cap SECONDS  --json DIR"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Builds the sweep configuration for a figure.
    pub fn sweep(&self, class: ExperimentClass, default_size: usize) -> SweepConfig {
        let mut config = SweepConfig::paper(class);
        config.scenario_count = self.scenarios;
        config.response_size = self.size.unwrap_or(default_size);
        if let Some(r) = self.repeats {
            config.repeats = r;
        } else if !class.with_losses() {
            // Loss-free simulations are deterministic; repeats are
            // redundant work.
            config.repeats = 1;
        }
        if let Some(t) = self.threads {
            config.threads = t;
        }
        if let Some(cap) = self.cap_secs {
            config.time_cap = Duration::from_secs(cap);
        }
        config
    }
}

/// Prints one comment line per path from a telemetry snapshot: the
/// per-path evidence (srtt, cwnd, bytes, loss, scheduler share) behind a
/// figure's headline numbers.
pub fn print_path_metrics(snapshot: &MetricsSnapshot) {
    println!("# per-path telemetry ({} events)", snapshot.events_seen);
    for p in &snapshot.paths {
        println!(
            "# path {}: srtt {:.2} ms, cwnd {} B, sent {} B / {} pkts, \
             loss {:.2}%, sched share {:.1}%, {} RTOs",
            p.path.0,
            p.srtt_us as f64 / 1e3,
            p.cwnd,
            p.bytes_sent,
            p.packets_sent,
            p.loss_percent,
            p.sched_share * 100.0,
            p.rtos,
        );
    }
    if snapshot.handovers > 0 {
        println!("# handovers: {}", snapshot.handovers);
    }
}

fn print_cdf(name: &str, cdf: &Cdf) {
    println!("# series: {name} ({} samples)", cdf.len());
    println!("# ratio\tcdf");
    for (x, p) in cdf.sampled_points(25) {
        println!("{x:.4}\t{p:.4}");
    }
}

/// Writes a class's full results as JSON when `--json DIR` was given.
pub fn maybe_write_json(args: &CliArgs, name: &str, results: &ClassResults) {
    if let Some(dir) = &args.json_dir {
        let path = std::path::Path::new(dir).join(format!("{name}.json"));
        if let Err(e) =
            std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, results.to_json()))
        {
            eprintln!("failed to write {}: {e}", path.display());
        } else {
            println!("# wrote {}", path.display());
        }
    }
}

/// Prints a ratio-CDF figure (Figs. 3, 5, 8, 9).
pub fn print_ratio_figure(title: &str, paper_note: &str, results: &ClassResults) {
    println!("== {title} ==");
    println!("class: {}", results.class.name());
    let tq = results.cdf_tcp_quic();
    let mm = results.cdf_mptcp_mpquic();
    println!(
        "headline: QUIC faster than TCP in {:.1}% of simulations (median ratio {:.3})",
        tq.fraction_above(1.0) * 100.0,
        tq.quantile(0.5).unwrap_or(f64::NAN),
    );
    println!(
        "headline: MPQUIC faster than MPTCP in {:.1}% of simulations (median ratio {:.3})",
        mm.fraction_above(1.0) * 100.0,
        mm.quantile(0.5).unwrap_or(f64::NAN),
    );
    println!("paper:    {paper_note}");
    print_cdf("Time TCP / QUIC", &tq);
    print_cdf("Time MPTCP / MPQUIC", &mm);
}

fn print_box(name: &str, samples: &[f64]) {
    match FiveNumber::from(samples) {
        Some(s) => println!(
            "{name}\tmin {:+.3}\tq1 {:+.3}\tmed {:+.3}\tq3 {:+.3}\tmax {:+.3}\tmean {:+.3}\tn {}",
            s.min, s.q1, s.median, s.q3, s.max, s.mean, s.count
        ),
        None => println!("{name}\t(no samples)"),
    }
}

/// Prints an aggregation-benefit figure (Figs. 4, 6, 7, 10).
pub fn print_benefit_figure(title: &str, paper_note: &str, results: &ClassResults) {
    println!("== {title} ==");
    println!("class: {}", results.class.name());
    println!(
        "headline: multipath beneficial (EBen > 0.05) for MPQUIC in {:.1}% of runs, MPTCP in {:.1}%",
        results.beneficial_fraction(true) * 100.0,
        results.beneficial_fraction(false) * 100.0,
    );
    println!("paper:    {paper_note}");
    println!("# experimental aggregation benefit (box summaries)");
    print_box("MPTCP vs TCP   [best-first]", &results.eben_mptcp[0]);
    print_box("MPTCP vs TCP   [worst-first]", &results.eben_mptcp[1]);
    print_box("MPQUIC vs QUIC [best-first]", &results.eben_mpquic[0]);
    print_box("MPQUIC vs QUIC [worst-first]", &results.eben_mpquic[1]);
}
