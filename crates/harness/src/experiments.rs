//! The full experiment sweeps behind each figure.
//!
//! [`run_class_sweep`] reproduces the §4.1/§4.2 methodology for one
//! experiment class: for every WSP-designed scenario it runs
//!
//! * single-path QUIC and TCP on each of the two paths (the aggregation
//!   baselines, also serving as the initial-path single-path runs), and
//! * MPQUIC and MPTCP with the connection started on the best and on the
//!   worst path,
//!
//! each repeated `repeats` times with the median run kept, then derives
//! the download-time-ratio samples (Figs. 3/5/8/9) and the experimental
//! aggregation benefit samples (Figs. 4/6/7/10).

use mpquic_expdesign::table1::{design_scenarios, Scenario, StartMode};
use mpquic_expdesign::ExperimentClass;
use mpquic_netsim::PathSpec;
use mpquic_util::stats::Cdf;
use std::time::Duration;

use crate::metrics::aggregation_benefit;
use crate::protocol::{Overrides, Protocol};
use crate::runner::{run_file_transfer_median, TransferOutcome};

/// Sweep configuration for one experiment class.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The experiment class (Table 1 ranges + loss toggle).
    pub class: ExperimentClass,
    /// Response size in bytes (20 MB for §4.1, 256 kB for §4.2).
    pub response_size: usize,
    /// Number of WSP scenarios (the paper: 253).
    pub scenario_count: usize,
    /// Repetitions per simulation, median kept (the paper: 3).
    pub repeats: usize,
    /// Simulated-time cap per transfer.
    pub time_cap: Duration,
    /// Worker threads for the sweep.
    pub threads: usize,
    /// Configuration deviations (ablations).
    pub overrides: Overrides,
}

impl SweepConfig {
    /// The paper's full-scale configuration for a class (20 MB).
    pub fn paper(class: ExperimentClass) -> SweepConfig {
        SweepConfig {
            class,
            response_size: 20 << 20,
            scenario_count: mpquic_expdesign::SCENARIOS_PER_CLASS,
            repeats: 3,
            time_cap: Duration::from_secs(300),
            threads: default_threads(),
            overrides: Overrides::default(),
        }
    }

    /// A scaled-down configuration with identical structure, for tests
    /// and Criterion benches.
    pub fn scaled(class: ExperimentClass, scenarios: usize, response_size: usize) -> SweepConfig {
        SweepConfig {
            class,
            response_size,
            scenario_count: scenarios,
            repeats: if class.with_losses() { 3 } else { 1 },
            time_cap: Duration::from_secs(120),
            threads: default_threads(),
            overrides: Overrides::default(),
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// All measurements for one scenario.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScenarioOutcome {
    /// The scenario definition (best-first ordering).
    pub scenario: Scenario,
    /// Single-path outcomes `[path][protocol]` with path 0 = best path,
    /// protocol 0 = QUIC, 1 = TCP.
    pub singles: [[TransferOutcome; 2]; 2],
    /// Multipath outcomes `[start][protocol]` with start 0 = best-first,
    /// 1 = worst-first; protocol 0 = MPQUIC, 1 = MPTCP.
    pub multis: [[TransferOutcome; 2]; 2],
}

/// Aggregated samples for one class — everything Figs. 3–10 plot.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ClassResults {
    /// The class.
    pub class: ExperimentClass,
    /// TCP/QUIC download-time ratios (one per simulation: scenario ×
    /// start mode, single-path runs on the initial path).
    pub ratio_tcp_quic: Vec<f64>,
    /// MPTCP/MPQUIC download-time ratios.
    pub ratio_mptcp_mpquic: Vec<f64>,
    /// Aggregation benefit of MPQUIC vs QUIC, `[best-first, worst-first]`.
    pub eben_mpquic: [Vec<f64>; 2],
    /// Aggregation benefit of MPTCP vs TCP, `[best-first, worst-first]`.
    pub eben_mptcp: [Vec<f64>; 2],
    /// Raw per-scenario outcomes (for deeper analysis).
    pub outcomes: Vec<ScenarioOutcome>,
}

impl ClassResults {
    /// Serializes the full result set (ratios, benefits, per-scenario
    /// outcomes) as JSON for external analysis/plotting.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("results serialize")
    }

    /// CDF of the TCP/QUIC ratio (Fig. 3/5/8/9, left series).
    pub fn cdf_tcp_quic(&self) -> Cdf {
        Cdf::from_samples(&self.ratio_tcp_quic)
    }

    /// CDF of the MPTCP/MPQUIC ratio (right series).
    pub fn cdf_mptcp_mpquic(&self) -> Cdf {
        Cdf::from_samples(&self.ratio_mptcp_mpquic)
    }

    /// Fraction of simulations where MPQUIC beat MPTCP (ratio > 1) — the
    /// paper's Fig. 3 headline is 89 %.
    pub fn mpquic_win_fraction(&self) -> f64 {
        self.cdf_mptcp_mpquic().fraction_above(1.0)
    }

    /// Fraction of scenarios (both start modes pooled) where multipath
    /// was beneficial (EBen > 0) for the given protocol family — the
    /// paper's Fig. 4 headline: 77 % for MPQUIC vs 45 % for MPTCP; Fig. 7:
    /// 58 % vs 20 %.
    pub fn beneficial_fraction(&self, quic_family: bool) -> f64 {
        let sets = if quic_family {
            &self.eben_mpquic
        } else {
            &self.eben_mptcp
        };
        let all: Vec<f64> = sets.iter().flatten().copied().collect();
        if all.is_empty() {
            return 0.0;
        }
        all.iter().filter(|&&v| v > 0.05).count() as f64 / all.len() as f64
    }
}

/// Runs the measurements for one scenario.
pub fn run_scenario(
    scenario: &Scenario,
    response_size: usize,
    repeats: usize,
    time_cap: Duration,
    overrides: &Overrides,
) -> ScenarioOutcome {
    debug_assert_eq!(scenario.start, StartMode::BestFirst);
    let ordered = scenario.path_specs(); // [best, worst]
    let run = |specs: &[PathSpec], protocol: Protocol, salt: u64| {
        run_file_transfer_median(
            specs,
            protocol,
            response_size,
            scenario.seed().wrapping_mul(101).wrapping_add(salt),
            repeats,
            time_cap,
            overrides,
        )
    };
    // Single-path baselines on each path.
    let singles = [
        [
            run(&ordered[..1], Protocol::Quic, 1),
            run(&ordered[..1], Protocol::Tcp, 2),
        ],
        [
            run(&ordered[1..], Protocol::Quic, 3),
            run(&ordered[1..], Protocol::Tcp, 4),
        ],
    ];
    // Multipath runs, both start orders.
    let best_first = ordered;
    let worst_first = [ordered[1], ordered[0]];
    let multis = [
        [
            run(&best_first, Protocol::Mpquic, 5),
            run(&best_first, Protocol::Mptcp, 6),
        ],
        [
            run(&worst_first, Protocol::Mpquic, 7),
            run(&worst_first, Protocol::Mptcp, 8),
        ],
    ];
    ScenarioOutcome {
        scenario: scenario.clone(),
        singles,
        multis,
    }
}

/// Runs the full sweep for a class, parallelized over scenarios.
pub fn run_class_sweep(config: &SweepConfig) -> ClassResults {
    let scenarios = design_scenarios(config.class, config.scenario_count);
    let outcomes = parallel_map(&scenarios, config.threads, |scenario| {
        run_scenario(
            scenario,
            config.response_size,
            config.repeats,
            config.time_cap,
            &config.overrides,
        )
    });
    reduce_outcomes(config.class, outcomes)
}

/// Folds per-scenario outcomes into the figure-level sample sets.
pub fn reduce_outcomes(class: ExperimentClass, outcomes: Vec<ScenarioOutcome>) -> ClassResults {
    let mut results = ClassResults {
        class,
        ratio_tcp_quic: Vec::new(),
        ratio_mptcp_mpquic: Vec::new(),
        eben_mpquic: [Vec::new(), Vec::new()],
        eben_mptcp: [Vec::new(), Vec::new()],
        outcomes: Vec::new(),
    };
    for outcome in &outcomes {
        let quic_goodputs = [outcome.singles[0][0].goodput, outcome.singles[1][0].goodput];
        let tcp_goodputs = [outcome.singles[0][1].goodput, outcome.singles[1][1].goodput];
        for (start_idx, _start) in StartMode::BOTH.iter().enumerate() {
            // Initial path: best for start 0, worst for start 1.
            let initial = start_idx;
            let quic = &outcome.singles[initial][0];
            let tcp = &outcome.singles[initial][1];
            results
                .ratio_tcp_quic
                .push(tcp.duration_secs / quic.duration_secs);
            let mpquic = &outcome.multis[start_idx][0];
            let mptcp = &outcome.multis[start_idx][1];
            results
                .ratio_mptcp_mpquic
                .push(mptcp.duration_secs / mpquic.duration_secs);
            results.eben_mpquic[start_idx]
                .push(aggregation_benefit(mpquic.goodput, &quic_goodputs));
            results.eben_mptcp[start_idx].push(aggregation_benefit(mptcp.goodput, &tcp_goodputs));
        }
    }
    results.outcomes = outcomes;
    results
}

/// Simple ordered parallel map over a slice.
fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("all filled"))
        .collect()
}
