//! The four evaluated protocols and their endpoint construction.

use mpquic_core::{CcAlgorithm, Config as QuicConfig, Connection, SchedulerKind};
use mpquic_netsim::{Datagram, Endpoint as NetEndpoint, NetworkPlan};
use mpquic_tcp::{TcpConfig, TcpStack};
use mpquic_util::SimTime;
use std::net::SocketAddr;

use crate::app::App;
use crate::transport::{AnyTransport, QuicTransport, TcpTransport, Transport};

/// The protocols compared by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Single-path TCP with TLS 1.2 and CUBIC.
    Tcp,
    /// Multipath TCP (Linux v0.91 semantics) with OLIA.
    Mptcp,
    /// Single-path QUIC (gQUIC crypto, CUBIC).
    Quic,
    /// Multipath QUIC — the paper's contribution (OLIA, lowest-RTT
    /// scheduler with duplication).
    Mpquic,
}

impl Protocol {
    /// All four, in the paper's enumeration order.
    pub const ALL: [Protocol; 4] = [
        Protocol::Tcp,
        Protocol::Mptcp,
        Protocol::Quic,
        Protocol::Mpquic,
    ];

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Tcp => "TCP",
            Protocol::Mptcp => "MPTCP",
            Protocol::Quic => "QUIC",
            Protocol::Mpquic => "MPQUIC",
        }
    }

    /// True for the multipath variants.
    pub fn is_multipath(self) -> bool {
        matches!(self, Protocol::Mptcp | Protocol::Mpquic)
    }

    /// True for the QUIC family.
    pub fn is_quic(self) -> bool {
        matches!(self, Protocol::Quic | Protocol::Mpquic)
    }
}

/// Optional deviations from the paper's default configuration, used by
/// the ablation benches (DESIGN.md §6).
#[derive(Debug, Clone, Default)]
pub struct Overrides {
    /// Replace the MPQUIC packet scheduler.
    pub scheduler: Option<SchedulerKind>,
    /// Collapse every path onto one shared packet-number space (the
    /// single-PN-space ablation: per-path spaces are the paper's
    /// design, §3.1).
    pub shared_pn_space: Option<bool>,
    /// Toggle WINDOW_UPDATE duplication on all paths.
    pub duplicate_window_updates: Option<bool>,
    /// Toggle the PATHS frame on RTO.
    pub send_paths_frames: Option<bool>,
    /// Replace the congestion controller.
    pub cc: Option<CcAlgorithm>,
    /// Toggle MPTCP's penalization + opportunistic retransmission.
    pub orp: Option<bool>,
    /// Shrink QUIC's receive windows (stress flow-control mechanisms).
    pub quic_recv_window: Option<u64>,
    /// Cap the ACK ranges QUIC reports (3 emulates TCP-SACK acking).
    pub quic_ack_ranges: Option<usize>,
    /// Shrink (MP)TCP's shared meta receive window (stress the coupled
    /// window / ORP machinery).
    pub tcp_recv_window: Option<u64>,
}

/// A protocol endpoint: transport + application, driven by the simulator.
pub struct ProtoEndpoint {
    /// The transport stack.
    pub transport: AnyTransport,
    /// The application.
    pub app: App,
}

impl ProtoEndpoint {
    fn drive_app(&mut self, now: SimTime) {
        self.app.drive(&mut self.transport, now);
    }
}

impl NetEndpoint for ProtoEndpoint {
    fn on_datagram(&mut self, now: SimTime, local: SocketAddr, remote: SocketAddr, payload: &[u8]) {
        self.transport.handle_datagram(now, local, remote, payload);
        self.drive_app(now);
    }

    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        self.drive_app(now);
        self.transport.poll_transmit(now)
    }

    fn next_timeout(&self) -> Option<SimTime> {
        match (self.transport.next_timeout(), self.app.next_timeout()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.transport.on_timeout(now);
        self.drive_app(now);
    }
}

fn quic_config(multipath: bool, overrides: &Overrides) -> QuicConfig {
    let mut builder = if multipath {
        QuicConfig::builder().multipath()
    } else {
        QuicConfig::builder().single_path()
    };
    if let Some(s) = overrides.scheduler {
        builder = builder.scheduler(s);
    }
    if let Some(shared) = overrides.shared_pn_space {
        builder = builder.shared_pn_space(shared);
    }
    if let Some(d) = overrides.duplicate_window_updates {
        builder = builder.duplicate_window_updates(d);
    }
    if let Some(p) = overrides.send_paths_frames {
        builder = builder.send_paths_frames(p);
    }
    if let Some(cc) = overrides.cc {
        builder = builder.cc(cc);
    }
    if let Some(w) = overrides.quic_recv_window {
        builder = builder.recv_windows(w);
    }
    if let Some(r) = overrides.quic_ack_ranges {
        builder = builder.max_ack_ranges(r);
    }
    builder
        .build()
        .expect("experiment overrides form a valid configuration")
}

fn tcp_config(multipath: bool, overrides: &Overrides) -> TcpConfig {
    let mut config = if multipath {
        TcpConfig::multipath()
    } else {
        TcpConfig::single_path()
    };
    if let Some(cc) = overrides.cc {
        config.cc = cc;
    }
    if let Some(orp) = overrides.orp {
        config.orp = orp;
    }
    if let Some(w) = overrides.tcp_recv_window {
        config.recv_window = w;
    }
    config
}

/// Builds the client and server endpoints for `protocol` over `plan`.
///
/// The plan's path 0 is the initial path (the scenario's start-mode
/// ordering is applied before the plan is built). Single-path protocols
/// must be given a single-path plan.
pub fn build_pair(
    protocol: Protocol,
    plan: &NetworkPlan,
    seed: u64,
    client_app: App,
    server_app: App,
    overrides: &Overrides,
) -> (ProtoEndpoint, ProtoEndpoint) {
    if !protocol.is_multipath() {
        assert_eq!(
            plan.path_count(),
            1,
            "single-path protocols take a single-path plan"
        );
    }
    let (client_t, server_t) = match protocol {
        Protocol::Quic | Protocol::Mpquic => {
            let config = quic_config(protocol.is_multipath(), overrides);
            let client = Connection::client(
                config.clone(),
                plan.client_addrs.clone(),
                0,
                plan.server_addrs[0],
                seed.wrapping_mul(2) + 1,
            );
            let server =
                Connection::server(config, plan.server_addrs.clone(), seed.wrapping_mul(2) + 2);
            (
                AnyTransport::Quic(QuicTransport::client(client)),
                AnyTransport::Quic(QuicTransport::server(server)),
            )
        }
        Protocol::Tcp | Protocol::Mptcp => {
            let config = tcp_config(protocol.is_multipath(), overrides);
            let client = TcpStack::client(
                config.clone(),
                plan.client_addrs.clone(),
                0,
                plan.server_addrs[0],
            );
            let server = TcpStack::server(config, plan.server_addrs.clone());
            (
                AnyTransport::Tcp(TcpTransport::new(client)),
                AnyTransport::Tcp(TcpTransport::new(server)),
            )
        }
    };
    (
        ProtoEndpoint {
            transport: client_t,
            app: client_app,
        },
        ProtoEndpoint {
            transport: server_t,
            app: server_app,
        },
    )
}
