//! Single-simulation runners: one file transfer or one handover session
//! over the network simulator.

use mpquic_netsim::{LinkChange, NetworkPlan, PathSpec, Simulation};
use mpquic_telemetry::{MetricsHandle, MetricsSnapshot, MetricsSubscriber};
use mpquic_util::{stats::median_run_index, SimTime};
use std::time::Duration;

use crate::app::App;
use crate::protocol::{build_pair, Overrides, ProtoEndpoint, Protocol};

/// Request size for the file-download workload (a GET line).
pub const REQUEST_SIZE: usize = 100;

/// Outcome of one file transfer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransferOutcome {
    /// Did the full response arrive within the time cap?
    pub completed: bool,
    /// Download time in seconds — measured when completed; extrapolated
    /// from the achieved goodput otherwise (see below).
    pub duration_secs: f64,
    /// Achieved goodput, bytes/sec (over the cap window if incomplete).
    pub goodput: f64,
    /// Response bytes received.
    pub bytes_received: u64,
}

/// Duration assigned to a transfer that moved no data at all.
const FAILED_DURATION_SECS: f64 = 1e6;

/// Installs a telemetry metrics registry on the endpoint's connection
/// when it is QUIC-family; TCP endpoints have no subscriber hook.
fn attach_metrics(endpoint: &mut ProtoEndpoint) -> Option<MetricsHandle> {
    let conn = endpoint.transport.quic_mut()?;
    let (subscriber, handle) = MetricsSubscriber::new();
    conn.set_subscriber(Box::new(subscriber));
    Some(handle)
}

/// Runs one file transfer of `response_size` bytes over `specs`
/// (path 0 = initial path), capped at `time_cap` of simulated time.
///
/// If the cap is hit, the download time is extrapolated as
/// `response_size / achieved_goodput` — the goodput of long transfers is
/// stable well before the cap, so the ratio/benefit metrics keep their
/// meaning without simulating multi-hour 0.1 Mbps downloads.
pub fn run_file_transfer(
    specs: &[PathSpec],
    protocol: Protocol,
    response_size: usize,
    seed: u64,
    time_cap: Duration,
    overrides: &Overrides,
) -> TransferOutcome {
    run_file_transfer_instrumented(specs, protocol, response_size, seed, time_cap, overrides).0
}

/// [`run_file_transfer`] plus the client's per-path telemetry snapshot
/// (srtt, cwnd, loss, scheduler share, ...) — `None` for the TCP family,
/// which has no subscriber hook.
pub fn run_file_transfer_instrumented(
    specs: &[PathSpec],
    protocol: Protocol,
    response_size: usize,
    seed: u64,
    time_cap: Duration,
    overrides: &Overrides,
) -> (TransferOutcome, Option<MetricsSnapshot>) {
    let plan = NetworkPlan::two_host(specs);
    let (mut client, server) = build_pair(
        protocol,
        &plan,
        seed,
        App::file_client(REQUEST_SIZE),
        App::file_server(REQUEST_SIZE, response_size),
        overrides,
    );
    let metrics = attach_metrics(&mut client);
    let mut sim = Simulation::new(client, server, plan, seed);
    let deadline = SimTime::ZERO + time_cap;
    sim.run_until(deadline, |client, _, _| client.app.done_at().is_some());
    let done_at = sim.a.app.done_at();
    let bytes = sim.a.app.bytes_received();
    let outcome = match done_at {
        Some(at) => {
            let secs = at.as_secs_f64().max(1e-9);
            TransferOutcome {
                completed: true,
                duration_secs: secs,
                goodput: response_size as f64 / secs,
                bytes_received: bytes,
            }
        }
        None => {
            let elapsed = sim.now().as_secs_f64().max(1e-9);
            let goodput = bytes as f64 / elapsed;
            let duration = if goodput > 0.0 {
                response_size as f64 / goodput
            } else {
                FAILED_DURATION_SECS
            };
            TransferOutcome {
                completed: false,
                duration_secs: duration,
                goodput,
                bytes_received: bytes,
            }
        }
    };
    (outcome, metrics.map(|handle| handle.snapshot()))
}

/// Runs `repeats` transfers with distinct seeds and returns the
/// median-duration run (the paper: "Each simulation is repeated 3 times
/// for each protocol ... and we analyze the median run").
pub fn run_file_transfer_median(
    specs: &[PathSpec],
    protocol: Protocol,
    response_size: usize,
    base_seed: u64,
    repeats: usize,
    time_cap: Duration,
    overrides: &Overrides,
) -> TransferOutcome {
    assert!(repeats >= 1);
    let runs: Vec<TransferOutcome> = (0..repeats)
        .map(|r| {
            run_file_transfer(
                specs,
                protocol,
                response_size,
                base_seed.wrapping_mul(1_000_003).wrapping_add(r as u64),
                time_cap,
                overrides,
            )
        })
        .collect();
    let durations: Vec<f64> = runs.iter().map(|r| r.duration_secs).collect();
    let idx = median_run_index(&durations).expect("repeats >= 1");
    runs[idx]
}

/// Configuration of the §4.3 handover experiment.
#[derive(Debug, Clone)]
pub struct HandoverConfig {
    /// Protocol under test (the paper shows MPQUIC).
    pub protocol: Protocol,
    /// Initial-path RTT (paper: 15 ms).
    pub initial_rtt: Duration,
    /// Second-path RTT (paper: 25 ms).
    pub second_rtt: Duration,
    /// Path capacities, Mbps.
    pub capacity_mbps: f64,
    /// Request interval (paper: 400 ms).
    pub interval: Duration,
    /// Number of requests (paper's Fig. 11 spans ~15 s → 37 requests).
    pub count: usize,
    /// When the initial path becomes fully lossy (paper: 3 s).
    pub fail_at: SimTime,
    /// Configuration deviations for ablations.
    pub overrides: Overrides,
}

impl Default for HandoverConfig {
    fn default() -> Self {
        HandoverConfig {
            protocol: Protocol::Mpquic,
            initial_rtt: Duration::from_millis(15),
            second_rtt: Duration::from_millis(25),
            capacity_mbps: 10.0,
            interval: Duration::from_millis(400),
            count: 37,
            fail_at: SimTime::from_secs(3),
            overrides: Overrides::default(),
        }
    }
}

/// Runs the handover experiment; returns `(request send time [s],
/// response delay [ms])` per answered request — the Fig. 11 series.
pub fn run_handover(config: &HandoverConfig, seed: u64) -> Vec<(f64, f64)> {
    run_handover_instrumented(config, seed).0
}

/// [`run_handover`] plus the client's per-path telemetry snapshot —
/// shows the RTO, handover and per-path scheduler-share evidence behind
/// the delay series. `None` for the TCP family.
pub fn run_handover_instrumented(
    config: &HandoverConfig,
    seed: u64,
) -> (Vec<(f64, f64)>, Option<MetricsSnapshot>) {
    let specs = [
        PathSpec {
            capacity_mbps: config.capacity_mbps,
            rtt: config.initial_rtt,
            max_queue_delay: Duration::from_millis(100),
            loss_percent: 0.0,
        },
        PathSpec {
            capacity_mbps: config.capacity_mbps,
            rtt: config.second_rtt,
            max_queue_delay: Duration::from_millis(100),
            loss_percent: 0.0,
        },
    ];
    let plan = NetworkPlan::two_host(&specs);
    let (mut client, server) = build_pair(
        config.protocol,
        &plan,
        seed,
        App::ping_client(config.interval, config.count),
        App::ping_server(),
        &config.overrides,
    );
    let metrics = attach_metrics(&mut client);
    let mut sim = Simulation::new(client, server, plan, seed);
    sim.schedule_change(LinkChange {
        at: config.fail_at,
        path_index: 0,
        loss: Some(1.0),
        one_way_delay: None,
    });
    let deadline = SimTime::ZERO + config.interval * config.count as u32 + Duration::from_secs(10);
    let target = config.count;
    sim.run_until(deadline, |client, _, _| client.app.delays().len() >= target);
    let delays = sim
        .a
        .app
        .delays()
        .iter()
        .map(|(sent, delay)| (sent.as_secs_f64(), delay.as_secs_f64() * 1e3))
        .collect();
    (delays, metrics.map(|handle| handle.snapshot()))
}
