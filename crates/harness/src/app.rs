//! The applications the paper's experiments run.
//!
//! * [`App::FileClient`] / [`App::FileServer`] — the §4.1/§4.2 workload:
//!   the client sends a GET-like request; the server answers with an
//!   `N`-byte file on the same stream; the client measures "the delay
//!   between the transmission of the first connection packet and the
//!   reception of the last byte of the file".
//! * [`App::PingClient`] / [`App::PingServer`] — the §4.3 handover
//!   workload: 750-byte requests every 400 ms, each answered immediately
//!   with a 750-byte response; the client records the per-request delay
//!   (the y-axis of Fig. 11).

use bytes::Bytes;
use mpquic_util::SimTime;
use std::time::Duration;

use crate::transport::Transport;

/// The request/response sizes of the handover experiment (paper §4.3).
pub const PING_SIZE: usize = 750;

/// An application state machine driven alongside a [`Transport`].
#[derive(Debug)]
pub enum App {
    /// Requests a file and reads it fully.
    FileClient {
        /// Bytes of request to send at startup.
        request_size: usize,
        /// Request handed to the transport yet?
        sent: bool,
        /// Response bytes received so far.
        received: u64,
        /// Completion time (end-of-stream fully read).
        done_at: Option<SimTime>,
    },
    /// Serves a file once the request is fully received.
    FileServer {
        /// Bytes of request to expect.
        request_size: usize,
        /// Bytes of response to send.
        response_size: usize,
        /// Request bytes received so far.
        received: usize,
        /// Response handed to the transport yet?
        responded: bool,
    },
    /// Sends fixed-size requests on a timer and measures response delays.
    PingClient {
        /// Time between requests.
        interval: Duration,
        /// Total requests to send.
        count: usize,
        /// Next send time.
        next_at: SimTime,
        /// Send time of each request, in order.
        sent_times: Vec<SimTime>,
        /// Response bytes received so far.
        received: u64,
        /// `(request send time, response delay)` per completed request.
        delays: Vec<(SimTime, Duration)>,
    },
    /// Echoes [`PING_SIZE`]-byte responses to each complete request.
    PingServer {
        /// Request bytes received so far.
        received: u64,
        /// Responses sent so far.
        responded: u64,
    },
}

impl App {
    /// A file-download client (request sent immediately at startup —
    /// with QUIC it rides right behind the handshake).
    pub fn file_client(request_size: usize) -> App {
        App::FileClient {
            request_size,
            sent: false,
            received: 0,
            done_at: None,
        }
    }

    /// A file server.
    pub fn file_server(request_size: usize, response_size: usize) -> App {
        App::FileServer {
            request_size,
            response_size,
            received: 0,
            responded: false,
        }
    }

    /// The handover client: `count` requests, one every `interval`.
    pub fn ping_client(interval: Duration, count: usize) -> App {
        App::PingClient {
            interval,
            count,
            next_at: SimTime::ZERO,
            sent_times: Vec::new(),
            received: 0,
            delays: Vec::new(),
        }
    }

    /// The handover server.
    pub fn ping_server() -> App {
        App::PingServer {
            received: 0,
            responded: 0,
        }
    }

    /// Runs the application against its transport.
    pub fn drive<T: Transport>(&mut self, transport: &mut T, now: SimTime) {
        match self {
            App::FileClient {
                request_size,
                sent,
                received,
                done_at,
            } => {
                if !*sent {
                    *sent = true;
                    transport.write(Bytes::from(vec![b'G'; *request_size]));
                    transport.finish();
                }
                while let Some(chunk) = transport.read_chunk() {
                    *received += chunk.len() as u64;
                }
                if done_at.is_none() && transport.recv_finished() {
                    *done_at = Some(now);
                }
            }
            App::FileServer {
                request_size,
                response_size,
                received,
                responded,
            } => {
                while let Some(chunk) = transport.read_chunk() {
                    *received += chunk.len();
                }
                if !*responded && *received >= *request_size {
                    *responded = true;
                    transport.write(Bytes::from(vec![0xF1u8; *response_size]));
                    transport.finish();
                }
            }
            App::PingClient {
                interval,
                count,
                next_at,
                sent_times,
                received,
                delays,
            } => {
                while sent_times.len() < *count && *next_at <= now {
                    transport.write(Bytes::from(vec![b'P'; PING_SIZE]));
                    sent_times.push(now);
                    *next_at += *interval;
                }
                while let Some(chunk) = transport.read_chunk() {
                    *received += chunk.len() as u64;
                }
                while delays.len() < sent_times.len()
                    && *received >= ((delays.len() + 1) * PING_SIZE) as u64
                {
                    let k = delays.len();
                    let delay = now.saturating_duration_since(sent_times[k]);
                    delays.push((sent_times[k], delay));
                }
            }
            App::PingServer {
                received,
                responded,
            } => {
                while let Some(chunk) = transport.read_chunk() {
                    *received += chunk.len() as u64;
                }
                while *received >= (*responded + 1) * PING_SIZE as u64 {
                    transport.write(Bytes::from(vec![b'R'; PING_SIZE]));
                    *responded += 1;
                }
            }
        }
    }

    /// Earliest application timer (the ping client's next request).
    pub fn next_timeout(&self) -> Option<SimTime> {
        match self {
            App::PingClient {
                next_at,
                sent_times,
                count,
                ..
            } if sent_times.len() < *count => Some(*next_at),
            _ => None,
        }
    }

    /// File-client completion time.
    pub fn done_at(&self) -> Option<SimTime> {
        match self {
            App::FileClient { done_at, .. } => *done_at,
            _ => None,
        }
    }

    /// File-client bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        match self {
            App::FileClient { received, .. } => *received,
            App::PingClient { received, .. } => *received,
            _ => 0,
        }
    }

    /// The ping client's measured `(send time, delay)` series.
    pub fn delays(&self) -> &[(SimTime, Duration)] {
        match self {
            App::PingClient { delays, .. } => delays,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpquic_netsim::Datagram;
    use std::collections::VecDeque;
    use std::net::SocketAddr;

    /// A loopback transport: writes become readable after `deliver()`.
    #[derive(Default)]
    struct MockTransport {
        written: Vec<u8>,
        finished: bool,
        incoming: VecDeque<Bytes>,
        incoming_finished: bool,
    }

    impl MockTransport {
        fn deliver(&mut self, data: &[u8], fin: bool) {
            self.incoming.push_back(Bytes::copy_from_slice(data));
            self.incoming_finished |= fin;
        }
    }

    impl Transport for MockTransport {
        fn write(&mut self, data: Bytes) {
            self.written.extend_from_slice(&data);
        }
        fn finish(&mut self) {
            self.finished = true;
        }
        fn read_chunk(&mut self) -> Option<Bytes> {
            self.incoming.pop_front()
        }
        fn recv_finished(&self) -> bool {
            self.incoming.is_empty() && self.incoming_finished
        }
        fn is_established(&self) -> bool {
            true
        }
        fn handle_datagram(&mut self, _: SimTime, _: SocketAddr, _: SocketAddr, _: &[u8]) {}
        fn poll_transmit(&mut self, _: SimTime) -> Option<Datagram> {
            None
        }
        fn next_timeout(&self) -> Option<SimTime> {
            None
        }
        fn on_timeout(&mut self, _: SimTime) {}
    }

    #[test]
    fn file_client_sends_request_once_and_records_completion() {
        let mut t = MockTransport::default();
        let mut app = App::file_client(50);
        app.drive(&mut t, SimTime::ZERO);
        app.drive(&mut t, SimTime::from_millis(1));
        assert_eq!(t.written.len(), 50, "request sent exactly once");
        assert!(t.finished);
        t.deliver(&[1u8; 1000], false);
        app.drive(&mut t, SimTime::from_millis(10));
        assert_eq!(app.bytes_received(), 1000);
        assert!(app.done_at().is_none());
        t.deliver(&[2u8; 500], true);
        app.drive(&mut t, SimTime::from_millis(20));
        assert_eq!(app.done_at(), Some(SimTime::from_millis(20)));
        // Completion time latches.
        app.drive(&mut t, SimTime::from_millis(99));
        assert_eq!(app.done_at(), Some(SimTime::from_millis(20)));
    }

    #[test]
    fn file_server_waits_for_full_request() {
        let mut t = MockTransport::default();
        let mut app = App::file_server(100, 5000);
        t.deliver(&[0u8; 60], false);
        app.drive(&mut t, SimTime::ZERO);
        assert!(t.written.is_empty(), "request incomplete");
        t.deliver(&[0u8; 40], false);
        app.drive(&mut t, SimTime::from_millis(5));
        assert_eq!(t.written.len(), 5000);
        assert!(t.finished);
        // No double response.
        t.deliver(&[0u8; 10], false);
        app.drive(&mut t, SimTime::from_millis(6));
        assert_eq!(t.written.len(), 5000);
    }

    #[test]
    fn ping_client_paces_requests_and_measures_delays() {
        let mut t = MockTransport::default();
        let mut app = App::ping_client(Duration::from_millis(400), 3);
        assert_eq!(app.next_timeout(), Some(SimTime::ZERO));
        app.drive(&mut t, SimTime::ZERO);
        assert_eq!(t.written.len(), PING_SIZE, "first request at t=0");
        assert_eq!(app.next_timeout(), Some(SimTime::from_millis(400)));
        // Response to request 0 arrives at t=30.
        t.deliver(&[0u8; PING_SIZE], false);
        app.drive(&mut t, SimTime::from_millis(30));
        assert_eq!(app.delays().len(), 1);
        assert_eq!(app.delays()[0], (SimTime::ZERO, Duration::from_millis(30)));
        // Second and third requests.
        app.drive(&mut t, SimTime::from_millis(400));
        app.drive(&mut t, SimTime::from_millis(800));
        assert_eq!(t.written.len(), 3 * PING_SIZE);
        assert_eq!(app.next_timeout(), None, "all requests sent");
        // A combined (coalesced) double response.
        t.deliver(&vec![0u8; 2 * PING_SIZE], false);
        app.drive(&mut t, SimTime::from_millis(840));
        assert_eq!(app.delays().len(), 3);
        assert_eq!(app.delays()[2].1, Duration::from_millis(40));
    }

    #[test]
    fn ping_server_echoes_per_complete_request() {
        let mut t = MockTransport::default();
        let mut app = App::ping_server();
        t.deliver(&[0u8; PING_SIZE / 2], false);
        app.drive(&mut t, SimTime::ZERO);
        assert!(t.written.is_empty(), "half a request: no response");
        t.deliver(&[0u8; PING_SIZE / 2 + PING_SIZE], false);
        app.drive(&mut t, SimTime::from_millis(1));
        assert_eq!(
            t.written.len(),
            2 * PING_SIZE,
            "two complete requests echoed"
        );
    }
}
