//! The periodic stats reporter: one human-readable summary line per
//! path, every N seconds of connection time.
//!
//! This is `mpquic-io`'s `--stats-interval SECS` backend — a live view
//! of what the paper's figures show after the fact: how the lowest-RTT
//! scheduler is splitting traffic, what each path's RTT and congestion
//! window look like, and whether loss is concentrating on one path.

use crate::event::Event;
use crate::metrics::{MetricsRegistry, PathSummary};
use crate::subscriber::Subscriber;
use mpquic_util::SimTime;
use std::io::Write;
use std::time::Duration;

/// Prints a per-path summary line to a sink every `interval` of event
/// time. Feeds an internal [`MetricsRegistry`], so the printed numbers
/// are exactly the registry's snapshot at the tick.
#[derive(Debug)]
pub struct StatsReporter<W: Write + Send> {
    registry: MetricsRegistry,
    interval: Duration,
    next_at: Option<SimTime>,
    out: W,
}

impl<W: Write + Send> StatsReporter<W> {
    /// Reports to `out` every `interval` of connection time. Intervals
    /// shorter than a millisecond are raised to it.
    pub fn new(interval: Duration, out: W) -> StatsReporter<W> {
        StatsReporter {
            registry: MetricsRegistry::default(),
            interval: interval.max(Duration::from_millis(1)),
            next_at: None,
            out,
        }
    }

    /// The accumulated registry (same counters the report lines print).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn report(&mut self, now: SimTime) {
        let snapshot = self.registry.snapshot();
        for path in &snapshot.paths {
            let _ = writeln!(self.out, "{}", format_path_line(now, path));
        }
    }
}

/// Formats one path's summary: the exact quantities the issue calls out
/// (srtt, cwnd, bytes, loss%, scheduler share).
pub fn format_path_line(now: SimTime, p: &PathSummary) -> String {
    format!(
        "[stats t={:>7.2}s] path {}: srtt {:>7.1}ms cwnd {:>7} in-flight {:>7} \
         sent {:>10}B ({} pkts) loss {:>5.2}% share {:>5.1}%",
        now.as_secs_f64(),
        p.path.0,
        p.srtt_us as f64 / 1000.0,
        p.cwnd,
        p.bytes_in_flight,
        p.bytes_sent,
        p.packets_sent,
        p.loss_percent,
        100.0 * p.sched_share,
    )
}

impl<W: Write + Send> Subscriber for StatsReporter<W> {
    fn on_event(&mut self, event: &Event) {
        self.registry.on_event(event);
        let now = event.time();
        match self.next_at {
            None => self.next_at = Some(now + self.interval),
            Some(due) if now >= due => {
                self.report(now);
                // Skip whole intervals with no events rather than
                // printing a burst of catch-up reports.
                let mut next = due;
                while next <= now && next < SimTime::FAR_FUTURE {
                    next = next.saturating_add(self.interval);
                }
                self.next_at = Some(next);
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PacketSent;
    use mpquic_wire::PathId;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sent(ms: u64, path: u32) -> Event {
        Event::PacketSent(PacketSent {
            time: SimTime::from_millis(ms),
            path: PathId(path),
            packet_number: 0,
            size: 1350,
            ack_eliciting: true,
        })
    }

    #[test]
    fn reports_once_per_interval_per_path() {
        let sink = SharedSink::default();
        let mut r = StatsReporter::new(Duration::from_secs(1), sink.clone());
        // 3.5 seconds of two-path traffic, one packet each 100 ms.
        for ms in (0..3500).step_by(100) {
            r.on_event(&sent(ms, (ms / 100 % 2) as u32));
        }
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 3 ticks (at ~1.0s, ~2.0s, ~3.0s) × 2 paths.
        assert_eq!(lines.len(), 6, "got:\n{text}");
        assert!(lines.iter().all(|l| l.starts_with("[stats t=")));
        assert!(lines.iter().any(|l| l.contains("path 0:")));
        assert!(lines.iter().any(|l| l.contains("path 1:")));
        assert!(lines.iter().all(|l| l.contains("share")));
    }

    #[test]
    fn idle_gaps_do_not_burst_reports() {
        let sink = SharedSink::default();
        let mut r = StatsReporter::new(Duration::from_secs(1), sink.clone());
        r.on_event(&sent(0, 0));
        r.on_event(&sent(10_000, 0)); // 10 s later
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "one report, not ten:\n{text}");
    }
}
