//! The streaming qlog subscriber: JSON lines, written incrementally.
//!
//! Unlike an in-memory event vector, the streaming writer's memory is
//! bounded by its buffer regardless of transfer length, and the trace
//! survives abnormal exits: every event is serialized to the sink as it
//! happens and the buffer is flushed on drop, so a crashed or timed-out
//! transfer still leaves a useful prefix on disk. Each line is one
//! self-contained JSON object (`{"name": "...", "data": {...}}`) —
//! consumable by `jq`, validated by `cargo xtask qlog-check`.

use crate::event::Event;
use crate::subscriber::Subscriber;
use std::io::{BufWriter, Write};

/// Writes each event as one JSON line to any [`Write`] sink.
///
/// Serialization and I/O errors are counted, never propagated: telemetry
/// must not take down the connection (and event emission sits on the
/// no-panic protocol path).
#[derive(Debug)]
pub struct StreamingQlog<W: Write + Send> {
    out: BufWriter<W>,
    events_written: u64,
    errors: u64,
}

impl<W: Write + Send> StreamingQlog<W> {
    /// Wraps a sink. Writes are buffered; the buffer is flushed on drop.
    pub fn new(sink: W) -> StreamingQlog<W> {
        StreamingQlog {
            out: BufWriter::new(sink),
            events_written: 0,
            errors: 0,
        }
    }

    /// Events successfully serialized and handed to the sink.
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Serialization or write errors swallowed so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Flushes buffered lines to the sink.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl StreamingQlog<std::fs::File> {
    /// Creates (truncating) a qlog file at `path`.
    pub fn create<P: AsRef<std::path::Path>>(
        path: P,
    ) -> std::io::Result<StreamingQlog<std::fs::File>> {
        Ok(StreamingQlog::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> Subscriber for StreamingQlog<W> {
    fn on_event(&mut self, event: &Event) {
        match serde_json::to_writer(&mut self.out, event) {
            Ok(()) => {
                if self.out.write_all(b"\n").is_ok() {
                    self.events_written += 1;
                } else {
                    self.errors += 1;
                }
            }
            Err(_) => self.errors += 1,
        }
    }
}

impl<W: Write + Send> Drop for StreamingQlog<W> {
    fn drop(&mut self) {
        // The whole point of the streaming writer: whatever happened to
        // the transfer, the trace written so far reaches the sink.
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Rto;
    use mpquic_util::SimTime;
    use mpquic_wire::PathId;
    use std::sync::{Arc, Mutex};

    /// A sink that distinguishes buffered bytes from flushed bytes.
    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn rto(ms: u64) -> Event {
        Event::Rto(Rto {
            time: SimTime::from_millis(ms),
            path: PathId(0),
        })
    }

    #[test]
    fn events_stream_as_json_lines() {
        let sink = SharedSink::default();
        let mut q = StreamingQlog::new(sink.clone());
        q.on_event(&rto(1));
        q.on_event(&rto(2));
        q.flush().unwrap();
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            // Adjacent tagging: {"name":"rto","data":{...}}.
            assert!(line.to_ascii_lowercase().contains("rto"), "line: {line}");
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        }
        assert_eq!(q.events_written(), 2);
        assert_eq!(q.errors(), 0);
    }

    #[test]
    fn drop_flushes_buffered_events() {
        let sink = SharedSink::default();
        {
            let mut q = StreamingQlog::new(sink.clone());
            q.on_event(&rto(1));
            // No explicit flush: simulate an abnormal exit unwinding the
            // stack. The trace must still reach the sink.
        }
        let bytes = sink.0.lock().unwrap().clone();
        assert!(!bytes.is_empty(), "drop flushed the buffered line");
        let text = String::from_utf8(bytes).unwrap().to_ascii_lowercase();
        assert!(text.contains("rto"));
    }

    #[test]
    fn write_errors_are_counted_not_propagated() {
        struct FailingSink;
        impl Write for FailingSink {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        // A tiny BufWriter capacity forces the failure to surface per event.
        let mut q = StreamingQlog {
            out: BufWriter::with_capacity(8, FailingSink),
            events_written: 0,
            errors: 0,
        };
        for ms in 0..10 {
            q.on_event(&rto(ms));
        }
        assert!(q.errors() > 0, "errors surfaced through the counter");
    }
}
