//! The typed, path-aware event vocabulary.
//!
//! Every event carries the time it happened and the path(s) it concerns,
//! because the paper's whole evaluation (§4–§5) attributes behaviour to
//! individual paths: which path the lowest-RTT scheduler picked (§3,
//! *Packet Scheduling*), when a path was declared potentially failed
//! (§4.3), how the coupled congestion controller moved each window (§3,
//! *Congestion Control*). Events serialize as qlog-style JSON objects
//! (`{"name": "...", "data": {...}}`), one per line when written through
//! [`crate::StreamingQlog`].

use mpquic_util::SimTime;
use mpquic_wire::PathId;
use serde::Serialize;

/// Liveness of a path, as reported by [`PathStateChanged`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PathState {
    /// Usable for data.
    Active,
    /// The path's remote address changed and a PATH_CHALLENGE is
    /// outstanding; no new data until validation completes.
    Validating,
    /// An RTO fired without progress; the scheduler avoids it (§4.3).
    PotentiallyFailed,
    /// Abandoned.
    Closed,
}

/// Why the scheduler picked the path it did (§3, *Packet Scheduling*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SchedulerReason {
    /// Lowest smoothed RTT among paths with congestion window space.
    LowestRtt,
    /// Every active path was full or potentially failed; this was the
    /// only remaining option (includes the potentially-failed fallback).
    OnlyAvailable,
    /// The path has no RTT sample yet, so data is sent on it eagerly and
    /// duplicated on the best known path.
    RttUnknownDuplicate,
    /// Round-robin rotation (ablation scheduler).
    RoundRobin,
    /// The packet drains the duplicate queue of the duplicate-while
    /// -RTT-unknown phase: it repeats data already sent elsewhere.
    DuplicateQueue,
    /// The redundant policy: data rides the primary pick and is
    /// duplicated onto every other usable path.
    Redundant,
    /// The BLEST/ECF-style pick: lowest estimated head-of-line cost
    /// from srtt, window headroom and bytes in flight.
    HolAware,
}

/// A packet left the connection.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PacketSent {
    /// When.
    pub time: SimTime,
    /// On which path.
    pub path: PathId,
    /// Its per-path packet number.
    pub packet_number: u64,
    /// Wire size, bytes.
    pub size: usize,
    /// Whether loss recovery tracks it.
    pub ack_eliciting: bool,
}

/// An authenticated packet was accepted.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PacketReceived {
    /// When.
    pub time: SimTime,
    /// On which path.
    pub path: PathId,
    /// Its per-path packet number.
    pub packet_number: u64,
    /// Wire size, bytes.
    pub size: usize,
}

/// An ACK frame was bundled into an outgoing packet.
///
/// With per-path packet-number spaces, the path an ACK travels on is
/// independent of the path it acknowledges (§3, cross-path ACKs) — both
/// are recorded.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AckSent {
    /// When.
    pub time: SimTime,
    /// The path the ACK frame travels on.
    pub on_path: PathId,
    /// The path whose packet-number space it acknowledges.
    pub acks_path: PathId,
    /// Largest packet number acknowledged.
    pub largest_acked: u64,
}

/// An ACK frame arrived and was processed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AckReceived {
    /// When.
    pub time: SimTime,
    /// The path the ACK frame arrived on.
    pub on_path: PathId,
    /// The path whose packet-number space it acknowledges.
    pub acks_path: PathId,
    /// Largest packet number acknowledged.
    pub largest_acked: u64,
    /// Bytes newly acknowledged by this frame.
    pub newly_acked_bytes: u64,
}

/// Loss recovery declared frames lost on a path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FramesLost {
    /// When.
    pub time: SimTime,
    /// The path the lost packets were sent on.
    pub path: PathId,
    /// Number of frames the lost packets carried.
    pub frames: usize,
    /// Bytes declared lost.
    pub bytes: u64,
}

/// A reliable frame from a lost packet was queued for retransmission.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FrameRetransmitted {
    /// When.
    pub time: SimTime,
    /// The path the frame was originally sent on. Retransmissions are
    /// rescheduled, so the frame may leave on any path.
    pub from_path: PathId,
    /// Wire frame kind (e.g. `"STREAM"`, `"WINDOW_UPDATE"`).
    pub kind: &'static str,
}

/// The scheduler picked a path for a data-bearing packet.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SchedulerDecision {
    /// When.
    pub time: SimTime,
    /// The chosen path.
    pub chosen_path: PathId,
    /// Paths that were usable with window space at decision time.
    pub candidates: Vec<PathId>,
    /// Paths the data is also duplicated onto (empty when none).
    pub duplicate_on: Vec<PathId>,
    /// Why this path won.
    pub reason: SchedulerReason,
}

/// Per-path transport metrics after an ACK updated RTT and the
/// congestion controller.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsUpdated {
    /// When.
    pub time: SimTime,
    /// The path.
    pub path: PathId,
    /// Smoothed RTT, microseconds.
    pub srtt_us: u64,
    /// RTT variance, microseconds.
    pub rttvar_us: u64,
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Bytes in flight on the path.
    pub bytes_in_flight: u64,
}

/// The congestion controller applied a multiplicative decrease.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CongestionEvent {
    /// When.
    pub time: SimTime,
    /// On which path.
    pub path: PathId,
    /// The window after the decrease.
    pub window_after: u64,
}

/// A path changed liveness state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PathStateChanged {
    /// When.
    pub time: SimTime,
    /// The path.
    pub path: PathId,
    /// Its new state.
    pub state: PathState,
}

/// A retransmission timeout fired on a path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Rto {
    /// When.
    pub time: SimTime,
    /// On which path.
    pub path: PathId,
}

/// A path failure triggered handover: traffic moves off the failed path
/// and a PATHS frame tells the peer (§4.3, handover acceleration).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Handover {
    /// When.
    pub time: SimTime,
    /// The path that failed.
    pub from_path: PathId,
    /// The best remaining usable path, if any.
    pub to_path: Option<PathId>,
}

/// A WINDOW_UPDATE was duplicated across every active path so that
/// flow-control credit survives the loss of any single path (§3, *the
/// scheduler duplicates these on all paths*).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowUpdateDuplicated {
    /// When.
    pub time: SimTime,
    /// Stream the credit applies to; 0 for the connection window.
    pub stream_id: u64,
    /// The advertised absolute limit.
    pub max_data: u64,
    /// Paths the advertisement was queued on.
    pub paths: Vec<PathId>,
}

/// A path's remote address changed (NAT rebind / migration) and a
/// PATH_CHALLENGE was queued: the path is quarantined until the peer
/// echoes the token.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PathValidationStarted {
    /// When.
    pub time: SimTime,
    /// The path being validated.
    pub path: PathId,
}

/// A PATH_RESPONSE matched the outstanding challenge: the rebound
/// address is proven reachable and the path returns to active.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PathValidated {
    /// When.
    pub time: SimTime,
    /// The validated path.
    pub path: PathId,
}

/// Path validation gave up: the challenge timed out after its bounded
/// retries and the path was abandoned.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PathValidationFailed {
    /// When.
    pub time: SimTime,
    /// The abandoned path.
    pub path: PathId,
}

/// The connection switched to a rotated connection ID (NEW/RETIRE
/// semantics after a validated migration).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CidRotated {
    /// When.
    pub time: SimTime,
    /// The connection ID being retired.
    pub old_cid: u64,
    /// The connection ID now in use.
    pub new_cid: u64,
}

/// One telemetry event. Serializes as `{"name": "...", "data": {...}}`.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(tag = "name", content = "data", rename_all = "snake_case")]
pub enum Event {
    /// See [`PacketSent`].
    PacketSent(PacketSent),
    /// See [`PacketReceived`].
    PacketReceived(PacketReceived),
    /// See [`AckSent`].
    AckSent(AckSent),
    /// See [`AckReceived`].
    AckReceived(AckReceived),
    /// See [`FramesLost`].
    FramesLost(FramesLost),
    /// See [`FrameRetransmitted`].
    FrameRetransmitted(FrameRetransmitted),
    /// See [`SchedulerDecision`].
    SchedulerDecision(SchedulerDecision),
    /// See [`MetricsUpdated`].
    MetricsUpdated(MetricsUpdated),
    /// See [`CongestionEvent`].
    CongestionEvent(CongestionEvent),
    /// See [`PathStateChanged`].
    PathStateChanged(PathStateChanged),
    /// See [`Rto`].
    Rto(Rto),
    /// See [`Handover`].
    Handover(Handover),
    /// See [`WindowUpdateDuplicated`].
    WindowUpdateDuplicated(WindowUpdateDuplicated),
    /// See [`PathValidationStarted`].
    PathValidationStarted(PathValidationStarted),
    /// See [`PathValidated`].
    PathValidated(PathValidated),
    /// See [`PathValidationFailed`].
    PathValidationFailed(PathValidationFailed),
    /// See [`CidRotated`].
    CidRotated(CidRotated),
}

impl Event {
    /// When the event happened.
    pub fn time(&self) -> SimTime {
        match self {
            Event::PacketSent(e) => e.time,
            Event::PacketReceived(e) => e.time,
            Event::AckSent(e) => e.time,
            Event::AckReceived(e) => e.time,
            Event::FramesLost(e) => e.time,
            Event::FrameRetransmitted(e) => e.time,
            Event::SchedulerDecision(e) => e.time,
            Event::MetricsUpdated(e) => e.time,
            Event::CongestionEvent(e) => e.time,
            Event::PathStateChanged(e) => e.time,
            Event::Rto(e) => e.time,
            Event::Handover(e) => e.time,
            Event::WindowUpdateDuplicated(e) => e.time,
            Event::PathValidationStarted(e) => e.time,
            Event::PathValidated(e) => e.time,
            Event::PathValidationFailed(e) => e.time,
            Event::CidRotated(e) => e.time,
        }
    }

    /// The qlog `name` this event serializes under.
    pub fn name(&self) -> &'static str {
        match self {
            Event::PacketSent(_) => "packet_sent",
            Event::PacketReceived(_) => "packet_received",
            Event::AckSent(_) => "ack_sent",
            Event::AckReceived(_) => "ack_received",
            Event::FramesLost(_) => "frames_lost",
            Event::FrameRetransmitted(_) => "frame_retransmitted",
            Event::SchedulerDecision(_) => "scheduler_decision",
            Event::MetricsUpdated(_) => "metrics_updated",
            Event::CongestionEvent(_) => "congestion_event",
            Event::PathStateChanged(_) => "path_state_changed",
            Event::Rto(_) => "rto",
            Event::Handover(_) => "handover",
            Event::WindowUpdateDuplicated(_) => "window_update_duplicated",
            Event::PathValidationStarted(_) => "path_validation_started",
            Event::PathValidated(_) => "path_validated",
            Event::PathValidationFailed(_) => "path_validation_failed",
            Event::CidRotated(_) => "cid_rotated",
        }
    }
}
