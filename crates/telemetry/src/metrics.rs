//! The metrics-registry subscriber: per-path counters, gauges and
//! log-bucketed histograms with fixed memory.
//!
//! The registry is the always-on telemetry backend the ROADMAP's
//! production goal needs: every update is O(1), the memory cost is a
//! fixed-size struct per path (no per-event allocation, no growth with
//! transfer length), and a [`MetricsSnapshot`] can be taken at any time
//! — e.g. by the periodic stats reporter, the harness report, or the
//! `mpq-*` binaries' final summary.

use crate::event::*;
use crate::subscriber::Subscriber;
use mpquic_wire::PathId;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Number of power-of-two buckets; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds zero. 2^62 ns ≈ 146 years — wide
/// enough for any latency or window value.
const BUCKETS: usize = 63;

/// A fixed-memory histogram over `u64` values with power-of-two buckets.
///
/// Recording is O(1) (a `leading_zeros` and an increment); quantiles are
/// resolved to the upper bound of the containing bucket, i.e. with at
/// most 2× relative error — plenty for "is the RTT 10 ms or 400 ms"
/// questions, at 504 bytes per histogram.
#[derive(Debug, Clone, Serialize)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Number of buckets (one per power of two, plus the zero bucket).
    /// The atomic mirror in [`crate::endpoint`] sizes itself off this so
    /// the two histogram families stay bucket-compatible.
    pub const NUM_BUCKETS: usize = BUCKETS;

    /// The bucket index holding `value`.
    pub fn bucket_index(value: u64) -> usize {
        let bits = (u64::BITS - value.leading_zeros()) as usize;
        bits.min(BUCKETS - 1)
    }

    /// The half-open value range `[lower, upper)` of bucket `index`
    /// (the last bucket is unbounded above).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 1),
            i if i >= BUCKETS - 1 => (1u64 << (BUCKETS - 2), u64::MAX),
            i => (1u64 << (i - 1), 1u64 << i),
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        if let Some(slot) = self.buckets.get_mut(Self::bucket_index(value)) {
            *slot += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Rebuilds a histogram from raw per-bucket counts — how the
    /// endpoint plane's lock-free [`crate::endpoint::AtomicHistogram`]
    /// converts its atomics into this crate's reporting type. Extra
    /// counts beyond [`LogHistogram::NUM_BUCKETS`] are ignored; `count`
    /// is derived from the buckets so the two can never disagree.
    pub fn from_bucket_counts(counts: &[u64], sum: u64, max: u64) -> LogHistogram {
        let mut h = LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum,
            max,
        };
        for (mine, theirs) in h.buckets.iter_mut().zip(counts.iter()) {
            *mine = *theirs;
            h.count += *theirs;
        }
        h
    }

    /// Raw per-bucket counts, index-aligned with
    /// [`LogHistogram::bucket_bounds`] — what a Prometheus-style
    /// cumulative exposition walks.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another histogram into this one (bucket-wise sum). Used to
    /// aggregate per-shard datapath histograms into one endpoint-wide
    /// view without losing the distribution.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the upper
    /// bound of the containing bucket (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, upper) = Self::bucket_bounds(i);
                // Never report beyond the observed maximum.
                return upper.saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Resolves several quantiles in one pass over the buckets —
    /// what an SLO report wants (p50/p99/p999 from one histogram)
    /// without re-walking the buckets per quantile. `qs` need not be
    /// sorted; results come back in the same order. Each value has the
    /// same bucket-upper-bound resolution as [`LogHistogram::quantile`].
    pub fn quantiles(&self, qs: &[f64]) -> Vec<u64> {
        let mut out = vec![0u64; qs.len()];
        if self.count == 0 {
            return out;
        }
        // (rank, position) sorted by rank, then one cumulative walk.
        let mut ranks: Vec<(u64, usize)> = qs
            .iter()
            .enumerate()
            .map(|(pos, q)| {
                let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
                (rank, pos)
            })
            .collect();
        ranks.sort_unstable();
        let mut pending = ranks.into_iter().peekable();
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            let (_, upper) = Self::bucket_bounds(i);
            let value = upper.saturating_sub(1).min(self.max);
            while let Some((_, pos)) = pending.next_if(|&(rank, _)| seen >= rank) {
                if let Some(slot) = out.get_mut(pos) {
                    *slot = value;
                }
            }
            if pending.peek().is_none() {
                break;
            }
        }
        // Ranks beyond the walk (can't happen while counts are
        // consistent, but keep the fallback total): the maximum.
        for (_, pos) in pending {
            if let Some(slot) = out.get_mut(pos) {
                *slot = self.max;
            }
        }
        out
    }
}

/// Counters, gauges and histograms for one path.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PathMetrics {
    /// Packets sent on the path.
    pub packets_sent: u64,
    /// Bytes sent on the path (wire bytes, all packets).
    pub bytes_sent: u64,
    /// Packets received on the path.
    pub packets_received: u64,
    /// Bytes received on the path.
    pub bytes_received: u64,
    /// ACK frames sent that travelled on this path.
    pub acks_sent: u64,
    /// ACK frames received that acknowledged this path's packets.
    pub acks_received: u64,
    /// Bytes newly acknowledged on this path.
    pub acked_bytes: u64,
    /// Frames declared lost from packets sent on this path.
    pub frames_lost: u64,
    /// Bytes declared lost on this path.
    pub lost_bytes: u64,
    /// Reliable frames requeued after loss on this path.
    pub frames_retransmitted: u64,
    /// Congestion-window decreases.
    pub congestion_events: u64,
    /// Retransmission timeouts.
    pub rtos: u64,
    /// Times the scheduler chose this path for a data packet.
    pub sched_decisions: u64,
    /// Times this path was the duplication target of an unknown-RTT send.
    pub sched_duplicates: u64,
    /// WINDOW_UPDATE advertisements duplicated onto this path.
    pub window_updates_duplicated: u64,
    /// Latest smoothed RTT, microseconds (gauge).
    pub srtt_us: u64,
    /// Latest RTT variance, microseconds (gauge).
    pub rttvar_us: u64,
    /// Latest congestion window, bytes (gauge).
    pub cwnd: u64,
    /// Latest bytes in flight (gauge).
    pub bytes_in_flight: u64,
    /// Latest liveness state.
    pub state: Option<PathState>,
    /// Smoothed-RTT distribution, microseconds.
    pub rtt_histogram: LogHistogram,
    /// Congestion-window distribution, bytes.
    pub cwnd_histogram: LogHistogram,
}

/// The registry: per-path [`PathMetrics`] plus connection-wide counters.
///
/// Usable directly as a [`Subscriber`], or shared across threads through
/// [`MetricsSubscriber`]/[`MetricsHandle`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    paths: BTreeMap<PathId, PathMetrics>,
    handovers: u64,
    path_validations_started: u64,
    path_validations_ok: u64,
    path_validations_failed: u64,
    cid_rotations: u64,
    events_seen: u64,
}

impl MetricsRegistry {
    /// Per-path metrics, creating the entry on first touch.
    fn path(&mut self, id: PathId) -> &mut PathMetrics {
        self.paths.entry(id).or_default()
    }

    /// Metrics for one path, if any event mentioned it.
    pub fn get(&self, id: PathId) -> Option<&PathMetrics> {
        self.paths.get(&id)
    }

    /// All per-path metrics in path order.
    pub fn paths(&self) -> impl Iterator<Item = (&PathId, &PathMetrics)> {
        self.paths.iter()
    }

    /// Total events observed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// A point-in-time summary of everything the registry has seen.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let total_decisions: u64 = self.paths.values().map(|p| p.sched_decisions).sum();
        let paths = self
            .paths
            .iter()
            .map(|(id, m)| PathSummary {
                path: *id,
                state: m.state,
                srtt_us: m.srtt_us,
                rttvar_us: m.rttvar_us,
                cwnd: m.cwnd,
                bytes_in_flight: m.bytes_in_flight,
                packets_sent: m.packets_sent,
                bytes_sent: m.bytes_sent,
                packets_received: m.packets_received,
                bytes_received: m.bytes_received,
                lost_bytes: m.lost_bytes,
                frames_retransmitted: m.frames_retransmitted,
                rtos: m.rtos,
                sched_decisions: m.sched_decisions,
                sched_share: if total_decisions == 0 {
                    0.0
                } else {
                    m.sched_decisions as f64 / total_decisions as f64
                },
                loss_percent: if m.bytes_sent == 0 {
                    0.0
                } else {
                    100.0 * m.lost_bytes as f64 / m.bytes_sent as f64
                },
                rtt_p50_us: m.rtt_histogram.quantile(0.50),
                rtt_p99_us: m.rtt_histogram.quantile(0.99),
                cwnd_max: m.cwnd_histogram.max(),
            })
            .collect();
        MetricsSnapshot {
            paths,
            handovers: self.handovers,
            path_validations_started: self.path_validations_started,
            path_validations_ok: self.path_validations_ok,
            path_validations_failed: self.path_validations_failed,
            cid_rotations: self.cid_rotations,
            events_seen: self.events_seen,
        }
    }
}

impl Subscriber for MetricsRegistry {
    fn on_event(&mut self, event: &Event) {
        self.events_seen += 1;
        match event {
            Event::PacketSent(e) => {
                let p = self.path(e.path);
                p.packets_sent += 1;
                p.bytes_sent += e.size as u64;
            }
            Event::PacketReceived(e) => {
                let p = self.path(e.path);
                p.packets_received += 1;
                p.bytes_received += e.size as u64;
            }
            Event::AckSent(e) => self.path(e.on_path).acks_sent += 1,
            Event::AckReceived(e) => {
                let p = self.path(e.acks_path);
                p.acks_received += 1;
                p.acked_bytes += e.newly_acked_bytes;
            }
            Event::FramesLost(e) => {
                let p = self.path(e.path);
                p.frames_lost += e.frames as u64;
                p.lost_bytes += e.bytes;
            }
            Event::FrameRetransmitted(e) => self.path(e.from_path).frames_retransmitted += 1,
            Event::SchedulerDecision(e) => {
                self.path(e.chosen_path).sched_decisions += 1;
                for dup in &e.duplicate_on {
                    self.path(*dup).sched_duplicates += 1;
                }
            }
            Event::MetricsUpdated(e) => {
                let p = self.path(e.path);
                p.srtt_us = e.srtt_us;
                p.rttvar_us = e.rttvar_us;
                p.cwnd = e.cwnd;
                p.bytes_in_flight = e.bytes_in_flight;
                p.rtt_histogram.record(e.srtt_us);
                p.cwnd_histogram.record(e.cwnd);
            }
            Event::CongestionEvent(e) => {
                let p = self.path(e.path);
                p.congestion_events += 1;
                p.cwnd = e.window_after;
            }
            Event::PathStateChanged(e) => self.path(e.path).state = Some(e.state),
            Event::Rto(e) => self.path(e.path).rtos += 1,
            Event::Handover(e) => {
                self.handovers += 1;
                // Make sure the failed path exists in the map even if it
                // never carried data.
                self.path(e.from_path);
            }
            Event::WindowUpdateDuplicated(e) => {
                for path in &e.paths {
                    self.path(*path).window_updates_duplicated += 1;
                }
            }
            Event::PathValidationStarted(e) => {
                self.path_validations_started += 1;
                self.path(e.path);
            }
            Event::PathValidated(e) => {
                self.path_validations_ok += 1;
                self.path(e.path);
            }
            Event::PathValidationFailed(e) => {
                self.path_validations_failed += 1;
                self.path(e.path);
            }
            Event::CidRotated(_) => self.cid_rotations += 1,
        }
    }
}

/// One path's line in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Serialize)]
pub struct PathSummary {
    /// The path.
    pub path: PathId,
    /// Last reported liveness state.
    pub state: Option<PathState>,
    /// Latest smoothed RTT, microseconds.
    pub srtt_us: u64,
    /// Latest RTT variance, microseconds.
    pub rttvar_us: u64,
    /// Latest congestion window, bytes.
    pub cwnd: u64,
    /// Latest bytes in flight.
    pub bytes_in_flight: u64,
    /// Packets sent.
    pub packets_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Packets received.
    pub packets_received: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Bytes declared lost.
    pub lost_bytes: u64,
    /// Frames requeued after loss.
    pub frames_retransmitted: u64,
    /// Retransmission timeouts.
    pub rtos: u64,
    /// Data packets the scheduler placed on this path.
    pub sched_decisions: u64,
    /// This path's fraction of all scheduler decisions, in `[0, 1]`.
    pub sched_share: f64,
    /// Lost bytes as a percentage of sent bytes.
    pub loss_percent: f64,
    /// Median smoothed RTT, microseconds.
    pub rtt_p50_us: u64,
    /// 99th-percentile smoothed RTT, microseconds.
    pub rtt_p99_us: u64,
    /// Largest congestion window observed.
    pub cwnd_max: u64,
}

/// A point-in-time, serializable summary of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Per-path summaries, in path order.
    pub paths: Vec<PathSummary>,
    /// Handover events observed.
    pub handovers: u64,
    /// Path validations started (rebinds quarantined).
    pub path_validations_started: u64,
    /// Path validations that completed successfully.
    pub path_validations_ok: u64,
    /// Path validations that timed out and abandoned the path.
    pub path_validations_failed: u64,
    /// Connection-ID rotations completed.
    pub cid_rotations: u64,
    /// Total telemetry events observed.
    pub events_seen: u64,
}

impl MetricsSnapshot {
    /// The summary for one path, if present.
    pub fn path(&self, id: PathId) -> Option<&PathSummary> {
        self.paths.iter().find(|p| p.path == id)
    }
}

/// A cloneable, thread-safe view onto a shared [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle {
    shared: Arc<Mutex<MetricsRegistry>>,
}

impl MetricsHandle {
    /// Snapshots the registry. Returns the default (empty) snapshot if
    /// the writer panicked while holding the lock.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.shared
            .lock()
            .map(|registry| registry.snapshot())
            .unwrap_or_default()
    }
}

/// The registry as an installable subscriber: feeds a shared
/// [`MetricsRegistry`] that stays readable (through the paired
/// [`MetricsHandle`]) after the connection has consumed the subscriber.
#[derive(Debug, Default)]
pub struct MetricsSubscriber {
    shared: Arc<Mutex<MetricsRegistry>>,
}

impl MetricsSubscriber {
    /// Creates a subscriber plus the handle used to read it later.
    pub fn new() -> (MetricsSubscriber, MetricsHandle) {
        let shared: Arc<Mutex<MetricsRegistry>> = Arc::default();
        let handle = MetricsHandle {
            shared: shared.clone(),
        };
        (MetricsSubscriber { shared }, handle)
    }
}

impl Subscriber for MetricsSubscriber {
    fn on_event(&mut self, event: &Event) {
        if let Ok(mut registry) = self.shared.lock() {
            registry.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpquic_util::SimTime;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Exact boundary values land in the bucket whose lower bound they
        // are; value-1 lands one bucket below.
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        for bit in 1..62 {
            let v = 1u64 << bit;
            assert_eq!(LogHistogram::bucket_index(v), bit as usize + 1, "2^{bit}");
            assert_eq!(LogHistogram::bucket_index(v - 1), bit as usize, "2^{bit}-1");
            let (lower, upper) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(v));
            assert!(lower <= v && v < upper, "2^{bit} within its bucket bounds");
        }
        // Values beyond the last bucket's lower bound saturate into it.
        assert_eq!(LogHistogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        let mut expected_lower = 0;
        for i in 0..BUCKETS {
            let (lower, upper) = LogHistogram::bucket_bounds(i);
            assert_eq!(lower, expected_lower, "bucket {i} starts where {} ended", i);
            assert!(upper > lower);
            expected_lower = upper;
        }
        assert_eq!(LogHistogram::bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let mut h = LogHistogram::default();
        for v in [10, 10, 10, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
        // p50 falls in 10's bucket [8, 16); reported as upper-1 = 15.
        assert_eq!(h.quantile(0.5), 15);
        // p100 falls in 1000's bucket [512, 1024) but is clamped to max.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(LogHistogram::default().quantile(0.5), 0);
    }

    #[test]
    fn merge_folds_counts_sum_and_max() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        for v in [1, 2, 3] {
            a.record(v);
        }
        for v in [100, 200] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 200);
        assert_eq!(a.mean(), (1 + 2 + 3 + 100 + 200) / 5);
        // The distribution survives: p20 still resolves to the small
        // values' bucket, not the merged mean.
        assert!(a.quantile(0.2) <= 3);
    }

    #[test]
    fn batch_quantiles_match_single_quantile() {
        let mut h = LogHistogram::default();
        for v in 0..1000u64 {
            h.record(v * 7 % 509);
        }
        let qs = [0.999, 0.5, 0.99, 0.0, 1.0];
        let batch = h.quantiles(&qs);
        for (&q, &got) in qs.iter().zip(batch.iter()) {
            assert_eq!(got, h.quantile(q), "q={q}");
        }
        // Empty histogram: all zeros, order preserved.
        assert_eq!(LogHistogram::default().quantiles(&qs), vec![0; 5]);
    }

    #[test]
    fn batch_quantiles_survive_merge() {
        // SLO aggregation path: per-worker histograms merged, then
        // p50/p99/p999 read in one pass.
        let mut merged = LogHistogram::default();
        for worker in 0..4u64 {
            let mut h = LogHistogram::default();
            for i in 0..250u64 {
                h.record(100 + worker * 1000 + i);
            }
            merged.merge(&h);
        }
        assert_eq!(merged.count(), 1000);
        let q = merged.quantiles(&[0.5, 0.99, 0.999]);
        assert!(q[0] <= q[1] && q[1] <= q[2], "quantiles monotone: {q:?}");
        assert!(q[2] <= merged.max());
        // p99 of 1000 samples must come from the top worker's band.
        assert!(q[1] >= 2048, "p99 {q:?} below the top band's bucket");
    }

    #[test]
    fn histogram_memory_is_fixed() {
        // The whole point: no growth with sample count.
        let before = std::mem::size_of::<LogHistogram>();
        let mut h = LogHistogram::default();
        for v in 0..100_000u64 {
            h.record(v);
        }
        assert_eq!(std::mem::size_of_val(&h), before);
        assert_eq!(h.count(), 100_000);
    }

    #[test]
    fn registry_attributes_acks_to_the_acknowledged_path() {
        let mut r = MetricsRegistry::default();
        r.on_event(&Event::AckReceived(AckReceived {
            time: SimTime::from_millis(1),
            on_path: PathId(0),
            acks_path: PathId(1),
            largest_acked: 7,
            newly_acked_bytes: 1350,
        }));
        assert_eq!(r.get(PathId(1)).map(|p| p.acks_received), Some(1));
        assert_eq!(r.get(PathId(1)).map(|p| p.acked_bytes), Some(1350));
        assert!(r.get(PathId(0)).is_none(), "travel path not charged");
    }

    #[test]
    fn snapshot_computes_shares_and_loss() {
        let mut r = MetricsRegistry::default();
        for (path, n) in [(0u32, 3u64), (1, 1)] {
            for _ in 0..n {
                r.on_event(&Event::SchedulerDecision(SchedulerDecision {
                    time: SimTime::ZERO,
                    chosen_path: PathId(path),
                    candidates: vec![PathId(0), PathId(1)],
                    duplicate_on: Vec::new(),
                    reason: SchedulerReason::LowestRtt,
                }));
            }
        }
        r.on_event(&Event::PacketSent(PacketSent {
            time: SimTime::ZERO,
            path: PathId(0),
            packet_number: 0,
            size: 1000,
            ack_eliciting: true,
        }));
        r.on_event(&Event::FramesLost(FramesLost {
            time: SimTime::ZERO,
            path: PathId(0),
            frames: 1,
            bytes: 250,
        }));
        let snap = r.snapshot();
        let p0 = snap.path(PathId(0)).expect("path 0");
        let p1 = snap.path(PathId(1)).expect("path 1");
        assert!((p0.sched_share - 0.75).abs() < 1e-9);
        assert!((p1.sched_share - 0.25).abs() < 1e-9);
        assert!((p0.loss_percent - 25.0).abs() < 1e-9);
    }

    #[test]
    fn shared_handle_reads_after_subscriber_moved() {
        let (mut sub, handle) = MetricsSubscriber::new();
        sub.on_event(&Event::Rto(Rto {
            time: SimTime::ZERO,
            path: PathId(2),
        }));
        drop(sub); // the connection consumed and dropped it
        let snap = handle.snapshot();
        assert_eq!(snap.path(PathId(2)).map(|p| p.rtos), Some(1));
        assert_eq!(snap.events_seen, 1);
    }
}
