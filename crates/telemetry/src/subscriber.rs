//! The [`Subscriber`] trait and its combinators.
//!
//! Modelled on s2n-quic's event framework: the connection calls
//! [`Subscriber::on_event`] at each instrumentation point, the default
//! implementation dispatches to a typed per-event method, and every
//! method defaults to a no-op so subscribers implement only what they
//! care about. Subscribers compose structurally: `(A, B)` fans every
//! event out to `A` then `B`, `()` is the always-disabled no-op, and
//! `Option<S>`/`Box<S>` lift subscribers built conditionally at runtime.

use crate::event::*;

/// Receives telemetry events from a connection.
///
/// `Send` is required because connections are driven from worker
/// threads in the experiment harness and the real-socket runtime.
pub trait Subscriber: Send {
    /// False if the subscriber ignores everything. Emitters may use this
    /// to skip building allocation-carrying events (candidate lists,
    /// path vectors) when nobody listens.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Receives every event; the default dispatches to the typed methods
    /// below.
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::PacketSent(e) => self.on_packet_sent(e),
            Event::PacketReceived(e) => self.on_packet_received(e),
            Event::AckSent(e) => self.on_ack_sent(e),
            Event::AckReceived(e) => self.on_ack_received(e),
            Event::FramesLost(e) => self.on_frames_lost(e),
            Event::FrameRetransmitted(e) => self.on_frame_retransmitted(e),
            Event::SchedulerDecision(e) => self.on_scheduler_decision(e),
            Event::MetricsUpdated(e) => self.on_metrics_updated(e),
            Event::CongestionEvent(e) => self.on_congestion_event(e),
            Event::PathStateChanged(e) => self.on_path_state_changed(e),
            Event::Rto(e) => self.on_rto(e),
            Event::Handover(e) => self.on_handover(e),
            Event::WindowUpdateDuplicated(e) => self.on_window_update_duplicated(e),
            Event::PathValidationStarted(e) => self.on_path_validation_started(e),
            Event::PathValidated(e) => self.on_path_validated(e),
            Event::PathValidationFailed(e) => self.on_path_validation_failed(e),
            Event::CidRotated(e) => self.on_cid_rotated(e),
        }
    }

    /// A packet left the connection.
    fn on_packet_sent(&mut self, _event: &PacketSent) {}
    /// An authenticated packet was accepted.
    fn on_packet_received(&mut self, _event: &PacketReceived) {}
    /// An ACK frame was bundled into an outgoing packet.
    fn on_ack_sent(&mut self, _event: &AckSent) {}
    /// An ACK frame arrived and was processed.
    fn on_ack_received(&mut self, _event: &AckReceived) {}
    /// Loss recovery declared frames lost.
    fn on_frames_lost(&mut self, _event: &FramesLost) {}
    /// A reliable frame was queued for retransmission.
    fn on_frame_retransmitted(&mut self, _event: &FrameRetransmitted) {}
    /// The scheduler picked a path for a data packet.
    fn on_scheduler_decision(&mut self, _event: &SchedulerDecision) {}
    /// RTT / congestion-controller state changed on a path.
    fn on_metrics_updated(&mut self, _event: &MetricsUpdated) {}
    /// The congestion controller applied a decrease.
    fn on_congestion_event(&mut self, _event: &CongestionEvent) {}
    /// A path changed liveness state.
    fn on_path_state_changed(&mut self, _event: &PathStateChanged) {}
    /// A retransmission timeout fired.
    fn on_rto(&mut self, _event: &Rto) {}
    /// Traffic moved off a failed path.
    fn on_handover(&mut self, _event: &Handover) {}
    /// A WINDOW_UPDATE was duplicated across paths.
    fn on_window_update_duplicated(&mut self, _event: &WindowUpdateDuplicated) {}
    /// A rebound path was quarantined and a PATH_CHALLENGE queued.
    fn on_path_validation_started(&mut self, _event: &PathValidationStarted) {}
    /// A PATH_RESPONSE validated a rebound path.
    fn on_path_validated(&mut self, _event: &PathValidated) {}
    /// Path validation timed out and the path was abandoned.
    fn on_path_validation_failed(&mut self, _event: &PathValidationFailed) {}
    /// The connection switched to a rotated connection ID.
    fn on_cid_rotated(&mut self, _event: &CidRotated) {}
}

/// The no-op subscriber: reports itself disabled and ignores everything.
impl Subscriber for () {
    fn is_enabled(&self) -> bool {
        false
    }

    fn on_event(&mut self, _event: &Event) {}
}

/// Fan-out composition: every event reaches `A` first, then `B`. Nest
/// tuples — `(A, (B, C))` — for deeper stacks.
impl<A: Subscriber, B: Subscriber> Subscriber for (A, B) {
    fn is_enabled(&self) -> bool {
        self.0.is_enabled() || self.1.is_enabled()
    }

    fn on_event(&mut self, event: &Event) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
}

/// A subscriber configured at runtime: `None` is the no-op.
impl<S: Subscriber> Subscriber for Option<S> {
    fn is_enabled(&self) -> bool {
        self.as_ref().map(Subscriber::is_enabled).unwrap_or(false)
    }

    fn on_event(&mut self, event: &Event) {
        if let Some(inner) = self.as_mut() {
            inner.on_event(event);
        }
    }
}

impl<S: Subscriber + ?Sized> Subscriber for Box<S> {
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    fn on_event(&mut self, event: &Event) {
        (**self).on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpquic_util::SimTime;
    use mpquic_wire::PathId;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn rto(ms: u64) -> Event {
        Event::Rto(Rto {
            time: SimTime::from_millis(ms),
            path: PathId(0),
        })
    }

    /// Records the order in which it saw events, against a shared clock.
    struct Tracer {
        label: &'static str,
        clock: Arc<AtomicUsize>,
        seen: Vec<(usize, &'static str, SimTime)>,
    }

    impl Tracer {
        fn new(label: &'static str, clock: &Arc<AtomicUsize>) -> Tracer {
            Tracer {
                label,
                clock: clock.clone(),
                seen: Vec::new(),
            }
        }
    }

    impl Subscriber for Tracer {
        fn on_event(&mut self, event: &Event) {
            // Relaxed suffices: ticks come from one atomic, whose
            // modification order alone already totally orders them.
            let tick = self.clock.fetch_add(1, Ordering::Relaxed);
            self.seen.push((tick, self.label, event.time()));
        }
    }

    #[test]
    fn unit_subscriber_is_disabled() {
        assert!(!().is_enabled());
        ().on_event(&rto(1));
    }

    #[test]
    fn tuple_fans_out_in_order() {
        let clock = Arc::new(AtomicUsize::new(0));
        let mut stack = (Tracer::new("a", &clock), Tracer::new("b", &clock));
        stack.on_event(&rto(1));
        stack.on_event(&rto(2));
        // A sees each event strictly before B does.
        assert_eq!(stack.0.seen.len(), 2);
        assert_eq!(stack.1.seen.len(), 2);
        for (a, b) in stack.0.seen.iter().zip(stack.1.seen.iter()) {
            assert_eq!(a.2, b.2, "same event");
            assert!(a.0 < b.0, "left element first: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn nested_tuples_preserve_depth_first_order() {
        let clock = Arc::new(AtomicUsize::new(0));
        let mut stack = (
            Tracer::new("a", &clock),
            (Tracer::new("b", &clock), Tracer::new("c", &clock)),
        );
        stack.on_event(&rto(1));
        let order = [
            stack.0.seen.first().map(|s| s.0),
            stack.1 .0.seen.first().map(|s| s.0),
            stack.1 .1.seen.first().map(|s| s.0),
        ];
        assert_eq!(order, [Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn subscriber_order_is_events_order() {
        let clock = Arc::new(AtomicUsize::new(0));
        let mut t = Tracer::new("a", &clock);
        for ms in [5, 1, 9] {
            t.on_event(&rto(ms));
        }
        let times: Vec<u64> = t.seen.iter().map(|s| s.2.as_millis()).collect();
        assert_eq!(times, vec![5, 1, 9], "delivery order, not timestamp order");
    }

    #[test]
    fn option_and_box_lift() {
        let clock = Arc::new(AtomicUsize::new(0));
        assert!(!None::<Tracer>.is_enabled());
        let mut some = Some(Tracer::new("a", &clock));
        some.on_event(&rto(1));
        assert_eq!(some.as_ref().map(|t| t.seen.len()), Some(1));

        let mut boxed: Box<dyn Subscriber> = Box::new(Tracer::new("b", &clock));
        assert!(boxed.is_enabled());
        boxed.on_event(&rto(2));
    }

    #[test]
    fn tuple_enabled_if_either_side_is() {
        let clock = Arc::new(AtomicUsize::new(0));
        assert!(((), Tracer::new("a", &clock)).is_enabled());
        assert!(!((), ()).is_enabled());
    }

    #[test]
    fn typed_dispatch_reaches_the_right_method() {
        #[derive(Default)]
        struct Counter {
            rtos: usize,
            others: usize,
        }
        impl Subscriber for Counter {
            fn on_rto(&mut self, _event: &Rto) {
                self.rtos += 1;
            }
            fn on_packet_sent(&mut self, _event: &PacketSent) {
                self.others += 1;
            }
        }
        let mut c = Counter::default();
        c.on_event(&rto(1));
        c.on_event(&Event::PacketSent(PacketSent {
            time: SimTime::from_millis(2),
            path: PathId(1),
            packet_number: 0,
            size: 100,
            ack_eliciting: true,
        }));
        assert_eq!((c.rtos, c.others), (1, 1));
    }
}
