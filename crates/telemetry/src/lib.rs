//! # mpquic-telemetry — typed, path-aware observability
//!
//! An s2n-quic-style event framework for the Multipath QUIC stack. The
//! connection emits typed events ([`Event`]) at every instrumentation
//! point the paper's evaluation reasons about — scheduler decisions
//! (§3), per-path RTT/cwnd trajectories (§3, congestion control),
//! path-failure detection and handover (§4.3) — and anything
//! implementing [`Subscriber`] consumes them.
//!
//! Three built-in subscribers cover the common needs:
//!
//! * [`MetricsRegistry`] / [`MetricsSubscriber`] — per-path counters,
//!   gauges and fixed-memory log-bucketed histograms, snapshot-able at
//!   any time ([`MetricsSnapshot`]);
//! * [`StreamingQlog`] — incremental JSON-lines traces to any
//!   `io::Write`, bounded memory, flushed on drop so crashes and
//!   timeouts still leave a trace;
//! * [`StatsReporter`] — a periodic per-path summary line (srtt, cwnd,
//!   bytes, loss%, scheduler share) for live monitoring.
//!
//! Subscribers compose structurally: `(metrics, (qlog, stats))` fans
//! each event out left to right; `()` is the no-op; `Option<S>` lifts a
//! subscriber configured at runtime.
//!
//! Above the per-connection plane, [`endpoint`] hosts the
//! endpoint-scale metrics plane: sharded lock-free counters and
//! histograms, a constant-memory flight recorder, and a
//! dependency-free Prometheus/JSON scrape surface for the sharded
//! `Endpoint` in `mpquic-io`.
//!
//! This crate sits below `mpquic-core` (it knows times, path IDs and
//! event shapes — not connections), so every layer of the stack can
//! depend on it without cycles. Event emission is on the protocol hot
//! path and is covered by the `cargo xtask lint` no-panic pass.

#![deny(missing_docs)]

pub mod endpoint;
mod event;
mod metrics;
mod qlog;
mod stats;
mod subscriber;

pub use event::{
    AckReceived, AckSent, CidRotated, CongestionEvent, Event, FrameRetransmitted, FramesLost,
    Handover, MetricsUpdated, PacketReceived, PacketSent, PathState, PathStateChanged,
    PathValidated, PathValidationFailed, PathValidationStarted, Rto, SchedulerDecision,
    SchedulerReason, WindowUpdateDuplicated,
};
pub use metrics::{
    LogHistogram, MetricsHandle, MetricsRegistry, MetricsSnapshot, MetricsSubscriber, PathMetrics,
    PathSummary,
};
pub use qlog::StreamingQlog;
pub use stats::{format_path_line, StatsReporter};
pub use subscriber::Subscriber;
