//! The endpoint metrics plane: sharded lock-free counters, atomic log2
//! histograms, a constant-memory flight recorder, and a dependency-free
//! scrape surface.
//!
//! The sharded endpoint (DESIGN.md §12) runs one demux thread and N
//! worker shards; ROADMAP item 1 asks for wakeups/sec, channel depths
//! and per-connection accounting to be *measured*, not guessed. This
//! module is the fixed-memory, always-on plane those measurements live
//! on — the s2n-quic shape: cheap enough that it is never turned off.
//!
//! * [`EndpointStats`] — the endpoint-level counters (accept, retire,
//!   shed, backpressure, drop), each a cache-line-padded Relaxed
//!   atomic so the demux and every shard can hammer their own counters
//!   without false sharing.
//! * [`ShardPlane`] — per-worker loop telemetry: iteration counts,
//!   idle→busy wakeups, channel send/receive tallies (whose difference
//!   is the live queue occupancy), and [`AtomicHistogram`]s of busy
//!   loop-iteration time and sampled queue depth.
//! * [`EndpointPlane`] — one [`EndpointStats`] plus one padded
//!   [`ShardPlane`] per worker plus the buffer-pool occupancy
//!   histogram and the [`FlightRecorder`]; aggregated on demand into a
//!   typed [`PlaneSnapshot`].
//! * [`FlightRecorder`] — a fixed-capacity ring of the last N
//!   endpoint-level events (accept, retire, backpressure, shed,
//!   teardown, …) dumped as JSON lines when an SLO fails, the endpoint
//!   sheds load, or on demand (`cargo xtask qlog-check` validates the
//!   dump format).
//! * [`MetricsServer`] / [`SnapshotWriter`] — the scrape surface:
//!   Prometheus text exposition plus periodic JSON-lines snapshots,
//!   on `std::net::TcpListener` alone.
//!
//! Every atomic here is role `counter` in `crates/xtask/atomics.toml`
//! (all operations Relaxed: the values are commutative tallies, never
//! synchronisation), routed through one receiver name — [`RelaxedCell`]'s
//! `cell` field — so the atomic-ordering lint checks the whole plane
//! against a single registry entry. The hot paths (`add`, `record`,
//! [`FlightRecorder::record`]) allocate nothing after construction;
//! `crates/telemetry/tests/flight_recorder.rs` pins that with the
//! counting global allocator, and `mpquic-bench datapath --gate-overhead`
//! gates the throughput cost at ≤ 3%.

use crate::metrics::LogHistogram;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pads (and aligns) `T` to a cache line so two adjacent plane fields
/// updated by different threads never share one. 64 bytes covers
/// x86-64 and mainstream aarch64; on 128-byte-line parts the cost is
/// one extra (still private) line per counter, not sharing.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to its own cache line.
    pub fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// A `u64` statistic cell: every operation is `Ordering::Relaxed`.
///
/// The one atomic receiver the whole plane funnels through — the inner
/// field is deliberately named `cell` so `crates/xtask/atomics.toml`
/// registers the plane once (role `counter`) and the atomic-ordering
/// lint rejects any operation stronger than Relaxed on it. Relaxed is
/// correct by construction here: cells carry commutative tallies and
/// last-writer-wins gauges, and nothing is published *through* them —
/// cross-thread hand-off in the endpoint goes over channels and the
/// Release/Acquire stop flags, never a statistic.
#[derive(Debug, Default)]
pub struct RelaxedCell {
    cell: AtomicU64,
}

impl RelaxedCell {
    /// A cell starting at `value`.
    pub fn new(value: u64) -> RelaxedCell {
        RelaxedCell {
            cell: AtomicU64::new(value),
        }
    }

    /// Adds `n` (counter use).
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (gauge use, e.g. `active` on retire).
    pub fn sub(&self, n: u64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrites the value (gauge use).
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Raises the cell to `value` if larger (running-maximum gauge).
    /// A Relaxed CAS loop rather than `fetch_max`: the registry's
    /// counter role admits exactly the RMW set the lint recognises.
    pub fn record_max(&self, value: u64) {
        let mut seen = self.cell.load(Ordering::Relaxed);
        while value > seen {
            match self
                .cell
                .compare_exchange_weak(seen, value, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }
}

/// A lock-free mirror of [`LogHistogram`]: one Relaxed atomic per
/// power-of-two bucket, recordable concurrently from any thread,
/// convertible to a [`LogHistogram`] on demand. Bucket boundaries are
/// exactly [`LogHistogram::bucket_index`]'s, so merged snapshots and
/// quantiles come from the existing reporting machinery.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [RelaxedCell; LogHistogram::NUM_BUCKETS],
    sum: RelaxedCell,
    max: RelaxedCell,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| RelaxedCell::new(0)),
            sum: RelaxedCell::new(0),
            max: RelaxedCell::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one value: one bucket increment, a sum add and a
    /// running-max raise — no locks, no allocation.
    pub fn record(&self, value: u64) {
        if let Some(slot) = self.buckets.get(LogHistogram::bucket_index(value)) {
            slot.add(1);
        }
        self.sum.add(value);
        self.max.record_max(value);
    }

    /// Copies the live buckets into a [`LogHistogram`]. Concurrent
    /// recording keeps running; the copy is per-bucket atomic, which
    /// is all a statistics snapshot needs.
    pub fn snapshot(&self) -> LogHistogram {
        let counts: [u64; LogHistogram::NUM_BUCKETS] =
            std::array::from_fn(|i| self.buckets.get(i).map_or(0, RelaxedCell::get));
        LogHistogram::from_bucket_counts(&counts, self.sum.get(), self.max.get())
    }

    /// Folds the bucket-wise difference `cur - prev` into the live
    /// histogram without allocating — how a shard loop publishes a
    /// locally-accumulated [`LogHistogram`] (e.g. the datapath
    /// backend's batch sizes) into the shared plane incrementally:
    /// keep the previous snapshot, fold the delta, replace it.
    pub fn merge_delta(&self, cur: &LogHistogram, prev: &LogHistogram) {
        let cur_counts = cur.bucket_counts();
        let prev_counts = prev.bucket_counts();
        for (i, slot) in self.buckets.iter().enumerate() {
            let was = prev_counts.get(i).copied().unwrap_or(0);
            let now = cur_counts.get(i).copied().unwrap_or(0);
            let delta = now.saturating_sub(was);
            if delta > 0 {
                slot.add(delta);
            }
        }
        self.sum.add(cur.sum().saturating_sub(prev.sum()));
        self.max.record_max(cur.max());
    }
}

/// Endpoint-level counters shared by the demux thread, every shard and
/// the endpoint handle. Each cell sits on its own cache line: the demux
/// bumps `datagrams_in` on every ingress datagram while shards bump
/// verdict counters, and pre-padding those writes shared lines (the
/// PR 5 layout packed all nine atomics into two lines).
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Connections created for a first-seen CID.
    pub accepted: CachePadded<RelaxedCell>,
    /// Currently live (accepted minus retired).
    pub active: CachePadded<RelaxedCell>,
    /// Applications that finished successfully.
    pub completed: CachePadded<RelaxedCell>,
    /// Applications that failed, or connections lost before a verdict.
    pub failed: CachePadded<RelaxedCell>,
    /// Connections fully retired: the close went to the wire and the
    /// CID was released. `accepted - active == closed` once the
    /// endpoint is quiet, which is the cross-check load harnesses use
    /// for conns/sec accounting.
    pub closed: CachePadded<RelaxedCell>,
    /// New-CID datagrams dropped because the accept limit was reached.
    pub rejected: CachePadded<RelaxedCell>,
    /// Datagrams whose public header yielded no CID.
    pub malformed: CachePadded<RelaxedCell>,
    /// Datagrams dropped because the owning shard's queue was full.
    pub backpressure_drops: CachePadded<RelaxedCell>,
    /// Every datagram the demux pulled off the listen sockets.
    pub datagrams_in: CachePadded<RelaxedCell>,
    /// Path validations started (rebound addresses quarantined).
    pub path_validations_started: CachePadded<RelaxedCell>,
    /// Path validations completed (PATH_RESPONSE matched).
    pub path_validations_validated: CachePadded<RelaxedCell>,
    /// Path validations abandoned after bounded retries.
    pub path_validations_abandoned: CachePadded<RelaxedCell>,
    /// CID rotations initiated (NEW_CONNECTION_ID issued / received).
    pub cid_rotations_initiated: CachePadded<RelaxedCell>,
    /// CID rotations completed (demux now follows the new CID).
    pub cid_rotations_completed: CachePadded<RelaxedCell>,
    /// Datapath-backend entries handed to the kernel (SQEs, `mmsghdr`
    /// slots or portable datagrams).
    pub backend_submissions: CachePadded<RelaxedCell>,
    /// Datapath-backend entries the kernel completed successfully.
    pub backend_completions: CachePadded<RelaxedCell>,
    /// Datapath fallbacks: intra-backend rungs dropped (GSO →
    /// per-segment) plus whole-backend ladder descents.
    pub backend_fallbacks: CachePadded<RelaxedCell>,
}

/// A point-in-time copy of [`EndpointStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointSnapshot {
    /// Connections created for a first-seen CID.
    pub accepted: u64,
    /// Currently live (accepted minus retired).
    pub active: u64,
    /// Applications that finished successfully.
    pub completed: u64,
    /// Applications that failed, or connections lost before a verdict.
    pub failed: u64,
    /// Connections fully retired (close on the wire, CID released).
    pub closed: u64,
    /// New-CID datagrams dropped because the accept limit was reached.
    pub rejected: u64,
    /// Datagrams whose public header yielded no CID.
    pub malformed: u64,
    /// Datagrams dropped because the owning shard's queue was full.
    pub backpressure_drops: u64,
    /// Every datagram the demux pulled off the listen sockets.
    pub datagrams_in: u64,
    /// Path validations started (rebound addresses quarantined).
    pub path_validations_started: u64,
    /// Path validations completed (PATH_RESPONSE matched).
    pub path_validations_validated: u64,
    /// Path validations abandoned after bounded retries.
    pub path_validations_abandoned: u64,
    /// CID rotations initiated (NEW_CONNECTION_ID issued / received).
    pub cid_rotations_initiated: u64,
    /// CID rotations completed (demux now follows the new CID).
    pub cid_rotations_completed: u64,
    /// Datapath-backend entries handed to the kernel.
    pub backend_submissions: u64,
    /// Datapath-backend entries completed successfully.
    pub backend_completions: u64,
    /// Datapath fallbacks (GSO rungs dropped plus ladder descents).
    pub backend_fallbacks: u64,
}

impl EndpointStats {
    /// Copies the live counters.
    pub fn snapshot(&self) -> EndpointSnapshot {
        EndpointSnapshot {
            accepted: self.accepted.get(),
            active: self.active.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            closed: self.closed.get(),
            rejected: self.rejected.get(),
            malformed: self.malformed.get(),
            backpressure_drops: self.backpressure_drops.get(),
            datagrams_in: self.datagrams_in.get(),
            path_validations_started: self.path_validations_started.get(),
            path_validations_validated: self.path_validations_validated.get(),
            path_validations_abandoned: self.path_validations_abandoned.get(),
            cid_rotations_initiated: self.cid_rotations_initiated.get(),
            cid_rotations_completed: self.cid_rotations_completed.get(),
            backend_submissions: self.backend_submissions.get(),
            backend_completions: self.backend_completions.get(),
            backend_fallbacks: self.backend_fallbacks.get(),
        }
    }
}

impl EndpointSnapshot {
    /// Field-wise `self - before` (saturating): what happened between
    /// two snapshots. Loadgen embeds one of these per scenario so an
    /// SLO failure arrives with its drop/backpressure context.
    pub fn delta(&self, before: &EndpointSnapshot) -> EndpointSnapshot {
        EndpointSnapshot {
            accepted: self.accepted.saturating_sub(before.accepted),
            active: self.active.saturating_sub(before.active),
            completed: self.completed.saturating_sub(before.completed),
            failed: self.failed.saturating_sub(before.failed),
            closed: self.closed.saturating_sub(before.closed),
            rejected: self.rejected.saturating_sub(before.rejected),
            malformed: self.malformed.saturating_sub(before.malformed),
            backpressure_drops: self
                .backpressure_drops
                .saturating_sub(before.backpressure_drops),
            datagrams_in: self.datagrams_in.saturating_sub(before.datagrams_in),
            path_validations_started: self
                .path_validations_started
                .saturating_sub(before.path_validations_started),
            path_validations_validated: self
                .path_validations_validated
                .saturating_sub(before.path_validations_validated),
            path_validations_abandoned: self
                .path_validations_abandoned
                .saturating_sub(before.path_validations_abandoned),
            cid_rotations_initiated: self
                .cid_rotations_initiated
                .saturating_sub(before.cid_rotations_initiated),
            cid_rotations_completed: self
                .cid_rotations_completed
                .saturating_sub(before.cid_rotations_completed),
            backend_submissions: self
                .backend_submissions
                .saturating_sub(before.backend_submissions),
            backend_completions: self
                .backend_completions
                .saturating_sub(before.backend_completions),
            backend_fallbacks: self
                .backend_fallbacks
                .saturating_sub(before.backend_fallbacks),
        }
    }
}

/// Per-worker loop telemetry. One of these per shard (the `workers=1`
/// unified loop uses shard 0's), each padded onto its own cache lines
/// inside [`EndpointPlane`] so shard A's loop counter never bounces
/// shard B's.
#[derive(Debug, Default)]
pub struct ShardPlane {
    /// Loop iterations, busy or idle.
    pub loop_iterations: RelaxedCell,
    /// Iterations that made progress (drained ingress, moved a
    /// connection, sent egress).
    pub busy_iterations: RelaxedCell,
    /// Idle→busy transitions — the wakeups/sec ROADMAP item 1 asks
    /// for. A shard that never parks between bursts scores low here
    /// even at high iteration counts.
    pub wakeups: RelaxedCell,
    /// Messages the demux placed on this shard's ingress channel.
    pub queue_sent: RelaxedCell,
    /// Messages this shard drained off its ingress channel. The
    /// difference `queue_sent - queue_received` is the live channel
    /// occupancy.
    pub queue_received: RelaxedCell,
    /// Connections currently owned by the shard (last-writer gauge,
    /// refreshed each loop iteration).
    pub conns_active: RelaxedCell,
    /// Busy loop-iteration wall time, nanoseconds.
    pub loop_ns: AtomicHistogram,
    /// Ingress-channel occupancy sampled by the demux each busy
    /// iteration.
    pub queue_depth: AtomicHistogram,
}

impl ShardPlane {
    /// Live ingress-channel occupancy: sends minus receives
    /// (saturating — the two cells are read at different instants).
    pub fn queue_occupancy(&self) -> u64 {
        self.queue_sent
            .get()
            .saturating_sub(self.queue_received.get())
    }
}

/// A point-in-time copy of one [`ShardPlane`].
#[derive(Debug, Clone, Default)]
pub struct ShardPlaneSnapshot {
    /// Which shard (0-based).
    pub shard: usize,
    /// Loop iterations, busy or idle.
    pub loop_iterations: u64,
    /// Iterations that made progress.
    pub busy_iterations: u64,
    /// Idle→busy transitions.
    pub wakeups: u64,
    /// Messages enqueued to this shard.
    pub queue_sent: u64,
    /// Messages this shard drained.
    pub queue_received: u64,
    /// Live channel occupancy at snapshot time.
    pub queue_occupancy: u64,
    /// Connections owned at snapshot time.
    pub conns_active: u64,
    /// Busy loop-iteration time distribution, ns.
    pub loop_ns: LogHistogram,
    /// Sampled ingress-channel depth distribution.
    pub queue_depth: LogHistogram,
}

/// A typed aggregate of the whole plane: endpoint counters, per-shard
/// snapshots, and the cross-shard merged histograms reports gate on.
#[derive(Debug, Clone, Default)]
pub struct PlaneSnapshot {
    /// Endpoint-level counters.
    pub stats: EndpointSnapshot,
    /// Per-shard loop telemetry, in shard order.
    pub shards: Vec<ShardPlaneSnapshot>,
    /// Demux buffer-pool occupancy (buffers loaned out), sampled each
    /// busy demux iteration.
    pub pool_outstanding: LogHistogram,
    /// Datapath-backend entries per kernel submission boundary (SQE
    /// batch sizes for io_uring, datagrams per `sendmmsg` otherwise),
    /// merged across shards.
    pub backend_sqe_batch: LogHistogram,
    /// All shards' busy-iteration times merged.
    pub loop_ns: LogHistogram,
    /// All shards' sampled queue depths merged.
    pub queue_depth: LogHistogram,
    /// Total idle→busy transitions across shards.
    pub wakeups: u64,
    /// Events the flight recorder has seen (recorded, not kept).
    pub flight_recorded: u64,
}

/// The endpoint's whole metrics plane, shared (`Arc`) by the demux
/// thread, every shard, the endpoint handle and the scrape surface.
#[derive(Debug)]
pub struct EndpointPlane {
    /// Endpoint-level counters.
    pub stats: EndpointStats,
    shards: Box<[CachePadded<ShardPlane>]>,
    /// Absorbs writes addressed to an out-of-range shard index (cannot
    /// happen in the endpoint's own wiring, but [`EndpointPlane::shard`]
    /// stays total either way). Excluded from snapshots.
    spare: CachePadded<ShardPlane>,
    /// Demux buffer-pool occupancy, sampled each busy demux iteration.
    pub pool_outstanding: AtomicHistogram,
    /// Datapath-backend entries per kernel submission boundary, folded
    /// in by each shard loop as deltas of its registry's counters.
    pub backend_sqe_batch: AtomicHistogram,
    /// The last-N-events ring (see [`FlightRecorder`]).
    pub recorder: FlightRecorder,
}

impl EndpointPlane {
    /// A plane for `workers` shards (at least one) with the default
    /// flight-recorder capacity.
    pub fn new(workers: usize) -> EndpointPlane {
        EndpointPlane::with_flight_capacity(workers, FLIGHT_CAPACITY)
    }

    /// A plane for `workers` shards keeping the last `flight_capacity`
    /// endpoint events.
    pub fn with_flight_capacity(workers: usize, flight_capacity: usize) -> EndpointPlane {
        let n = workers.max(1);
        let shards: Vec<CachePadded<ShardPlane>> = (0..n)
            .map(|_| CachePadded::new(ShardPlane::default()))
            .collect();
        EndpointPlane {
            stats: EndpointStats::default(),
            shards: shards.into_boxed_slice(),
            spare: CachePadded::new(ShardPlane::default()),
            pool_outstanding: AtomicHistogram::default(),
            backend_sqe_batch: AtomicHistogram::default(),
            recorder: FlightRecorder::new(flight_capacity),
        }
    }

    /// Number of per-shard planes.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Shard `index`'s plane (total: out-of-range indices land on a
    /// spare plane excluded from snapshots, rather than panicking on a
    /// datapath).
    pub fn shard(&self, index: usize) -> &ShardPlane {
        match self.shards.get(index) {
            Some(plane) => plane,
            None => &self.spare,
        }
    }

    /// Aggregates the whole plane into a typed snapshot: per-shard
    /// copies plus the merged histograms and wakeup totals.
    pub fn snapshot(&self) -> PlaneSnapshot {
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut loop_ns = LogHistogram::default();
        let mut queue_depth = LogHistogram::default();
        let mut wakeups = 0u64;
        for (i, plane) in self.shards.iter().enumerate() {
            let shard_loop = plane.loop_ns.snapshot();
            let shard_queue = plane.queue_depth.snapshot();
            loop_ns.merge(&shard_loop);
            queue_depth.merge(&shard_queue);
            wakeups += plane.wakeups.get();
            shards.push(ShardPlaneSnapshot {
                shard: i,
                loop_iterations: plane.loop_iterations.get(),
                busy_iterations: plane.busy_iterations.get(),
                wakeups: plane.wakeups.get(),
                queue_sent: plane.queue_sent.get(),
                queue_received: plane.queue_received.get(),
                queue_occupancy: plane.queue_occupancy(),
                conns_active: plane.conns_active.get(),
                loop_ns: shard_loop,
                queue_depth: shard_queue,
            });
        }
        PlaneSnapshot {
            stats: self.stats.snapshot(),
            shards,
            pool_outstanding: self.pool_outstanding.snapshot(),
            backend_sqe_batch: self.backend_sqe_batch.snapshot(),
            loop_ns,
            queue_depth,
            wakeups,
            flight_recorded: self.recorder.total_recorded(),
        }
    }
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// Default ring capacity: the last 1024 endpoint events, 40 bytes each.
pub const FLIGHT_CAPACITY: usize = 1024;

/// What happened, endpoint-level. Connection-level detail stays in the
/// PR 3 event/qlog plane; the flight recorder answers "what was the
/// *endpoint* doing just before things went wrong".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A first-seen CID became a connection.
    Accept,
    /// A connection fully closed and its CID was released.
    Retire,
    /// A datagram (or accept) was dropped on a full shard queue.
    Backpressure,
    /// A new-CID datagram was shed at the accept limit.
    Shed,
    /// A datagram's public header yielded no CID.
    Malformed,
    /// The endpoint began shutdown.
    Teardown,
    /// A load harness recorded a missed SLO against this endpoint.
    SloFail,
}

impl FlightKind {
    /// Stable lowercase name used in the JSON-lines dump.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Accept => "accept",
            FlightKind::Retire => "retire",
            FlightKind::Backpressure => "backpressure",
            FlightKind::Shed => "shed",
            FlightKind::Malformed => "malformed",
            FlightKind::Teardown => "teardown",
            FlightKind::SloFail => "slo_fail",
        }
    }
}

/// One recorded endpoint event. `Copy` and fixed-size: recording is a
/// slot overwrite, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the recorder was built.
    pub at_us: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The connection ID involved (0 when not applicable).
    pub cid: u64,
    /// The shard involved (0 when not applicable).
    pub shard: u32,
    /// Kind-specific detail: occupancy for backpressure, live count
    /// for shed/teardown, p99 µs for slo_fail.
    pub value: u64,
}

/// The ring storage behind the mutex: a pre-reserved `Vec` that never
/// grows past its construction-time capacity.
#[derive(Debug)]
struct FlightRing {
    slots: Vec<FlightEvent>,
    capacity: usize,
    /// Total events ever recorded; `next % capacity` is the write slot.
    next: u64,
}

impl FlightRing {
    fn push(&mut self, event: FlightEvent) {
        let idx = (self.next % self.capacity as u64) as usize;
        if idx < self.slots.len() {
            if let Some(slot) = self.slots.get_mut(idx) {
                *slot = event;
            }
        } else {
            // Still filling the pre-reserved storage: len < capacity,
            // so this push never reallocates.
            self.slots.push(event);
        }
        self.next += 1;
    }
}

/// A constant-memory ring of the last N endpoint events.
///
/// Recording takes an uncontended mutex (the endpoint's event rate —
/// accepts, retires, drops — is orders of magnitude below the datagram
/// rate, so a ~20 ns lock on this path costs nothing measurable) and
/// overwrites a fixed slot; nothing allocates after construction.
/// Dumping renders oldest→newest as one JSON object per line, the
/// shape `cargo xtask qlog-check` validates.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    ring: Mutex<FlightRing>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` (≥ 1) events.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            epoch: Instant::now(),
            ring: Mutex::new(FlightRing {
                slots: Vec::with_capacity(capacity),
                capacity,
                next: 0,
            }),
        }
    }

    /// Records one event, overwriting the oldest once the ring is
    /// full. Alloc-free; tolerates a poisoned lock (a panicking peer
    /// loses telemetry, not the process).
    pub fn record(&self, kind: FlightKind, cid: u64, shard: u32, value: u64) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        if let Ok(mut ring) = self.ring.lock() {
            ring.push(FlightEvent {
                at_us,
                kind,
                cid,
                shard,
                value,
            });
        }
    }

    /// Ring capacity (events kept).
    pub fn capacity(&self) -> usize {
        self.ring.lock().map_or(0, |r| r.capacity)
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().map_or(0, |r| r.slots.len())
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (kept + overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().map_or(0, |r| r.next)
    }

    /// The kept events, oldest first. Allocates (report path, not
    /// datapath).
    pub fn events(&self) -> Vec<FlightEvent> {
        let Ok(ring) = self.ring.lock() else {
            return Vec::new();
        };
        if ring.next <= ring.capacity as u64 {
            return ring.slots.clone();
        }
        let split = (ring.next % ring.capacity as u64) as usize;
        let mut out = Vec::with_capacity(ring.slots.len());
        out.extend(ring.slots.get(split..).unwrap_or(&[]));
        out.extend(ring.slots.get(..split).unwrap_or(&[]));
        out
    }

    /// Renders the ring as JSON lines: one header object (so a dump is
    /// non-empty and self-describing even before any event), then one
    /// object per kept event, oldest first. Every line is a standalone
    /// JSON object — `cargo xtask qlog-check FILE` accepts the dump
    /// unchanged.
    pub fn dump_json_lines(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str(&format!(
            "{{\"kind\":\"flight_header\",\"capacity\":{},\"recorded\":{},\"kept\":{}}}\n",
            self.capacity(),
            self.total_recorded(),
            events.len(),
        ));
        for e in &events {
            out.push_str(&format!(
                "{{\"at_us\":{},\"kind\":\"{}\",\"cid\":{},\"shard\":{},\"value\":{}}}\n",
                e.at_us,
                e.kind.as_str(),
                e.cid,
                e.shard,
                e.value,
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Renderers: Prometheus text exposition + JSON snapshot line
// ---------------------------------------------------------------------

/// Appends one `# HELP`/`# TYPE` header pair.
fn prom_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Appends an unlabelled sample.
fn prom_value(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("{name} {value}\n"));
}

/// Appends one `{shard="i"}`-labelled sample per shard.
fn prom_per_shard(
    out: &mut String,
    name: &str,
    snap: &PlaneSnapshot,
    get: impl Fn(&ShardPlaneSnapshot) -> u64,
) {
    for s in &snap.shards {
        out.push_str(&format!("{name}{{shard=\"{}\"}} {}\n", s.shard, get(s)));
    }
}

/// Appends a histogram family: cumulative `_bucket{le=...}` samples
/// (empty buckets skipped; `le` is the bucket's upper bound), `_sum`
/// and `_count`.
fn prom_histogram(out: &mut String, name: &str, h: &LogHistogram) {
    let mut cumulative = 0u64;
    for (i, &n) in h.bucket_counts().iter().enumerate() {
        cumulative += n;
        if n == 0 {
            continue;
        }
        let (_, upper) = LogHistogram::bucket_bounds(i);
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            upper.saturating_sub(1),
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Renders a [`PlaneSnapshot`] as Prometheus text exposition (format
/// 0.0.4). Metric names are cross-checked against
/// `crates/xtask/metrics.toml` by the `metrics-registry` lint.
pub fn render_prometheus(snap: &PlaneSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let s = &snap.stats;

    prom_header(
        &mut out,
        "mpq_endpoint_accepted_total",
        "counter",
        "connections created for a first-seen CID",
    );
    prom_value(&mut out, "mpq_endpoint_accepted_total", s.accepted);
    prom_header(
        &mut out,
        "mpq_endpoint_completed_total",
        "counter",
        "applications finished successfully",
    );
    prom_value(&mut out, "mpq_endpoint_completed_total", s.completed);
    prom_header(
        &mut out,
        "mpq_endpoint_failed_total",
        "counter",
        "applications failed or lost before a verdict",
    );
    prom_value(&mut out, "mpq_endpoint_failed_total", s.failed);
    prom_header(
        &mut out,
        "mpq_endpoint_closed_total",
        "counter",
        "connections fully retired",
    );
    prom_value(&mut out, "mpq_endpoint_closed_total", s.closed);
    prom_header(
        &mut out,
        "mpq_endpoint_rejected_total",
        "counter",
        "new-CID datagrams shed at the accept limit",
    );
    prom_value(&mut out, "mpq_endpoint_rejected_total", s.rejected);
    prom_header(
        &mut out,
        "mpq_endpoint_malformed_total",
        "counter",
        "datagrams whose public header yielded no CID",
    );
    prom_value(&mut out, "mpq_endpoint_malformed_total", s.malformed);
    prom_header(
        &mut out,
        "mpq_endpoint_backpressure_drops_total",
        "counter",
        "datagrams dropped on a full shard queue",
    );
    prom_value(
        &mut out,
        "mpq_endpoint_backpressure_drops_total",
        s.backpressure_drops,
    );
    prom_header(
        &mut out,
        "mpq_endpoint_datagrams_in_total",
        "counter",
        "datagrams pulled off the listen sockets",
    );
    prom_value(&mut out, "mpq_endpoint_datagrams_in_total", s.datagrams_in);
    prom_header(
        &mut out,
        "mpq_path_validation_started_total",
        "counter",
        "path validations started after an address rebind",
    );
    prom_value(
        &mut out,
        "mpq_path_validation_started_total",
        s.path_validations_started,
    );
    prom_header(
        &mut out,
        "mpq_path_validation_validated_total",
        "counter",
        "path validations completed by a matching PATH_RESPONSE",
    );
    prom_value(
        &mut out,
        "mpq_path_validation_validated_total",
        s.path_validations_validated,
    );
    prom_header(
        &mut out,
        "mpq_path_validation_abandoned_total",
        "counter",
        "path validations abandoned after bounded retries",
    );
    prom_value(
        &mut out,
        "mpq_path_validation_abandoned_total",
        s.path_validations_abandoned,
    );
    prom_header(
        &mut out,
        "mpq_cid_rotation_initiated_total",
        "counter",
        "connection-ID rotations initiated",
    );
    prom_value(
        &mut out,
        "mpq_cid_rotation_initiated_total",
        s.cid_rotations_initiated,
    );
    prom_header(
        &mut out,
        "mpq_cid_rotation_completed_total",
        "counter",
        "connection-ID rotations the demux completed",
    );
    prom_value(
        &mut out,
        "mpq_cid_rotation_completed_total",
        s.cid_rotations_completed,
    );
    prom_header(
        &mut out,
        "mpq_backend_submissions_total",
        "counter",
        "datapath-backend entries handed to the kernel",
    );
    prom_value(
        &mut out,
        "mpq_backend_submissions_total",
        s.backend_submissions,
    );
    prom_header(
        &mut out,
        "mpq_backend_completions_total",
        "counter",
        "datapath-backend entries completed successfully",
    );
    prom_value(
        &mut out,
        "mpq_backend_completions_total",
        s.backend_completions,
    );
    prom_header(
        &mut out,
        "mpq_backend_fallbacks_total",
        "counter",
        "datapath fallbacks: GSO rungs dropped plus backend-ladder descents",
    );
    prom_value(&mut out, "mpq_backend_fallbacks_total", s.backend_fallbacks);
    prom_header(
        &mut out,
        "mpq_endpoint_active",
        "gauge",
        "connections currently live",
    );
    prom_value(&mut out, "mpq_endpoint_active", s.active);
    prom_header(
        &mut out,
        "mpq_endpoint_worker_shards",
        "gauge",
        "worker shards serving connections",
    );
    prom_value(
        &mut out,
        "mpq_endpoint_worker_shards",
        snap.shards.len() as u64,
    );
    prom_header(
        &mut out,
        "mpq_endpoint_flight_events_total",
        "counter",
        "events the flight recorder has seen",
    );
    prom_value(
        &mut out,
        "mpq_endpoint_flight_events_total",
        snap.flight_recorded,
    );

    prom_header(
        &mut out,
        "mpq_shard_loop_iterations_total",
        "counter",
        "shard loop iterations, busy or idle",
    );
    prom_per_shard(&mut out, "mpq_shard_loop_iterations_total", snap, |s| {
        s.loop_iterations
    });
    prom_header(
        &mut out,
        "mpq_shard_busy_iterations_total",
        "counter",
        "shard loop iterations that made progress",
    );
    prom_per_shard(&mut out, "mpq_shard_busy_iterations_total", snap, |s| {
        s.busy_iterations
    });
    prom_header(
        &mut out,
        "mpq_shard_wakeups_total",
        "counter",
        "shard idle-to-busy transitions",
    );
    prom_per_shard(&mut out, "mpq_shard_wakeups_total", snap, |s| s.wakeups);
    prom_header(
        &mut out,
        "mpq_shard_queue_sent_total",
        "counter",
        "messages enqueued to the shard's ingress channel",
    );
    prom_per_shard(&mut out, "mpq_shard_queue_sent_total", snap, |s| {
        s.queue_sent
    });
    prom_header(
        &mut out,
        "mpq_shard_queue_received_total",
        "counter",
        "messages the shard drained off its ingress channel",
    );
    prom_per_shard(&mut out, "mpq_shard_queue_received_total", snap, |s| {
        s.queue_received
    });
    prom_header(
        &mut out,
        "mpq_shard_conns_active",
        "gauge",
        "connections currently owned by the shard",
    );
    prom_per_shard(&mut out, "mpq_shard_conns_active", snap, |s| s.conns_active);
    prom_header(
        &mut out,
        "mpq_shard_queue_occupancy",
        "gauge",
        "ingress-channel occupancy (sent minus received)",
    );
    prom_per_shard(&mut out, "mpq_shard_queue_occupancy", snap, |s| {
        s.queue_occupancy
    });

    prom_header(
        &mut out,
        "mpq_shard_loop_ns",
        "histogram",
        "busy shard-loop iteration wall time, nanoseconds (all shards)",
    );
    prom_histogram(&mut out, "mpq_shard_loop_ns", &snap.loop_ns);
    prom_header(
        &mut out,
        "mpq_shard_queue_depth",
        "histogram",
        "sampled ingress-channel depth (all shards)",
    );
    prom_histogram(&mut out, "mpq_shard_queue_depth", &snap.queue_depth);
    prom_header(
        &mut out,
        "mpq_endpoint_pool_outstanding",
        "histogram",
        "demux buffer-pool buffers loaned out, sampled per busy iteration",
    );
    prom_histogram(
        &mut out,
        "mpq_endpoint_pool_outstanding",
        &snap.pool_outstanding,
    );
    prom_header(
        &mut out,
        "mpq_backend_sqe_batch",
        "histogram",
        "datapath-backend entries per kernel submission boundary (all shards)",
    );
    prom_histogram(&mut out, "mpq_backend_sqe_batch", &snap.backend_sqe_batch);
    out
}

/// Renders a [`PlaneSnapshot`] as one JSON object on one line — the
/// periodic snapshot-writer format (a file of these is itself valid
/// `cargo xtask qlog-check` input) and the `/snapshot` HTTP body.
pub fn render_snapshot_json(snap: &PlaneSnapshot) -> String {
    let s = &snap.stats;
    let mut out = String::with_capacity(512);
    out.push_str(&format!(
        "{{\"kind\":\"endpoint_snapshot\",\"accepted\":{},\"active\":{},\"completed\":{},\
         \"failed\":{},\"closed\":{},\"rejected\":{},\"malformed\":{},\
         \"backpressure_drops\":{},\"datagrams_in\":{},\"wakeups\":{},\
         \"backend_submissions\":{},\"backend_completions\":{},\
         \"backend_fallbacks\":{},\"backend_sqe_batch_p99\":{},\
         \"loop_ns_p50\":{},\"loop_ns_p99\":{},\"queue_depth_p99\":{},\
         \"pool_outstanding_p99\":{},\"flight_recorded\":{},\"shards\":[",
        s.accepted,
        s.active,
        s.completed,
        s.failed,
        s.closed,
        s.rejected,
        s.malformed,
        s.backpressure_drops,
        s.datagrams_in,
        snap.wakeups,
        s.backend_submissions,
        s.backend_completions,
        s.backend_fallbacks,
        snap.backend_sqe_batch.quantile(0.99),
        snap.loop_ns.quantile(0.50),
        snap.loop_ns.quantile(0.99),
        snap.queue_depth.quantile(0.99),
        snap.pool_outstanding.quantile(0.99),
        snap.flight_recorded,
    ));
    for (i, sh) in snap.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"shard\":{},\"loop_iterations\":{},\"busy_iterations\":{},\"wakeups\":{},\
             \"queue_occupancy\":{},\"conns_active\":{},\"loop_ns_p99\":{}}}",
            sh.shard,
            sh.loop_iterations,
            sh.busy_iterations,
            sh.wakeups,
            sh.queue_occupancy,
            sh.conns_active,
            sh.loop_ns.quantile(0.99),
        ));
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------
// Scrape surface: HTTP server + periodic JSON-lines snapshot writer
// ---------------------------------------------------------------------

/// How long an accepted scrape connection may take to send its request.
const SCRAPE_READ_TIMEOUT: Duration = Duration::from_millis(500);
/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A minimal dependency-free scrape server over `std::net`:
///
/// * `GET /metrics` — Prometheus text exposition (0.0.4);
/// * `GET /snapshot` — the one-line JSON snapshot;
/// * `GET /flight` — the flight recorder as JSON lines, on demand.
///
/// One thread, non-blocking accept with a poll interval, one request
/// per connection (`Connection: close`). It serves *snapshots* of the
/// lock-free plane; scraping never touches a datapath lock.
#[derive(Debug)]
pub struct MetricsServer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    local: SocketAddr,
}

impl MetricsServer {
    /// Binds `addr` (port 0 picks a free port — see
    /// [`MetricsServer::local_addr`]) and serves `plane` until dropped.
    pub fn serve(addr: SocketAddr, plane: Arc<EndpointPlane>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("mpq-metrics".to_string())
                .spawn(move || serve_loop(&listener, &plane, &stop))?
        };
        Ok(MetricsServer {
            stop,
            handle: Some(handle),
            local,
        })
    }

    /// The bound address (resolves a port-0 bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        // Release pairs with the serve loop's Acquire load.
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_loop(listener: &TcpListener, plane: &EndpointPlane, stop: &AtomicBool) {
    loop {
        // Acquire pairs with the Release store in `Drop`.
        if stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_scrape(stream, plane),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Reads the request line and answers one route. Any IO error just
/// drops the connection — a broken scraper must never hurt the server.
fn handle_scrape(mut stream: TcpStream, plane: &EndpointPlane) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(SCRAPE_READ_TIMEOUT));
    let _ = stream.set_nonblocking(false);
    let mut buf = [0u8; 1024];
    let mut len = 0usize;
    // Read until the header terminator (or the buffer/timeout limit);
    // the request line is all that matters.
    while len < buf.len() {
        let Some(free) = buf.get_mut(len..) else {
            break;
        };
        match stream.read(free) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf.get(..len).is_some_and(contains_terminator) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(buf.get(..len).unwrap_or(&[]));
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(&plane.snapshot()),
        ),
        "/snapshot" => {
            let mut body = render_snapshot_json(&plane.snapshot());
            body.push('\n');
            ("200 OK", "application/json", body)
        }
        "/flight" => (
            "200 OK",
            "application/x-ndjson",
            plane.recorder.dump_json_lines(),
        ),
        "/" => (
            "200 OK",
            "text/plain; charset=utf-8",
            "mpq metrics endpoints: /metrics /snapshot /flight\n".to_string(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    respond(&mut stream, status, content_type, &body);
}

fn contains_terminator(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    use std::io::Write;
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Stop-check granularity of the snapshot writer's sleep.
const WRITER_POLL: Duration = Duration::from_millis(50);

/// A periodic JSON-lines snapshot writer: every `interval` it appends
/// one [`render_snapshot_json`] line for the plane to a file (created
/// fresh at spawn). A final line is written at drop so short runs
/// still leave at least one sample. The output file is valid
/// `cargo xtask qlog-check` input.
#[derive(Debug)]
pub struct SnapshotWriter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl SnapshotWriter {
    /// Creates `path` and starts sampling `plane` every `interval`.
    pub fn spawn(
        path: &str,
        plane: Arc<EndpointPlane>,
        interval: Duration,
    ) -> std::io::Result<SnapshotWriter> {
        let file = std::fs::File::create(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("mpq-snapshots".to_string())
                .spawn(move || writer_loop(file, &plane, interval, &stop))?
        };
        Ok(SnapshotWriter {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        // Release pairs with the writer loop's Acquire load.
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn writer_loop(file: std::fs::File, plane: &EndpointPlane, interval: Duration, stop: &AtomicBool) {
    use std::io::Write;
    let mut out = std::io::BufWriter::new(file);
    let write_line = |out: &mut std::io::BufWriter<std::fs::File>| {
        let mut line = render_snapshot_json(&plane.snapshot());
        line.push('\n');
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    };
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            // Acquire pairs with the Release store in `Drop`.
            if stop.load(Ordering::Acquire) {
                write_line(&mut out);
                return;
            }
            let step = WRITER_POLL.min(interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
        write_line(&mut out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_cell_ops() {
        let c = RelaxedCell::new(5);
        c.add(3);
        c.sub(2);
        assert_eq!(c.get(), 6);
        c.set(100);
        assert_eq!(c.get(), 100);
        c.record_max(50);
        assert_eq!(c.get(), 100, "record_max never lowers");
        c.record_max(150);
        assert_eq!(c.get(), 150);
    }

    #[test]
    fn atomic_histogram_matches_log_histogram() {
        let atomic = AtomicHistogram::default();
        let mut reference = LogHistogram::default();
        for v in [0u64, 1, 2, 3, 100, 5_000, 1 << 40, u64::MAX] {
            atomic.record(v);
            reference.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), reference.count());
        assert_eq!(snap.max(), reference.max());
        assert_eq!(snap.bucket_counts(), reference.bucket_counts());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(snap.quantile(q), reference.quantile(q));
        }
    }

    #[test]
    fn snapshot_delta_saturates() {
        let after = EndpointSnapshot {
            accepted: 10,
            closed: 7,
            ..EndpointSnapshot::default()
        };
        let before = EndpointSnapshot {
            accepted: 4,
            closed: 9, // out-of-order reads must not underflow
            ..EndpointSnapshot::default()
        };
        let d = after.delta(&before);
        assert_eq!(d.accepted, 6);
        assert_eq!(d.closed, 0);
    }

    #[test]
    fn plane_shard_is_total_and_snapshot_aggregates() {
        let plane = EndpointPlane::new(2);
        plane.shard(0).wakeups.add(2);
        plane.shard(1).wakeups.add(3);
        plane.shard(99).wakeups.add(1000); // lands on the spare
        plane.shard(0).loop_ns.record(500);
        plane.shard(1).loop_ns.record(700);
        plane.stats.accepted.add(4);
        let snap = plane.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.wakeups, 5, "spare plane excluded");
        assert_eq!(snap.loop_ns.count(), 2, "merged across shards");
        assert_eq!(snap.stats.accepted, 4);
    }

    #[test]
    fn queue_occupancy_is_sent_minus_received() {
        let plane = ShardPlane::default();
        plane.queue_sent.add(10);
        plane.queue_received.add(7);
        assert_eq!(plane.queue_occupancy(), 3);
        plane.queue_received.add(5); // racing reads must not underflow
        assert_eq!(plane.queue_occupancy(), 0);
    }

    #[test]
    fn flight_recorder_wraps_keeping_newest() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(FlightKind::Accept, i, 0, 0);
        }
        let events: Vec<u64> = r.events().iter().map(|e| e.cid).collect();
        assert_eq!(events, vec![6, 7, 8, 9], "last 4, oldest first");
        assert_eq!(r.total_recorded(), 10);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn flight_dump_is_json_lines_with_header() {
        let r = FlightRecorder::new(8);
        r.record(FlightKind::Backpressure, 0xAB, 2, 511);
        let dump = r.dump_json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"flight_header\""));
        assert!(lines[1].contains("\"kind\":\"backpressure\""));
        assert!(lines[1].contains("\"cid\":171"));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn prometheus_render_has_families_and_cumulative_buckets() {
        let plane = EndpointPlane::new(2);
        plane.stats.accepted.add(3);
        plane.shard(0).loop_ns.record(10);
        plane.shard(0).loop_ns.record(1000);
        let text = render_prometheus(&plane.snapshot());
        assert!(text.contains("# TYPE mpq_endpoint_accepted_total counter"));
        assert!(text.contains("mpq_endpoint_accepted_total 3"));
        assert!(text.contains("mpq_shard_wakeups_total{shard=\"1\"} 0"));
        assert!(text.contains("mpq_shard_loop_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("mpq_shard_loop_ns_count 2"));
        assert!(text.contains("mpq_shard_loop_ns_sum 1010"));
    }

    #[test]
    fn snapshot_json_is_one_object_per_line() {
        let plane = EndpointPlane::new(1);
        plane.stats.datagrams_in.add(42);
        let line = render_snapshot_json(&plane.snapshot());
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"kind\":\"endpoint_snapshot\""));
        assert!(line.contains("\"datagrams_in\":42"));
        assert!(line.ends_with("]}"));
    }

    #[test]
    fn metrics_server_serves_all_routes() {
        use std::io::{Read, Write};
        let plane = Arc::new(EndpointPlane::new(1));
        plane.stats.accepted.add(7);
        plane.recorder.record(FlightKind::Accept, 1, 0, 0);
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let server = MetricsServer::serve(addr, Arc::clone(&plane)).expect("bind metrics");
        let fetch = |path: &str| -> String {
            let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
            conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .expect("request");
            let mut body = String::new();
            conn.read_to_string(&mut body).expect("response");
            body
        };
        let metrics = fetch("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("mpq_endpoint_accepted_total 7"));
        let snapshot = fetch("/snapshot");
        assert!(snapshot.contains("\"accepted\":7"));
        let flight = fetch("/flight");
        assert!(flight.contains("\"kind\":\"accept\""));
        assert!(fetch("/nope").starts_with("HTTP/1.1 404"));
        drop(server); // stops and joins the serve thread
    }

    #[test]
    fn snapshot_writer_leaves_json_lines() {
        let dir = std::env::temp_dir().join(format!("mpq-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.jsonl");
        let path_str = path.to_str().unwrap();
        let plane = Arc::new(EndpointPlane::new(1));
        plane.stats.accepted.add(1);
        {
            let w = SnapshotWriter::spawn(path_str, Arc::clone(&plane), Duration::from_secs(60))
                .expect("spawn writer");
            drop(w); // final sample on drop
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(line.starts_with("{\"kind\":\"endpoint_snapshot\""));
            assert!(line.ends_with("]}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
