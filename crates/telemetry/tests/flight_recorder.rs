//! Property tests for the flight recorder (DESIGN.md §15): wraparound
//! keeps exactly the most recent events in order, and the record path
//! never allocates after construction — measured, not assumed, with
//! the workspace's counting global allocator.

use mpquic_telemetry::endpoint::{EndpointPlane, FlightKind, FlightRecorder};
use mpquic_util::alloc_count::{self, CountingAlloc};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Every kind, in a fixed order so event `i` is reconstructible from
/// its index alone.
const KINDS: [FlightKind; 7] = [
    FlightKind::Accept,
    FlightKind::Retire,
    FlightKind::Backpressure,
    FlightKind::Shed,
    FlightKind::Malformed,
    FlightKind::Teardown,
    FlightKind::SloFail,
];

/// The deterministic i-th event (kind, cid, shard, value).
fn event(i: u64) -> (FlightKind, u64, u32, u64) {
    (KINDS[(i % 7) as usize], i.wrapping_mul(31), i as u32, i)
}

proptest! {
    /// After `count` records into a `capacity` ring, the kept events
    /// are exactly the last `min(count, capacity)`, oldest first.
    #[test]
    fn wraparound_keeps_the_most_recent_events(capacity in 1usize..48, count in 0u64..2000) {
        let recorder = FlightRecorder::new(capacity);
        for i in 0..count {
            let (kind, cid, shard, value) = event(i);
            recorder.record(kind, cid, shard, value);
        }
        prop_assert_eq!(recorder.total_recorded(), count);
        let events = recorder.events();
        let kept = (count as usize).min(capacity);
        prop_assert_eq!(events.len(), kept);
        let first = count - kept as u64;
        for (offset, got) in events.iter().enumerate() {
            let (kind, cid, shard, value) = event(first + offset as u64);
            prop_assert_eq!(got.kind, kind);
            prop_assert_eq!(got.cid, cid);
            prop_assert_eq!(got.shard, shard);
            prop_assert_eq!(got.value, value);
        }
        // Timestamps never run backwards within the kept window.
        for pair in events.windows(2) {
            prop_assert!(pair[0].at_us <= pair[1].at_us);
        }
    }

    /// The dump is self-describing even across wraparound: its header
    /// carries the true totals and one line per kept event follows.
    #[test]
    fn dump_header_matches_ring_state(capacity in 1usize..16, count in 0u64..200) {
        let recorder = FlightRecorder::new(capacity);
        for i in 0..count {
            let (kind, cid, shard, value) = event(i);
            recorder.record(kind, cid, shard, value);
        }
        let dump = recorder.dump_json_lines();
        let kept = (count as usize).min(capacity);
        prop_assert_eq!(dump.lines().count(), 1 + kept);
        let header = dump.lines().next().unwrap_or("");
        prop_assert!(header.contains(&format!("\"capacity\":{capacity}")));
        prop_assert!(header.contains(&format!("\"recorded\":{count}")));
        prop_assert!(header.contains(&format!("\"kept\":{kept}")));
    }
}

/// Recording — through the recorder alone and through a full plane's
/// counters and histograms — performs zero allocations once the plane
/// is built. This is the ISSUE's steady-state budget as a unit test
/// rather than a benchmark.
#[test]
fn record_path_never_allocates_after_construction() {
    let plane = EndpointPlane::with_flight_capacity(4, 64);
    let shard = plane.shard(1);

    alloc_count::reset_thread_counts();
    for i in 0..10_000u64 {
        let (kind, cid, shard_idx, value) = event(i);
        plane.recorder.record(kind, cid, shard_idx, value);
        plane.stats.datagrams_in.add(1);
        plane.stats.active.set(i % 7);
        shard.loop_iterations.add(1);
        shard.loop_ns.record(i * 37);
        shard.queue_depth.record(i % 513);
        plane.pool_outstanding.record(i % 65);
    }
    let counts = alloc_count::thread_counts();
    assert_eq!(
        counts.allocs, 0,
        "metrics/flight record path allocated {} time(s)",
        counts.allocs
    );
}
