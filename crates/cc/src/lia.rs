//! LIA — the Linked-Increases Algorithm (RFC 6356), MPTCP's original
//! coupled congestion controller.
//!
//! Kept as an ablation baseline: the paper chose OLIA over LIA because LIA
//! is not Pareto-optimal (Khalili et al., CoNEXT'12). The increase on path
//! `r` per acked MSS is
//!
//! ```text
//!   min( α / w_total , 1 / w_r )
//! ```
//!
//! with the aggressiveness factor
//!
//! ```text
//!   α = w_total · max_p(w_p/rtt_p²) / (Σ_p w_p/rtt_p)²
//! ```

use mpquic_util::SimTime;
use std::time::Duration;

use crate::{CongestionController, PathSnapshot, INITIAL_WINDOW_SEGMENTS, MIN_WINDOW_SEGMENTS};

/// LIA (RFC 6356) controller for one path of a coupled connection.
#[derive(Debug)]
pub struct Lia {
    mss: u64,
    cwnd: f64,
    ssthresh: u64,
    acked_since_loss: u64,
    prev_loss_interval: u64,
}

impl Lia {
    /// Creates a controller with the standard initial window.
    pub fn new(mss: u64) -> Lia {
        Lia {
            mss,
            cwnd: (INITIAL_WINDOW_SEGMENTS * mss) as f64,
            ssthresh: u64::MAX,
            acked_since_loss: 0,
            prev_loss_interval: 0,
        }
    }

    fn min_window(&self) -> u64 {
        MIN_WINDOW_SEGMENTS * self.mss
    }
}

impl CongestionController for Lia {
    fn on_packet_sent(&mut self, _now: SimTime, _bytes: u64) {}

    fn on_ack(
        &mut self,
        _now: SimTime,
        bytes: u64,
        rtt: Duration,
        paths: &[PathSnapshot],
        _self_index: usize,
    ) {
        self.acked_since_loss = self.acked_since_loss.saturating_add(bytes);
        if (self.cwnd as u64) < self.ssthresh {
            // Slow start with Appropriate Byte Counting (RFC 3465, L=2).
            self.cwnd += bytes.min(2 * self.mss) as f64;
            return;
        }
        let mss = self.mss as f64;
        let w_r = (self.cwnd / mss).max(1.0);
        let acked_mss = bytes as f64 / mss;
        let (w_total, alpha) = if paths.len() >= 2 {
            let w_total: f64 = paths.iter().map(|p| (p.cwnd as f64 / mss).max(1.0)).sum();
            let best: f64 = paths
                .iter()
                .map(|p| {
                    let w = (p.cwnd as f64 / mss).max(1.0);
                    let r = p.srtt.as_secs_f64().max(1e-4);
                    w / (r * r)
                })
                .fold(0.0, f64::max);
            let denom: f64 = paths
                .iter()
                .map(|p| {
                    let w = (p.cwnd as f64 / mss).max(1.0);
                    let r = p.srtt.as_secs_f64().max(1e-4);
                    w / r
                })
                .sum();
            (w_total, w_total * best / (denom * denom).max(1e-12))
        } else {
            // Single path: degenerate to Reno.
            let _ = rtt;
            (w_r, 1.0)
        };
        let increase_per_mss = (alpha / w_total).min(1.0 / w_r);
        self.cwnd += increase_per_mss * acked_mss * mss;
        self.cwnd = self.cwnd.max(self.min_window() as f64);
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        self.prev_loss_interval = self.acked_since_loss;
        self.acked_since_loss = 0;
        self.cwnd = (self.cwnd / 2.0).max(self.min_window() as f64);
        self.ssthresh = self.cwnd as u64;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.prev_loss_interval = self.acked_since_loss;
        self.acked_since_loss = 0;
        self.ssthresh = (self.cwnd as u64 / 2).max(self.min_window());
        self.cwnd = self.min_window() as f64;
    }

    fn window(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn loss_interval_bytes(&self) -> u64 {
        self.acked_since_loss.max(self.prev_loss_interval)
    }

    fn name(&self) -> &'static str {
        "lia"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1250;

    fn snap(cwnd: u64, rtt_ms: u64) -> PathSnapshot {
        PathSnapshot {
            cwnd,
            srtt: Duration::from_millis(rtt_ms),
            loss_interval_bytes: 0,
        }
    }

    #[test]
    fn single_path_degenerates_to_reno() {
        let mut cc = Lia::new(MSS);
        cc.on_congestion_event(SimTime::ZERO);
        let w = cc.window();
        cc.on_ack(
            SimTime::ZERO,
            w,
            Duration::from_millis(40),
            &[snap(w, 40)],
            0,
        );
        let growth = cc.window() - w;
        assert!(
            (MSS * 9 / 10..=MSS * 11 / 10).contains(&growth),
            "expected ~1 MSS growth, got {growth}"
        );
    }

    #[test]
    fn increase_capped_by_uncoupled_reno() {
        // The min() term: LIA on any path never grows faster than an
        // independent Reno flow on that path would.
        let paths = vec![snap(10 * MSS, 10), snap(100 * MSS, 500)];
        let mut cc = Lia::new(MSS);
        cc.on_congestion_event(SimTime::ZERO);
        cc.cwnd = (10 * MSS) as f64;
        cc.ssthresh = 5 * MSS;
        let w = cc.window();
        cc.on_ack(SimTime::ZERO, w, Duration::from_millis(10), &paths, 0);
        assert!(cc.window() - w <= MSS + MSS / 10);
    }

    #[test]
    fn coupled_total_growth_bounded() {
        let w = 20 * MSS;
        let paths = vec![snap(w, 40), snap(w, 40)];
        let mut a = Lia::new(MSS);
        let mut b = Lia::new(MSS);
        for cc in [&mut a, &mut b] {
            cc.on_congestion_event(SimTime::ZERO);
            cc.cwnd = w as f64;
            cc.ssthresh = w / 2;
        }
        a.on_ack(SimTime::ZERO, w, Duration::from_millis(40), &paths, 0);
        b.on_ack(SimTime::ZERO, w, Duration::from_millis(40), &paths, 1);
        let total = (a.window() - w) + (b.window() - w);
        assert!(
            total <= MSS + MSS / 10,
            "coupled total {total} > Reno {MSS}"
        );
    }

    #[test]
    fn loss_and_rto_behaviour() {
        let mut cc = Lia::new(MSS);
        cc.on_ack(SimTime::ZERO, 20 * MSS, Duration::from_millis(40), &[], 0);
        let before = cc.window();
        cc.on_congestion_event(SimTime::ZERO);
        assert_eq!(cc.window(), before / 2);
        cc.on_rto(SimTime::ZERO);
        assert_eq!(cc.window(), MIN_WINDOW_SEGMENTS * MSS);
    }
}
