//! OLIA — the Opportunistic Linked-Increases Algorithm
//! (Khalili, Gast, Popovic, Upadhyay, Le Boudec — CoNEXT 2012).
//!
//! OLIA is the coupled multipath congestion controller the paper uses for
//! both MPTCP and MPQUIC. Its congestion-avoidance increase on path `r`,
//! per MSS of acknowledged data, is
//!
//! ```text
//!   w_r/rtt_r²
//!   ────────────────  +  α_r / w_r        (windows in MSS, rtt in seconds)
//!   (Σ_p w_p/rtt_p)²
//! ```
//!
//! The first term is the coupled increase that makes the aggregate flow
//! shift load toward less-congested paths; the α term *opportunistically*
//! re-balances windows: paths that look best by their inter-loss volume
//! (`ℓ_p² / rtt_p`) but currently hold small windows receive extra credit,
//! paid for by the paths holding the largest windows.
//!
//! The decrease is standard halving, at most once per round trip.

use mpquic_util::SimTime;
use std::time::Duration;

use crate::{CongestionController, PathSnapshot, INITIAL_WINDOW_SEGMENTS, MIN_WINDOW_SEGMENTS};

/// OLIA congestion controller for one path of a coupled connection.
#[derive(Debug)]
pub struct Olia {
    mss: u64,
    /// Window, tracked in f64 bytes so sub-MSS increments accumulate.
    cwnd: f64,
    ssthresh: u64,
    /// Bytes acked in the current inter-loss epoch (`l1` in the OLIA paper).
    l1: u64,
    /// Bytes acked in the previous inter-loss epoch (`l2`).
    l2: u64,
}

impl Olia {
    /// Creates a controller with the standard initial window.
    pub fn new(mss: u64) -> Olia {
        Olia {
            mss,
            cwnd: (INITIAL_WINDOW_SEGMENTS * mss) as f64,
            ssthresh: u64::MAX,
            l1: 0,
            l2: 0,
        }
    }

    fn min_window(&self) -> u64 {
        MIN_WINDOW_SEGMENTS * self.mss
    }

    /// OLIA's path-quality metric `ℓ_p² / rtt_p` used to pick the "best"
    /// paths (expected AIMD throughput between losses).
    fn quality(snapshot: &PathSnapshot) -> f64 {
        let l = snapshot.loss_interval_bytes.max(1) as f64;
        l * l / snapshot.srtt.as_secs_f64().max(1e-4)
    }

    /// Computes `α_r` for the path at `self_index`.
    ///
    /// * `M` — paths with the (near-)largest window.
    /// * `B` — paths with the (near-)best quality metric.
    /// * collected = `B \ M`: best paths that still run small windows.
    ///
    /// If collected is non-empty, each collected path gets
    /// `+1/(n·|collected|)` and each max-window path pays
    /// `−1/(n·|M|)`; otherwise every α is zero.
    fn alpha(paths: &[PathSnapshot], self_index: usize) -> f64 {
        let n = paths.len();
        if n < 2 {
            return 0.0;
        }
        let max_cwnd = paths.iter().map(|p| p.cwnd).max().unwrap_or(0);
        let best_quality = paths.iter().map(Self::quality).fold(0.0f64, f64::max);
        let in_m = |p: &PathSnapshot| p.cwnd >= max_cwnd; // exact max
        let in_b = |p: &PathSnapshot| Self::quality(p) >= best_quality * 0.999;
        let collected: Vec<usize> = (0..n)
            .filter(|&i| in_b(&paths[i]) && !in_m(&paths[i]))
            .collect();
        if collected.is_empty() {
            return 0.0;
        }
        let m_count = paths.iter().filter(|p| in_m(p)).count().max(1);
        if collected.contains(&self_index) {
            1.0 / (n as f64 * collected.len() as f64)
        } else if in_m(&paths[self_index]) {
            -1.0 / (n as f64 * m_count as f64)
        } else {
            0.0
        }
    }
}

impl CongestionController for Olia {
    fn on_packet_sent(&mut self, _now: SimTime, _bytes: u64) {}

    fn on_ack(
        &mut self,
        _now: SimTime,
        bytes: u64,
        rtt: Duration,
        paths: &[PathSnapshot],
        self_index: usize,
    ) {
        self.l1 = self.l1.saturating_add(bytes);
        if (self.cwnd as u64) < self.ssthresh {
            // Slow start with Appropriate Byte Counting (RFC 3465, L=2).
            self.cwnd += bytes.min(2 * self.mss) as f64;
            return;
        }
        let mss = self.mss as f64;
        // Work in MSS units as in the OLIA paper.
        let w_r = (self.cwnd / mss).max(1.0);
        let rtt_r = rtt.as_secs_f64().max(1e-4);
        let denom: f64 = if paths.is_empty() {
            w_r / rtt_r
        } else {
            paths
                .iter()
                .map(|p| (p.cwnd as f64 / mss).max(1.0) / p.srtt.as_secs_f64().max(1e-4))
                .sum()
        };
        let coupled = (w_r / (rtt_r * rtt_r)) / (denom * denom).max(1e-12);
        let alpha = Self::alpha(paths, self_index);
        let per_mss_increase = coupled + alpha / w_r;
        let acked_mss = bytes as f64 / mss;
        self.cwnd += per_mss_increase * acked_mss * mss;
        self.cwnd = self.cwnd.max(self.min_window() as f64);
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        self.l2 = self.l1;
        self.l1 = 0;
        self.cwnd = (self.cwnd / 2.0).max(self.min_window() as f64);
        self.ssthresh = self.cwnd as u64;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.l2 = self.l1;
        self.l1 = 0;
        self.ssthresh = (self.cwnd as u64 / 2).max(self.min_window());
        self.cwnd = self.min_window() as f64;
    }

    fn window(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn loss_interval_bytes(&self) -> u64 {
        self.l1.max(self.l2)
    }

    fn name(&self) -> &'static str {
        "olia"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1250;

    fn snap(cwnd: u64, rtt_ms: u64, loss_interval: u64) -> PathSnapshot {
        PathSnapshot {
            cwnd,
            srtt: Duration::from_millis(rtt_ms),
            loss_interval_bytes: loss_interval,
        }
    }

    fn force_ca(cc: &mut Olia) {
        cc.on_congestion_event(SimTime::ZERO);
    }

    #[test]
    fn slow_start_then_coupled_avoidance() {
        let mut cc = Olia::new(MSS);
        let w0 = cc.window();
        for _ in 0..(w0 / MSS) {
            cc.on_ack(
                SimTime::ZERO,
                MSS,
                Duration::from_millis(40),
                &[snap(w0, 40, 0)],
                0,
            );
        }
        assert_eq!(cc.window(), 2 * w0);
        force_ca(&mut cc);
        let w1 = cc.window();
        cc.on_ack(
            SimTime::ZERO,
            w1,
            Duration::from_millis(40),
            &[snap(w1, 40, 10_000)],
            0,
        );
        // Single-path OLIA in CA grows like Reno: about +1 MSS per window.
        let growth = cc.window() - w1;
        assert!(
            (MSS / 2..=2 * MSS).contains(&growth),
            "single-path CA growth should be ~1 MSS, got {growth}"
        );
    }

    #[test]
    fn coupled_increase_favors_lower_rtt_path() {
        // Two equal-window paths, one with a much lower RTT: the low-RTT
        // path must grow faster per acked byte (it contributes more to the
        // aggregate rate).
        let paths = vec![snap(20 * MSS, 10, 100_000), snap(20 * MSS, 100, 100_000)];
        let mut fast = Olia::new(MSS);
        let mut slow = Olia::new(MSS);
        // Force both into congestion avoidance at the same window.
        force_ca(&mut fast);
        force_ca(&mut slow);
        fast.cwnd = (20 * MSS) as f64;
        slow.cwnd = (20 * MSS) as f64;
        fast.ssthresh = 10 * MSS;
        slow.ssthresh = 10 * MSS;
        fast.on_ack(
            SimTime::ZERO,
            10 * MSS,
            Duration::from_millis(10),
            &paths,
            0,
        );
        slow.on_ack(
            SimTime::ZERO,
            10 * MSS,
            Duration::from_millis(100),
            &paths,
            1,
        );
        let fast_growth = fast.window() - 20 * MSS;
        let slow_growth = slow.window() - 20 * MSS;
        assert!(
            fast_growth > slow_growth,
            "low-RTT path should grow faster: {fast_growth} vs {slow_growth}"
        );
    }

    #[test]
    fn alpha_moves_window_toward_best_underused_path() {
        // Path 0: best quality (huge inter-loss volume) but small window.
        // Path 1: max window. α must be positive for 0, negative for 1.
        let paths = vec![snap(5 * MSS, 20, 1_000_000), snap(50 * MSS, 20, 10_000)];
        let a0 = Olia::alpha(&paths, 0);
        let a1 = Olia::alpha(&paths, 1);
        assert!(
            a0 > 0.0,
            "underused best path should get positive alpha: {a0}"
        );
        assert!(a1 < 0.0, "max-window path should pay: {a1}");
        // With n=2, |collected|=1, |M|=1: α = ±1/2.
        assert!((a0 - 0.5).abs() < 1e-9);
        assert!((a1 + 0.5).abs() < 1e-9);
    }

    #[test]
    fn alpha_zero_when_best_path_has_max_window() {
        let paths = vec![snap(50 * MSS, 20, 1_000_000), snap(5 * MSS, 20, 10_000)];
        assert_eq!(Olia::alpha(&paths, 0), 0.0);
        assert_eq!(Olia::alpha(&paths, 1), 0.0);
    }

    #[test]
    fn alpha_zero_for_single_path() {
        let paths = vec![snap(10 * MSS, 20, 10_000)];
        assert_eq!(Olia::alpha(&paths, 0), 0.0);
    }

    #[test]
    fn total_aggressiveness_bounded_by_reno() {
        // Sum of coupled increases across two identical paths should not
        // exceed what a single Reno flow would gain on one of them —
        // the fairness property coupled CC exists for.
        let w = 20 * MSS;
        let paths = vec![snap(w, 40, 50_000), snap(w, 40, 50_000)];
        let mut a = Olia::new(MSS);
        let mut b = Olia::new(MSS);
        for cc in [&mut a, &mut b] {
            force_ca(cc);
            cc.cwnd = w as f64;
            cc.ssthresh = w / 2;
        }
        a.on_ack(SimTime::ZERO, w, Duration::from_millis(40), &paths, 0);
        b.on_ack(SimTime::ZERO, w, Duration::from_millis(40), &paths, 1);
        let total_growth = (a.window() - w) + (b.window() - w);
        // A Reno flow acking one window grows by exactly 1 MSS.
        assert!(
            total_growth <= MSS + MSS / 10,
            "coupled growth {total_growth} exceeds Reno's {MSS}"
        );
    }

    #[test]
    fn loss_halves_and_tracks_interloss_epochs() {
        let mut cc = Olia::new(MSS);
        cc.on_ack(SimTime::ZERO, 100_000, Duration::from_millis(40), &[], 0);
        assert_eq!(cc.loss_interval_bytes(), 100_000);
        let before = cc.window();
        cc.on_congestion_event(SimTime::ZERO);
        assert_eq!(cc.window(), before / 2);
        // l2 now holds the old epoch.
        assert_eq!(cc.loss_interval_bytes(), 100_000);
    }
}
