//! CUBIC congestion control (RFC 8312).
//!
//! CUBIC is the default controller of the Linux TCP stack and of
//! gQUIC-era quic-go/Chromium — the pairing the paper uses for both
//! single-path protocols. Window growth in congestion avoidance follows
//! the cubic function `W(t) = C·(t−K)³ + W_max` with a Reno-friendly
//! floor, giving the fast-recovery-to-plateau behaviour that matters in
//! the high-BDP scenarios of Figs. 7–8.

use mpquic_util::SimTime;
use std::time::Duration;

use crate::{CongestionController, PathSnapshot, INITIAL_WINDOW_SEGMENTS, MIN_WINDOW_SEGMENTS};

/// CUBIC aggressiveness constant (segments/sec³), per RFC 8312.
const C: f64 = 0.4;
/// Multiplicative decrease factor.
const BETA: f64 = 0.7;

/// CUBIC congestion controller for one path.
#[derive(Debug)]
pub struct Cubic {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Window size (bytes) just before the last congestion event.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Time (seconds from epoch start) at which W(t) returns to `w_max`.
    k: f64,
    /// Reno-friendly companion window estimate, bytes.
    w_est: f64,
    /// Bytes acked since the last loss, for the OLIA `ℓ` snapshot.
    acked_since_loss: u64,
    prev_loss_interval: u64,
}

impl Cubic {
    /// Creates a controller with the standard initial window.
    pub fn new(mss: u64) -> Cubic {
        Cubic {
            mss,
            cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            ssthresh: u64::MAX,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            acked_since_loss: 0,
            prev_loss_interval: 0,
        }
    }

    fn min_window(&self) -> u64 {
        MIN_WINDOW_SEGMENTS * self.mss
    }

    /// The cubic function in bytes, `t` seconds into the epoch.
    fn w_cubic(&self, t: f64) -> f64 {
        let mss = self.mss as f64;
        C * mss * (t - self.k).powi(3) + self.w_max
    }
}

impl CongestionController for Cubic {
    fn on_packet_sent(&mut self, _now: SimTime, _bytes: u64) {}

    fn on_ack(
        &mut self,
        now: SimTime,
        bytes: u64,
        rtt: Duration,
        _paths: &[PathSnapshot],
        _self_index: usize,
    ) {
        self.acked_since_loss = self.acked_since_loss.saturating_add(bytes);
        if self.cwnd < self.ssthresh {
            // Slow start with Appropriate Byte Counting (RFC 3465, L=2).
            self.cwnd += bytes.min(2 * self.mss);
            return;
        }
        let mss = self.mss as f64;
        let epoch_start = *self.epoch_start.get_or_insert_with(|| {
            // New congestion-avoidance epoch: compute K from how far the
            // current window sits below the last maximum.
            let cwnd = self.cwnd as f64;
            if self.w_max <= cwnd {
                self.w_max = cwnd;
                self.k = 0.0;
            } else {
                self.k = ((self.w_max - cwnd) / (C * mss)).cbrt();
            }
            self.w_est = cwnd;
            now
        });
        let t = now.saturating_duration_since(epoch_start).as_secs_f64();
        let rtt_s = rtt.as_secs_f64().max(1e-4);
        // Reno-friendly estimate grows like AIMD with CUBIC's beta:
        // 3(1-β)/(1+β) MSS per RTT-equivalent of acked data.
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * mss * (bytes as f64 / self.cwnd as f64);
        // Target one RTT into the future, per RFC 8312 §4.1.
        let target = self.w_cubic(t + rtt_s);
        let cwnd = self.cwnd as f64;
        let next = if target > cwnd {
            // Concave/convex region: close the gap over one cwnd of ACKs.
            cwnd + (target - cwnd) * (bytes as f64 / cwnd)
        } else {
            // At/over the plateau: probe gently (~1.5% of cwnd per cwnd acked).
            cwnd + 0.015 * mss * (bytes as f64 / cwnd).max(0.01)
        };
        self.cwnd = next.max(self.w_est).max(self.min_window() as f64) as u64;
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        self.prev_loss_interval = self.acked_since_loss;
        self.acked_since_loss = 0;
        let cwnd = self.cwnd as f64;
        // Fast convergence (RFC 8312 §4.6): release bandwidth faster when
        // the plateau is shrinking.
        self.w_max = if cwnd < self.w_max {
            cwnd * (1.0 + BETA) / 2.0
        } else {
            cwnd
        };
        self.cwnd = ((cwnd * BETA) as u64).max(self.min_window());
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.prev_loss_interval = self.acked_since_loss;
        self.acked_since_loss = 0;
        self.w_max = self.cwnd as f64;
        self.ssthresh = ((self.cwnd as f64 * BETA) as u64).max(self.min_window());
        self.cwnd = self.min_window();
        self.epoch_start = None;
    }

    fn window(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn loss_interval_bytes(&self) -> u64 {
        self.acked_since_loss.max(self.prev_loss_interval)
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1250;

    /// Feeds `bytes` of acknowledgement in MSS-sized chunks (how acks
    /// really arrive; ABC caps per-ack slow-start growth).
    fn ack_at(cc: &mut Cubic, now_ms: u64, bytes: u64) {
        let mut left = bytes;
        while left > 0 {
            let chunk = left.min(MSS);
            cc.on_ack(
                SimTime::from_millis(now_ms),
                chunk,
                Duration::from_millis(40),
                &[],
                0,
            );
            left -= chunk;
        }
    }

    #[test]
    fn slow_start_grows_exponentially() {
        let mut cc = Cubic::new(MSS);
        let w0 = cc.window();
        ack_at(&mut cc, 10, w0);
        assert_eq!(cc.window(), 2 * w0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn loss_applies_beta_decrease() {
        let mut cc = Cubic::new(MSS);
        ack_at(&mut cc, 10, 20 * MSS);
        let before = cc.window();
        cc.on_congestion_event(SimTime::from_millis(20));
        let after = cc.window();
        assert!(
            (after as f64 - before as f64 * BETA).abs() <= MSS as f64,
            "expected ~{} got {}",
            before as f64 * BETA,
            after
        );
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn cubic_recovers_toward_w_max() {
        let mut cc = Cubic::new(MSS);
        // Grow to a sizeable window, then lose.
        for i in 0..10 {
            let w = cc.window();
            ack_at(&mut cc, 10 + i, w);
        }
        let peak = cc.window();
        cc.on_congestion_event(SimTime::from_millis(50));
        let floor = cc.window();
        assert!(floor < peak);
        // Ack steadily past the epoch's K (~20 s for this drop): the window
        // must climb back toward and beyond the old maximum.
        let mut now_ms = 100;
        for _ in 0..2500 {
            let w = cc.window();
            ack_at(&mut cc, now_ms, w / 2);
            now_ms += 20;
        }
        assert!(
            cc.window() > peak,
            "cubic should eventually exceed old w_max: {} vs peak {}",
            cc.window(),
            peak
        );
    }

    #[test]
    fn growth_is_concave_then_convex() {
        let mut cc = Cubic::new(MSS);
        for i in 0..8 {
            let w = cc.window();
            ack_at(&mut cc, 10 + i, w);
        }
        cc.on_congestion_event(SimTime::from_millis(60));
        let w_max_after_drop = cc.w_max;
        // Ack half the window every 10 ms so cwnd tracks the cubic curve,
        // and record per-step growth.
        let mut deltas = Vec::new();
        let mut prev = cc.window();
        let mut now_ms = 100;
        for _ in 0..2400 {
            let w = cc.window();
            ack_at(&mut cc, now_ms, w / 2);
            now_ms += 10;
            deltas.push(cc.window() as i64 - prev as i64);
            prev = cc.window();
        }
        // Concave region: growth right after the drop must exceed growth
        // near the plateau (K is ~12.4 s in, i.e. around iteration 1240).
        let early: i64 = deltas[..200].iter().sum();
        let mid: i64 = deltas[1140..1340].iter().sum();
        assert!(
            early > mid,
            "concave region should outgrow plateau: early={early} mid={mid}"
        );
        // Convex region: after passing K, the window exceeds the plateau.
        assert!(
            cc.window() as f64 > w_max_after_drop,
            "window {} should pass the plateau {w_max_after_drop}",
            cc.window()
        );
    }

    #[test]
    fn fast_convergence_reduces_w_max() {
        let mut cc = Cubic::new(MSS);
        for i in 0..10 {
            let w = cc.window();
            ack_at(&mut cc, 10 + i, w);
        }
        cc.on_congestion_event(SimTime::from_millis(30));
        let w_max_1 = cc.w_max;
        // Second loss before recovering: w_max should shrink below cwnd's
        // plain value (fast convergence).
        cc.on_congestion_event(SimTime::from_millis(40));
        assert!(cc.w_max < w_max_1);
    }

    #[test]
    fn rto_collapses_window() {
        let mut cc = Cubic::new(MSS);
        ack_at(&mut cc, 10, 50 * MSS);
        cc.on_rto(SimTime::from_millis(30));
        assert_eq!(cc.window(), MIN_WINDOW_SEGMENTS * MSS);
        assert!(cc.in_slow_start() || cc.window() <= cc.ssthresh());
    }
}
