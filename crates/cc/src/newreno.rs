//! NewReno AIMD congestion control (RFC 5681/6582 semantics).

use mpquic_util::SimTime;
use std::time::Duration;

use crate::{CongestionController, PathSnapshot, INITIAL_WINDOW_SEGMENTS, MIN_WINDOW_SEGMENTS};

/// Classic AIMD: slow start to `ssthresh`, then +1 MSS per RTT; halve on
/// congestion.
#[derive(Debug)]
pub struct NewReno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Bytes acked since the last loss (also serves as the OLIA `ℓ`
    /// estimate when NewReno paths are snapshotted).
    acked_since_loss: u64,
    prev_loss_interval: u64,
}

impl NewReno {
    /// Creates a controller with the standard initial window.
    pub fn new(mss: u64) -> NewReno {
        NewReno {
            mss,
            cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            ssthresh: u64::MAX,
            acked_since_loss: 0,
            prev_loss_interval: 0,
        }
    }

    fn min_window(&self) -> u64 {
        MIN_WINDOW_SEGMENTS * self.mss
    }
}

impl CongestionController for NewReno {
    fn on_packet_sent(&mut self, _now: SimTime, _bytes: u64) {}

    fn on_ack(
        &mut self,
        _now: SimTime,
        bytes: u64,
        _rtt: Duration,
        _paths: &[PathSnapshot],
        _self_index: usize,
    ) {
        self.acked_since_loss = self.acked_since_loss.saturating_add(bytes);
        if self.cwnd < self.ssthresh {
            // Slow start with Appropriate Byte Counting (RFC 3465, L=2):
            // at most 2 MSS of growth per ACK, however much it covers.
            self.cwnd += bytes.min(2 * self.mss);
        } else {
            // Congestion avoidance: +MSS per cwnd of acked data.
            self.cwnd += (self.mss * bytes) / self.cwnd.max(1);
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        self.prev_loss_interval = self.acked_since_loss;
        self.acked_since_loss = 0;
        self.cwnd = (self.cwnd / 2).max(self.min_window());
        self.ssthresh = self.cwnd;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.prev_loss_interval = self.acked_since_loss;
        self.acked_since_loss = 0;
        self.ssthresh = (self.cwnd / 2).max(self.min_window());
        self.cwnd = self.min_window();
    }

    fn window(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn loss_interval_bytes(&self) -> u64 {
        self.acked_since_loss.max(self.prev_loss_interval)
    }

    fn name(&self) -> &'static str {
        "newreno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1250;

    /// Acks `bytes` in MSS-sized chunks (ABC caps per-ack growth).
    fn ack(cc: &mut NewReno, bytes: u64) {
        let mut left = bytes;
        while left > 0 {
            let chunk = left.min(MSS);
            cc.on_ack(
                SimTime::from_millis(1),
                chunk,
                Duration::from_millis(40),
                &[],
                0,
            );
            left -= chunk;
        }
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cc = NewReno::new(MSS);
        let w0 = cc.window();
        ack(&mut cc, w0);
        assert_eq!(cc.window(), 2 * w0);
    }

    #[test]
    fn congestion_avoidance_linear_growth() {
        let mut cc = NewReno::new(MSS);
        cc.on_congestion_event(SimTime::ZERO); // force CA
        let w = cc.window();
        ack(&mut cc, w); // one full window acked -> ~+1 MSS
        let growth = cc.window() - w;
        assert!(
            (MSS * 9 / 10..=MSS).contains(&growth),
            "expected ~1 MSS, got {growth}"
        );
    }

    #[test]
    fn loss_halves() {
        let mut cc = NewReno::new(MSS);
        ack(&mut cc, 10 * MSS);
        let before = cc.window();
        cc.on_congestion_event(SimTime::ZERO);
        assert_eq!(cc.window(), before / 2);
        assert_eq!(cc.ssthresh(), before / 2);
    }

    #[test]
    fn window_never_below_minimum() {
        let mut cc = NewReno::new(MSS);
        for _ in 0..20 {
            cc.on_congestion_event(SimTime::ZERO);
        }
        assert_eq!(cc.window(), MIN_WINDOW_SEGMENTS * MSS);
        cc.on_rto(SimTime::ZERO);
        assert_eq!(cc.window(), MIN_WINDOW_SEGMENTS * MSS);
    }

    #[test]
    fn loss_interval_tracks_max_of_last_two() {
        let mut cc = NewReno::new(MSS);
        ack(&mut cc, 50_000);
        cc.on_congestion_event(SimTime::ZERO);
        assert_eq!(cc.loss_interval_bytes(), 50_000);
        ack(&mut cc, 10_000);
        // Current epoch (10k) vs previous (50k): max wins.
        assert_eq!(cc.loss_interval_bytes(), 50_000);
        ack(&mut cc, 60_000);
        assert_eq!(cc.loss_interval_bytes(), 70_000);
    }
}
