//! BBR-lite — a simplified model of BBR v1 (Cardwell et al., 2016).
//!
//! The paper's footnote 3 notes that "Chromium recently started to use
//! BBR as its default congestion control"; this controller exists as the
//! corresponding *extension/ablation*, not as part of the paper's
//! evaluated configuration (which pairs CUBIC with the single-path
//! protocols and OLIA with the multipath ones).
//!
//! Model (window-limited approximation — the stack has no pacer):
//!
//! * **bandwidth estimate** — windowed max of per-ACK delivery-rate
//!   samples (`acked bytes / time since previous ACK`);
//! * **min-RTT estimate** — windowed min of RTT samples;
//! * **Startup** — exponential growth (gain 2.89× BDP) until the
//!   bandwidth estimate stops growing for three consecutive rounds;
//! * **Drain** — gain 1/2.89 until the pipe is back to one BDP;
//! * **ProbeBW** — the classic eight-phase gain cycle
//!   `[1.25, 0.75, 1, 1, 1, 1, 1, 1]`.
//!
//! Loss is ignored (BBR v1 semantics) except for RTOs, which collapse
//! the window conservatively.

use mpquic_util::SimTime;
use std::time::Duration;

use crate::{CongestionController, PathSnapshot, INITIAL_WINDOW_SEGMENTS, MIN_WINDOW_SEGMENTS};

/// Startup / Drain gain (2/ln 2).
const STARTUP_GAIN: f64 = 2.885;
/// The ProbeBW pacing-gain cycle.
const PROBE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bandwidth filter window (samples).
const BW_WINDOW: usize = 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    ProbeBw,
}

/// Simplified BBR controller for one path.
#[derive(Debug)]
pub struct Bbr {
    mss: u64,
    state: State,
    /// Recent delivery-rate samples, bytes/sec (ring, newest last).
    bw_samples: Vec<f64>,
    /// Smallest RTT seen.
    min_rtt: Duration,
    last_ack_at: Option<SimTime>,
    /// Best bandwidth seen at the last Startup round check.
    full_bw: f64,
    /// Consecutive rounds without meaningful bandwidth growth.
    full_bw_rounds: u32,
    /// ProbeBW phase index and when it started.
    probe_phase: usize,
    phase_started: SimTime,
    /// In-flight estimate maintained from sent/acked callbacks.
    inflight: u64,
    cwnd: u64,
}

impl Bbr {
    /// Creates a controller with the standard initial window.
    pub fn new(mss: u64) -> Bbr {
        Bbr {
            mss,
            state: State::Startup,
            bw_samples: Vec::with_capacity(BW_WINDOW),
            min_rtt: Duration::from_millis(100),
            last_ack_at: None,
            full_bw: 0.0,
            full_bw_rounds: 0,
            probe_phase: 0,
            phase_started: SimTime::ZERO,
            inflight: 0,
            cwnd: INITIAL_WINDOW_SEGMENTS * mss,
        }
    }

    fn min_window(&self) -> u64 {
        MIN_WINDOW_SEGMENTS * self.mss
    }

    /// Windowed-max bandwidth estimate, bytes/sec.
    fn bandwidth(&self) -> f64 {
        self.bw_samples.iter().copied().fold(0.0, f64::max)
    }

    /// Bandwidth-delay product in bytes.
    fn bdp(&self) -> f64 {
        self.bandwidth() * self.min_rtt.as_secs_f64()
    }

    fn gain(&self) -> f64 {
        match self.state {
            State::Startup => STARTUP_GAIN,
            State::Drain => 1.0 / STARTUP_GAIN,
            State::ProbeBw => PROBE_GAINS[self.probe_phase],
        }
    }

    fn update_cwnd(&mut self) {
        let bdp = self.bdp();
        if bdp <= 0.0 {
            return; // keep the initial window until estimates exist
        }
        // Window-limited BBR: cwnd tracks gain × BDP, floored at 4 MSS
        // so the ack clock never starves.
        let target = (self.gain() * bdp).max(4.0 * self.mss as f64);
        self.cwnd = (target as u64).max(self.min_window());
    }
}

impl CongestionController for Bbr {
    fn on_packet_sent(&mut self, _now: SimTime, bytes: u64) {
        self.inflight = self.inflight.saturating_add(bytes);
    }

    fn on_ack(
        &mut self,
        now: SimTime,
        bytes: u64,
        rtt: Duration,
        _paths: &[PathSnapshot],
        _self_index: usize,
    ) {
        self.inflight = self.inflight.saturating_sub(bytes);
        if !rtt.is_zero() {
            self.min_rtt = self.min_rtt.min(rtt);
        }
        if let Some(last) = self.last_ack_at {
            let dt = now.saturating_duration_since(last).as_secs_f64();
            if dt > 0.0 {
                if self.bw_samples.len() == BW_WINDOW {
                    self.bw_samples.remove(0);
                }
                self.bw_samples.push(bytes as f64 / dt);
            }
        }
        self.last_ack_at = Some(now);

        match self.state {
            State::Startup => {
                let bw = self.bandwidth();
                if bw > self.full_bw * 1.25 {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else if bw > 0.0 {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= 3 {
                        self.state = State::Drain;
                    }
                }
            }
            State::Drain => {
                if (self.inflight as f64) <= self.bdp() {
                    self.state = State::ProbeBw;
                    self.probe_phase = 0;
                    self.phase_started = now;
                }
            }
            State::ProbeBw => {
                // Advance the gain cycle once per min-RTT.
                if now.saturating_duration_since(self.phase_started) >= self.min_rtt {
                    self.probe_phase = (self.probe_phase + 1) % PROBE_GAINS.len();
                    self.phase_started = now;
                }
            }
        }
        self.update_cwnd();
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        // BBR v1 does not react to individual losses; the model-based
        // window already bounds the queue.
    }

    fn on_rto(&mut self, _now: SimTime) {
        // Conservative: restart the model from a minimal window.
        self.cwnd = self.min_window();
        self.bw_samples.clear();
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.state = State::Startup;
        self.inflight = 0;
    }

    fn window(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        // BBR has no ssthresh; report "infinite" so in_slow_start() maps
        // to the Startup state approximation used by callers.
        if self.state == State::Startup {
            u64::MAX
        } else {
            self.cwnd
        }
    }

    fn in_slow_start(&self) -> bool {
        self.state == State::Startup
    }

    fn name(&self) -> &'static str {
        "bbr-lite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1250;

    /// Feeds a steady 10 Mbps, 40 ms RTT ack stream.
    fn steady_acks(cc: &mut Bbr, count: usize) {
        // 10 Mbps = 1.25 MB/s; acks of 2 MSS every 2 ms.
        for i in 0..count {
            let now = SimTime::from_millis(40 + 2 * i as u64);
            cc.on_packet_sent(now, 2 * MSS);
            cc.on_ack(now, 2 * MSS, Duration::from_millis(40), &[], 0);
        }
    }

    #[test]
    fn startup_exits_when_bandwidth_plateaus() {
        let mut cc = Bbr::new(MSS);
        assert!(cc.in_slow_start());
        steady_acks(&mut cc, 50);
        assert!(!cc.in_slow_start(), "steady bandwidth must end Startup");
    }

    #[test]
    fn cwnd_tracks_bdp_in_probe_bw() {
        let mut cc = Bbr::new(MSS);
        steady_acks(&mut cc, 200);
        // BDP = 1.25 MB/s × 40 ms = 50 kB; probe gains are 0.75–1.25.
        let bdp = 1.25e6 * 0.040;
        let w = cc.window() as f64;
        assert!(
            w > bdp * 0.5 && w < bdp * 2.0,
            "cwnd {w} should be within 2x of BDP {bdp}"
        );
    }

    #[test]
    fn losses_do_not_collapse_window() {
        let mut cc = Bbr::new(MSS);
        steady_acks(&mut cc, 100);
        let before = cc.window();
        cc.on_congestion_event(SimTime::from_secs(1));
        assert_eq!(cc.window(), before, "BBR v1 ignores individual losses");
    }

    #[test]
    fn rto_restarts_the_model() {
        let mut cc = Bbr::new(MSS);
        steady_acks(&mut cc, 100);
        cc.on_rto(SimTime::from_secs(2));
        assert_eq!(cc.window(), MIN_WINDOW_SEGMENTS * MSS);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn probe_bw_cycles_gains() {
        let mut cc = Bbr::new(MSS);
        steady_acks(&mut cc, 60);
        assert!(!cc.in_slow_start());
        // Record windows across several phases; they must not be constant
        // (the 1.25 / 0.75 probe phases move the target).
        let mut windows = std::collections::HashSet::new();
        for i in 0..400usize {
            let now = SimTime::from_millis(200 + 2 * i as u64);
            cc.on_packet_sent(now, 2 * MSS);
            cc.on_ack(now, 2 * MSS, Duration::from_millis(40), &[], 0);
            windows.insert(cc.window() / MSS);
        }
        assert!(
            windows.len() >= 2,
            "gain cycling should vary the window: {windows:?}"
        );
    }
}
