//! Congestion control for mpquic.
//!
//! The paper pairs protocols and controllers deliberately (§4.1): "we use
//! CUBIC congestion control with the two single path protocols. Since there
//! is no multipath variant of CUBIC, we use the OLIA congestion control
//! scheme with Multipath TCP and Multipath QUIC." This crate provides both,
//! plus NewReno (the classic baseline) and LIA (RFC 6356), behind a single
//! [`CongestionController`] trait that the QUIC *and* TCP models share.
//!
//! Coupled multipath schemes need a view of the sibling paths when an ACK
//! arrives; the caller passes a slice of [`PathSnapshot`]s (one per
//! established path, including the ACKed one).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbr;
mod cubic;
mod lia;
mod newreno;
mod olia;

pub use bbr::Bbr;
pub use cubic::Cubic;
pub use lia::Lia;
pub use newreno::NewReno;
pub use olia::Olia;

use mpquic_util::SimTime;
use std::time::Duration;

/// Default maximum segment/payload size assumed by the controllers, bytes.
pub const DEFAULT_MSS: u64 = 1250;

/// Initial congestion window in segments (RFC 6928; also the Linux default
/// the paper's kernel used).
pub const INITIAL_WINDOW_SEGMENTS: u64 = 10;

/// Minimum congestion window in segments.
pub const MIN_WINDOW_SEGMENTS: u64 = 2;

/// A snapshot of one path's state, used by coupled controllers (OLIA, LIA)
/// to compute cross-path terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSnapshot {
    /// Congestion window in bytes.
    pub cwnd: u64,
    /// Smoothed RTT of the path.
    pub srtt: Duration,
    /// OLIA's inter-loss volume estimate `ℓ` for the path, in bytes
    /// (max of bytes acked since the last loss and bytes acked between the
    /// previous two losses).
    pub loss_interval_bytes: u64,
}

/// A congestion controller for one path.
///
/// All quantities are bytes. Controllers are purely reactive state
/// machines: the connection reports sends, ACKs, loss events and RTOs; the
/// controller answers "how large is the window".
pub trait CongestionController: std::fmt::Debug + Send {
    /// Records that `bytes` were sent (some controllers track epoch volume).
    fn on_packet_sent(&mut self, now: SimTime, bytes: u64);

    /// Records that `bytes` were newly acknowledged with RTT sample `rtt`.
    ///
    /// `paths` contains a snapshot of every established path of the
    /// connection (coupled schemes need them); `self_index` locates the
    /// path this controller governs within `paths`. Uncoupled schemes
    /// ignore both.
    fn on_ack(
        &mut self,
        now: SimTime,
        bytes: u64,
        rtt: Duration,
        paths: &[PathSnapshot],
        self_index: usize,
    );

    /// Records one congestion event (at most one per round trip: callers
    /// must collapse bursts of losses within the same RTT into one event).
    fn on_congestion_event(&mut self, now: SimTime);

    /// Records a retransmission timeout: collapse to the minimum window.
    fn on_rto(&mut self, now: SimTime);

    /// Current congestion window in bytes.
    fn window(&self) -> u64;

    /// Current slow-start threshold in bytes (`u64::MAX` before the first
    /// congestion event).
    fn ssthresh(&self) -> u64;

    /// True while in slow start.
    fn in_slow_start(&self) -> bool {
        self.window() < self.ssthresh()
    }

    /// OLIA's inter-loss volume estimate for this path (bytes); uncoupled
    /// controllers may return anything sensible (used only for snapshots).
    fn loss_interval_bytes(&self) -> u64 {
        0
    }

    /// Human-readable algorithm name, for experiment logs.
    fn name(&self) -> &'static str;
}

/// Selects a congestion control algorithm by name; the factory the
/// experiment harness uses.
///
/// ```
/// use mpquic_cc::CcAlgorithm;
/// let mut cc = CcAlgorithm::Olia.build(1350);
/// assert_eq!(cc.window(), 13_500); // 10 segments initial window
/// cc.on_congestion_event(mpquic_util::SimTime::ZERO);
/// assert_eq!(cc.window(), 6_750);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcAlgorithm {
    /// CUBIC (RFC 8312) — the single-path default of both Linux TCP and
    /// gQUIC-era quic-go.
    Cubic,
    /// NewReno AIMD.
    NewReno,
    /// OLIA (Khalili et al., CoNEXT'12) — coupled multipath scheme used by
    /// the paper for both MPTCP and MPQUIC.
    Olia,
    /// LIA (RFC 6356) — the earlier coupled scheme, kept for ablations.
    Lia,
    /// BBR-lite (extension; the paper's footnote 3 notes Chromium's move
    /// to BBR). Not part of the evaluated configuration.
    BbrLite,
}

impl CcAlgorithm {
    /// Instantiates a controller with the given MSS.
    pub fn build(self, mss: u64) -> Box<dyn CongestionController> {
        match self {
            CcAlgorithm::Cubic => Box::new(Cubic::new(mss)),
            CcAlgorithm::NewReno => Box::new(NewReno::new(mss)),
            CcAlgorithm::Olia => Box::new(Olia::new(mss)),
            CcAlgorithm::Lia => Box::new(Lia::new(mss)),
            CcAlgorithm::BbrLite => Box::new(Bbr::new(mss)),
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            CcAlgorithm::Cubic => "cubic",
            CcAlgorithm::NewReno => "newreno",
            CcAlgorithm::Olia => "olia",
            CcAlgorithm::Lia => "lia",
            CcAlgorithm::BbrLite => "bbr-lite",
        }
    }

    /// True for coupled multipath algorithms.
    pub fn is_multipath(self) -> bool {
        matches!(self, CcAlgorithm::Olia | CcAlgorithm::Lia)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshots() -> Vec<PathSnapshot> {
        vec![PathSnapshot {
            cwnd: 12_500,
            srtt: Duration::from_millis(40),
            loss_interval_bytes: 100_000,
        }]
    }

    /// Shared behavioural checks across all four algorithms.
    fn check_common(algo: CcAlgorithm) {
        let mss = DEFAULT_MSS;
        let mut cc = algo.build(mss);
        assert_eq!(cc.name(), algo.name());
        let initial = cc.window();
        assert_eq!(initial, INITIAL_WINDOW_SEGMENTS * mss);
        assert!(cc.in_slow_start());

        // Slow start roughly doubles per window acked (acks arrive in
        // MSS-sized chunks; ABC caps growth per ack at 2 MSS).
        let now = SimTime::from_millis(100);
        cc.on_packet_sent(now, initial);
        for _ in 0..(initial / mss) {
            cc.on_ack(
                now + Duration::from_millis(40),
                mss,
                Duration::from_millis(40),
                &snapshots(),
                0,
            );
        }
        assert!(
            cc.window() >= initial + initial / 2,
            "{}: slow start should grow fast: {} -> {}",
            algo.name(),
            initial,
            cc.window()
        );

        // A congestion event shrinks the window and leaves slow start.
        let before = cc.window();
        cc.on_congestion_event(now + Duration::from_millis(50));
        assert!(
            cc.window() < before,
            "{}: loss must shrink window",
            algo.name()
        );
        assert!(
            !cc.in_slow_start(),
            "{}: loss must exit slow start",
            algo.name()
        );
        assert!(cc.window() >= MIN_WINDOW_SEGMENTS * mss);

        // RTO collapses to minimum.
        cc.on_rto(now + Duration::from_millis(60));
        assert_eq!(cc.window(), MIN_WINDOW_SEGMENTS * mss, "{}", algo.name());
    }

    #[test]
    fn all_algorithms_share_basic_dynamics() {
        for algo in [
            CcAlgorithm::Cubic,
            CcAlgorithm::NewReno,
            CcAlgorithm::Olia,
            CcAlgorithm::Lia,
        ] {
            check_common(algo);
        }
    }

    #[test]
    fn multipath_classification() {
        assert!(!CcAlgorithm::Cubic.is_multipath());
        assert!(!CcAlgorithm::NewReno.is_multipath());
        assert!(CcAlgorithm::Olia.is_multipath());
        assert!(CcAlgorithm::Lia.is_multipath());
    }
}
