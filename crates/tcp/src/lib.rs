//! # mpquic-tcp — the paper's baseline stack
//!
//! Segment-level models of **TCP** and **Multipath TCP** (Linux v0.91
//! semantics), built so the CoNEXT'17 comparison has a faithful opponent.
//! The behaviours the paper identifies as decisive are modelled
//! explicitly:
//!
//! | Paper's observation | Where it lives |
//! |---|---|
//! | TCP+TLS 1.2 needs 3 RTTs before the request (Fig. 9) | [`stack`] TLS model + 3-way handshake |
//! | MPTCP subflows need a 3-way handshake before carrying data | [`subflow::Subflow::connect`] |
//! | SACK reports only 2–3 blocks (vs QUIC's 256 ranges) | [`segment::MAX_SACK_BLOCKS`] |
//! | Karn's algorithm starves RTT estimation under loss | [`rtt::TcpRttEstimator`] |
//! | lost data must be retransmitted on the same subflow | [`subflow`] rtx queue |
//! | coupled 16 MB receive window → HoL blocking | [`stack`] meta window |
//! | penalization + opportunistic retransmission (ORP) | [`stack::TcpStack`] `orp_check` |
//! | RTO ⇒ potentially-failed subflow | [`subflow::Subflow::pf`] |
//!
//! Like `mpquic-core`, the stack is sans-IO: datagrams in, datagrams out,
//! timers polled — driven by `mpquic-netsim` through the harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rtt;
pub mod segment;
pub mod stack;
pub mod subflow;

pub use segment::{DssOption, MptcpOptions, Segment, MAX_SACK_BLOCKS};
pub use stack::{Role, TcpConfig, TcpStack, TcpStats, Transmit};
pub use subflow::{Subflow, SubflowState};
