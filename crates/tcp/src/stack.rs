//! The (MP)TCP stack: meta-level sequencing, the Linux-style scheduler,
//! opportunistic retransmission and penalization, the coupled receive
//! window, and the TLS 1.2 handshake latency model.
//!
//! One [`TcpStack`] is one TCP *connection* — plain TCP when
//! `config.multipath` is false, Multipath TCP otherwise. Data written by
//! the application forms a single meta-level byte stream (dsn space);
//! subflows carry chunks of it with DSS mappings.
//!
//! The pieces the paper's analysis hinges on:
//!
//! * **3-way handshake per subflow** — a new subflow carries no data for
//!   a full RTT (vs MPQUIC's data-in-first-packet);
//! * **TLS 1.2 over TCP = 3 RTTs before the request** (vs QUIC's 1);
//! * **coupled receive window** — out-of-order meta data occupies the
//!   shared 16 MB buffer, so a slow path can stall a fast one
//!   (receive-buffer head-of-line blocking);
//! * **penalization + opportunistic retransmission (ORP)** — when the
//!   shared window fills, the blocking data is reinjected on the faster
//!   subflow and the slow subflow's window is halved [paper §4.1];
//! * **RTO ⇒ potentially-failed subflow + reinjection** on another
//!   subflow.

use bytes::Bytes;
use mpquic_cc::CcAlgorithm;
use mpquic_util::{RangeSet, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::time::Duration;

use crate::rtt::DEFAULT_INITIAL_RTT;
use crate::segment::Segment;
use crate::subflow::{Subflow, SubflowState};

/// Stack configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Multipath TCP when true; plain TCP otherwise.
    pub multipath: bool,
    /// Congestion controller per subflow (the paper: CUBIC for TCP,
    /// OLIA for MPTCP).
    pub cc: CcAlgorithm,
    /// Maximum payload bytes per segment.
    pub mss: usize,
    /// Shared (meta-level) receive window — the paper sets 16 MB.
    pub recv_window: u64,
    /// RTT assumed before samples.
    pub initial_rtt: Duration,
    /// Model the TLS 1.2 handshake (2 RTTs after TCP's 1.5).
    pub tls: bool,
    /// Enable penalization + opportunistic retransmission.
    pub orp: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            multipath: true,
            cc: CcAlgorithm::Olia,
            mss: 1330,
            recv_window: 16 << 20,
            initial_rtt: DEFAULT_INITIAL_RTT,
            tls: true,
            orp: true,
        }
    }
}

impl TcpConfig {
    /// The paper's single-path TCP baseline: CUBIC, HTTPS over TLS 1.2.
    pub fn single_path() -> TcpConfig {
        TcpConfig {
            multipath: false,
            cc: CcAlgorithm::Cubic,
            ..TcpConfig::default()
        }
    }

    /// The paper's MPTCP v0.91 stand-in (also `Default`).
    pub fn multipath() -> TcpConfig {
        TcpConfig::default()
    }
}

/// A datagram to hand to the network (matches the shape of
/// `mpquic_core::Transmit` so harness adapters stay trivial).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmit {
    /// Source address.
    pub local: SocketAddr,
    /// Destination address.
    pub remote: SocketAddr,
    /// Encoded segment.
    pub payload: Vec<u8>,
}

/// Endpoint role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Active opener.
    Client,
    /// Passive opener.
    Server,
}

/// TLS 1.2 full-handshake message sizes (bytes on the stream).
mod tls_sizes {
    /// ClientHello.
    pub const CLIENT_HELLO: u64 = 300;
    /// ServerHello + Certificate + ServerHelloDone.
    pub const SERVER_HELLO: u64 = 3500;
    /// ClientKeyExchange + ChangeCipherSpec + Finished.
    pub const CLIENT_FINISHED: u64 = 400;
    /// ChangeCipherSpec + Finished.
    pub const SERVER_FINISHED: u64 = 100;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TlsState {
    /// Waiting for the TCP handshake.
    Idle,
    /// Client: CH sent, reading SH. Server: reading CH.
    Hello,
    /// Client: CKE sent, reading FIN. Server: SH sent, reading CKE.
    Exchange,
    /// Application data may flow.
    Done,
}

/// Aggregated statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpStats {
    /// Segments sent across subflows.
    pub segments_sent: u64,
    /// Segments received.
    pub segments_received: u64,
    /// Same-subflow retransmissions.
    pub retransmissions: u64,
    /// RTO events.
    pub rtos: u64,
    /// Meta-level reinjections on another subflow.
    pub reinjections: u64,
    /// ORP penalizations applied.
    pub penalizations: u64,
    /// Wire bytes sent.
    pub bytes_sent: u64,
    /// Wire bytes received.
    pub bytes_received: u64,
}

/// One (MP)TCP connection endpoint.
pub struct TcpStack {
    role: Role,
    config: TcpConfig,
    subflows: Vec<Subflow>,
    local_addrs: Vec<SocketAddr>,
    initial_local_index: usize,
    remote_addrs: BTreeMap<u8, SocketAddr>,

    // --- meta send state ---
    /// Send buffer holding `[snd_base, snd_base + buf.len())` of the dsn
    /// space (kept until meta-acked, for reinjection).
    snd_buf: VecDeque<u8>,
    snd_base: u64,
    snd_nxt: u64,
    /// dsn of the FIN sentinel byte, once `finish()` was called.
    fin_dsn: Option<u64>,
    /// Highest cumulative data_ack from the peer.
    data_ack_remote: u64,
    /// Highest `data_ack + window` seen (meta send limit).
    send_limit: u64,
    /// Meta ranges queued for reinjection on another subflow.
    reinject_queue: VecDeque<(u64, u64)>,
    /// Last ORP evaluation (rate-limited: the check walks subflow state).
    last_orp_check: Option<SimTime>,
    /// dsns already reinjected (loop protection).
    reinjected: RangeSet,

    // --- meta receive state ---
    rcv_ranges: RangeSet,
    rcv_chunks: BTreeMap<u64, Bytes>,
    rcv_nxt: u64,
    meta_consumed: u64,
    fin_dsn_remote: Option<u64>,

    // --- TLS / app layer ---
    tls: TlsState,
    /// Bytes of the current inbound TLS message still unread.
    tls_rx_remaining: u64,
    /// Application data written before the handshake finished.
    app_tx_pending: VecDeque<Bytes>,
    app_fin_requested: bool,

    stats: TcpStats,
    /// Established-time bookkeeping for tests.
    established_at: Option<SimTime>,
}

impl std::fmt::Debug for TcpStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStack")
            .field("role", &self.role)
            .field("subflows", &self.subflows.len())
            .field("tls", &self.tls)
            .field("snd_nxt", &self.snd_nxt)
            .field("rcv_nxt", &self.rcv_nxt)
            .finish()
    }
}

impl TcpStack {
    /// Creates a client that connects from
    /// `local_addrs[initial_local_index]` to `remote_addr`. Additional
    /// subflows join automatically (multipath) when the server advertises
    /// addresses via ADD_ADDR.
    pub fn client(
        config: TcpConfig,
        local_addrs: Vec<SocketAddr>,
        initial_local_index: usize,
        remote_addr: SocketAddr,
    ) -> TcpStack {
        assert!(initial_local_index < local_addrs.len());
        let mut stack = TcpStack::new_common(Role::Client, config, local_addrs);
        stack.initial_local_index = initial_local_index;
        let local = stack.local_addrs[initial_local_index];
        let mut sf = stack.make_subflow(0, local, remote_addr);
        sf.connect(None);
        stack.subflows.push(sf);
        stack
    }

    /// Creates a passive server listening on `local_addrs`.
    pub fn server(config: TcpConfig, local_addrs: Vec<SocketAddr>) -> TcpStack {
        TcpStack::new_common(Role::Server, config, local_addrs)
    }

    fn new_common(role: Role, config: TcpConfig, local_addrs: Vec<SocketAddr>) -> TcpStack {
        assert!(!local_addrs.is_empty());
        TcpStack {
            role,
            config,
            subflows: Vec::new(),
            local_addrs,
            initial_local_index: 0,
            remote_addrs: BTreeMap::new(),
            snd_buf: VecDeque::new(),
            snd_base: 0,
            snd_nxt: 0,
            fin_dsn: None,
            data_ack_remote: 0,
            send_limit: 0,
            reinject_queue: VecDeque::new(),
            last_orp_check: None,
            reinjected: RangeSet::new(),
            rcv_ranges: RangeSet::new(),
            rcv_chunks: BTreeMap::new(),
            rcv_nxt: 0,
            meta_consumed: 0,
            fin_dsn_remote: None,
            tls: TlsState::Idle,
            tls_rx_remaining: 0,
            app_tx_pending: VecDeque::new(),
            app_fin_requested: false,
            stats: TcpStats::default(),
            established_at: None,
        }
    }

    fn make_subflow(&self, index: usize, local: SocketAddr, remote: SocketAddr) -> Subflow {
        Subflow::new(
            index,
            local,
            remote,
            self.config.cc.build(self.config.mss as u64),
            self.config.initial_rtt,
        )
    }

    // ------------------------------------------------------------------
    // Application API
    // ------------------------------------------------------------------

    /// True once the application may exchange data (TCP established and,
    /// when enabled, the TLS handshake finished).
    pub fn is_established(&self) -> bool {
        self.tls == TlsState::Done
    }

    /// Time at which the stack became application-ready.
    pub fn established_at(&self) -> Option<SimTime> {
        self.established_at
    }

    /// Appends application data to the outgoing stream.
    pub fn write(&mut self, data: Bytes) {
        if self.is_established() {
            self.meta_write(&data);
        } else {
            self.app_tx_pending.push_back(data);
        }
    }

    /// Marks the end of the outgoing stream.
    pub fn finish(&mut self) {
        if self.is_established() && self.app_tx_pending.is_empty() {
            self.append_fin();
        } else {
            self.app_fin_requested = true;
        }
    }

    fn append_fin(&mut self) {
        if self.fin_dsn.is_none() {
            // The DATA_FIN occupies one meta byte (a sentinel the reader
            // strips), so it is acknowledgeable like real MPTCP's.
            self.snd_buf.push_back(0);
            self.fin_dsn = Some(self.snd_base + self.snd_buf.len() as u64 - 1);
        }
    }

    fn meta_write(&mut self, data: &[u8]) {
        debug_assert!(self.fin_dsn.is_none(), "write after finish");
        self.snd_buf.extend(data.iter().copied());
    }

    fn flush_pending_app_data(&mut self) {
        while let Some(chunk) = self.app_tx_pending.pop_front() {
            self.meta_write(&chunk);
        }
        if self.app_fin_requested {
            self.append_fin();
        }
    }

    /// Reads up to `max` bytes of in-order application data.
    pub fn read(&mut self, max: usize) -> Option<Bytes> {
        if self.tls != TlsState::Done {
            return None;
        }
        self.read_meta(max, true)
    }

    /// Reads from the meta stream. When `app` is true, reading stops at
    /// the FIN sentinel (not delivered to the application).
    fn read_meta(&mut self, max: usize, app: bool) -> Option<Bytes> {
        let (&start, chunk) = self.rcv_chunks.iter().next()?;
        if start > self.meta_consumed {
            return None;
        }
        debug_assert_eq!(start, self.meta_consumed);
        let mut limit = chunk.len().min(max);
        if app {
            if let Some(fin) = self.fin_dsn_remote {
                if start >= fin {
                    return None; // only the sentinel remains
                }
                limit = limit.min((fin - start) as usize);
            }
        }
        if limit == 0 {
            return None;
        }
        let mut chunk = self.rcv_chunks.remove(&start).expect("peeked");
        let out = chunk.split_to(limit);
        if !chunk.is_empty() {
            self.rcv_chunks.insert(start + limit as u64, chunk);
        }
        self.meta_consumed += limit as u64;
        Some(out)
    }

    /// True once the peer's FIN was received and all application data
    /// consumed.
    pub fn recv_finished(&self) -> bool {
        match self.fin_dsn_remote {
            Some(fin) => self.meta_consumed >= fin && self.rcv_nxt > fin,
            None => false,
        }
    }

    /// True once everything written (including the FIN) was data-acked.
    pub fn send_complete(&self) -> bool {
        self.fin_dsn.is_some_and(|fin| self.data_ack_remote > fin)
    }

    /// Statistics (aggregated over subflows).
    pub fn stats(&self) -> TcpStats {
        let mut s = self.stats;
        for sf in &self.subflows {
            s.segments_sent += sf.stats.segments_sent;
            s.segments_received += sf.stats.segments_received;
            s.retransmissions += sf.stats.retransmissions;
            s.rtos += sf.stats.rtos;
            s.bytes_sent += sf.stats.bytes_sent;
            s.bytes_received += sf.stats.bytes_received;
        }
        s
    }

    /// Number of subflows (established or not).
    pub fn subflow_count(&self) -> usize {
        self.subflows.len()
    }

    /// Introspection for tests and instrumentation.
    pub fn subflow(&self, index: usize) -> Option<&Subflow> {
        self.subflows.get(index)
    }

    // ------------------------------------------------------------------
    // TLS 1.2 model
    // ------------------------------------------------------------------

    fn on_transport_established(&mut self, now: SimTime) {
        if self.tls != TlsState::Idle {
            return;
        }
        if !self.config.tls {
            self.tls = TlsState::Done;
            self.established_at = Some(now);
            self.flush_pending_app_data();
            return;
        }
        match self.role {
            Role::Client => {
                self.meta_write_raw(tls_sizes::CLIENT_HELLO);
                self.tls = TlsState::Hello;
                self.tls_rx_remaining = tls_sizes::SERVER_HELLO;
            }
            Role::Server => {
                self.tls = TlsState::Hello;
                self.tls_rx_remaining = tls_sizes::CLIENT_HELLO;
            }
        }
    }

    /// Writes `len` handshake filler bytes to the meta stream.
    fn meta_write_raw(&mut self, len: u64) {
        for _ in 0..len {
            self.snd_buf.push_back(0x16); // TLS handshake content type
        }
    }

    /// Consumes inbound TLS handshake bytes and advances the state
    /// machine.
    fn process_tls(&mut self, now: SimTime) {
        loop {
            if self.tls == TlsState::Done || self.tls == TlsState::Idle {
                return;
            }
            if self.tls_rx_remaining > 0 {
                match self.read_meta(self.tls_rx_remaining as usize, false) {
                    Some(chunk) => {
                        self.tls_rx_remaining -= chunk.len() as u64;
                    }
                    None => return, // need more bytes
                }
                continue;
            }
            // A full message was consumed: transition.
            match (self.role, self.tls) {
                (Role::Client, TlsState::Hello) => {
                    // SH read: send CKE+Finished, await server Finished.
                    self.meta_write_raw(tls_sizes::CLIENT_FINISHED);
                    self.tls = TlsState::Exchange;
                    self.tls_rx_remaining = tls_sizes::SERVER_FINISHED;
                }
                (Role::Client, TlsState::Exchange) => {
                    self.tls = TlsState::Done;
                    self.established_at = Some(now);
                    self.flush_pending_app_data();
                }
                (Role::Server, TlsState::Hello) => {
                    // CH read: send SH chain, await CKE+Finished.
                    self.meta_write_raw(tls_sizes::SERVER_HELLO);
                    self.tls = TlsState::Exchange;
                    self.tls_rx_remaining = tls_sizes::CLIENT_FINISHED;
                }
                (Role::Server, TlsState::Exchange) => {
                    // CKE read: send Finished; app data may now flow.
                    self.meta_write_raw(tls_sizes::SERVER_FINISHED);
                    self.tls = TlsState::Done;
                    self.established_at = Some(now);
                    self.flush_pending_app_data();
                }
                _ => return,
            }
        }
    }

    // ------------------------------------------------------------------
    // Meta receive
    // ------------------------------------------------------------------

    fn advertised_window(&self) -> u64 {
        let buffered: u64 = self.rcv_chunks.values().map(|c| c.len() as u64).sum();
        self.config.recv_window.saturating_sub(buffered)
    }

    fn meta_recv(&mut self, dsn: u64, data: &Bytes, data_fin: bool) {
        if data_fin {
            let fin = dsn + data.len() as u64 - u64::from(!data.is_empty());
            // The sentinel is the last byte of the carrying segment.
            let fin = if data.is_empty() { dsn } else { fin };
            self.fin_dsn_remote = Some(fin);
        }
        if data.is_empty() {
            return;
        }
        let end = dsn + data.len() as u64 - 1;
        // Insert only new sub-ranges (duplicates come from reinjection).
        let mut fresh = RangeSet::new();
        fresh.insert_range(dsn, end);
        for have in self.rcv_ranges.iter() {
            fresh.remove_range(*have.start(), *have.end());
        }
        let new_ranges: Vec<(u64, u64)> = fresh.iter().map(|r| (*r.start(), *r.end())).collect();
        for (start, stop) in new_ranges {
            let rel = (start - dsn) as usize;
            let len = (stop - start + 1) as usize;
            self.rcv_chunks.insert(start, data.slice(rel..rel + len));
            self.rcv_ranges.insert_range(start, stop);
        }
        while let Some(range) = self
            .rcv_ranges
            .iter()
            .find(|r| *r.start() <= self.rcv_nxt && *r.end() >= self.rcv_nxt)
        {
            self.rcv_nxt = *range.end() + 1;
        }
    }

    // ------------------------------------------------------------------
    // Ingress
    // ------------------------------------------------------------------

    /// Processes one incoming datagram.
    pub fn handle_datagram(
        &mut self,
        now: SimTime,
        local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
    ) {
        let Some(segment) = Segment::decode(payload) else {
            return;
        };
        self.stats.bytes_received += payload.len() as u64;
        // Locate (or passively create) the subflow.
        let idx = match self
            .subflows
            .iter()
            .position(|sf| sf.local == local && sf.remote == remote)
        {
            Some(i) => i,
            None => {
                if !segment.is_syn() || self.role != Role::Server {
                    return;
                }
                if !self.subflows.is_empty() && segment.mptcp.mp_join.is_none() {
                    return; // second MP_CAPABLE SYN: not a valid join
                }
                let index = self.subflows.len();
                let mut sf = self.make_subflow(index, local, remote);
                if index == 0 && self.config.multipath {
                    // Advertise our addresses on the SYN-ACK and the next
                    // few segments (TCP options are not reliable).
                    sf.add_addrs_to_send = self
                        .local_addrs
                        .iter()
                        .enumerate()
                        .map(|(i, &a)| (i as u8, a))
                        .collect();
                    sf.add_addr_budget = 12;
                }
                self.subflows.push(sf);
                index
            }
        };
        let snapshots: Vec<_> = self
            .subflows
            .iter()
            .filter(|sf| sf.state == SubflowState::Established)
            .map(|sf| sf.snapshot())
            .collect();
        let est_index = self
            .subflows
            .iter()
            .take(idx)
            .filter(|sf| sf.state == SubflowState::Established)
            .count();
        let sf = &mut self.subflows[idx];
        sf.stats.bytes_received += payload.len() as u64;
        let outcome = sf.on_segment(
            now,
            &segment,
            &snapshots,
            est_index.min(snapshots.len().saturating_sub(1)),
            self.config.multipath,
        );

        if outcome.established && idx == 0 {
            self.on_transport_established(now);
        }
        if let Some(ack) = outcome.data_ack {
            if ack > self.data_ack_remote {
                self.data_ack_remote = ack;
                let drop = (ack - self.snd_base).min(self.snd_buf.len() as u64);
                self.snd_buf.drain(..drop as usize);
                self.snd_base += drop;
            }
            if let Some(window) = outcome.window {
                self.send_limit = self.send_limit.max(ack + window);
            }
        } else if let Some(window) = outcome.window {
            // Handshake segments carry no DSS; window is absolute.
            self.send_limit = self.send_limit.max(window);
        }
        if let Some((dsn, data, fin)) = outcome.payload {
            self.meta_recv(dsn, &data, fin);
            self.process_tls(now);
        }
        if !outcome.add_addrs.is_empty() && self.role == Role::Client && self.config.multipath {
            for (id, addr) in outcome.add_addrs {
                self.remote_addrs.insert(id, addr);
            }
            self.maybe_join(now);
        }
    }

    /// Opens MP_JOIN subflows for unused local interfaces, pairing local
    /// index `i` with the server address advertised under id `i` (same
    /// convention as the MPQUIC path manager).
    fn maybe_join(&mut self, _now: SimTime) {
        if self.subflows.is_empty() || self.subflows[0].state != SubflowState::Established {
            return;
        }
        for i in 0..self.local_addrs.len() {
            if i == self.initial_local_index {
                continue;
            }
            let local = self.local_addrs[i];
            if self.subflows.iter().any(|sf| sf.local == local) {
                continue;
            }
            let remote = self.remote_addrs.get(&(i as u8)).copied().or_else(|| {
                if self.remote_addrs.len() == 1 {
                    self.remote_addrs.values().next().copied()
                } else {
                    None
                }
            });
            let Some(remote) = remote else { continue };
            let index = self.subflows.len();
            let mut sf = self.make_subflow(index, local, remote);
            sf.connect(Some(i as u8));
            self.subflows.push(sf);
        }
    }

    // ------------------------------------------------------------------
    // Egress
    // ------------------------------------------------------------------

    /// Produces the next outgoing datagram. Call until `None`.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Transmit> {
        let data_ack = self.rcv_nxt;
        let window = self.advertised_window();
        // 1. Subflow control traffic: handshakes, same-subflow
        //    retransmissions, pure ACKs.
        for i in 0..self.subflows.len() {
            let multipath = self.config.multipath;
            let sf = &mut self.subflows[i];
            if let Some(seg) = sf.poll_control(now, data_ack, window, multipath) {
                return Some(self.wrap(i, seg));
            }
        }
        // 2. ORP: if the meta window blocks new data, reinject the
        //    blocking range on a free subflow and penalize the slow one.
        self.orp_check(now);
        // 3. Reinjection queue (from ORP and subflow RTOs).
        if let Some(t) = self.emit_reinjection(now, data_ack) {
            return Some(t);
        }
        // 4. New data via the lowest-RTT scheduler.
        self.emit_new_data(now, data_ack)
    }

    fn wrap(&mut self, idx: usize, segment: Segment) -> Transmit {
        let encoded = segment.encode();
        let sf = &mut self.subflows[idx];
        sf.stats.segments_sent += 1;
        sf.stats.bytes_sent += encoded.len() as u64;
        Transmit {
            local: sf.local,
            remote: sf.remote,
            payload: encoded,
        }
    }

    /// dsn-space end of buffered data.
    fn write_end(&self) -> u64 {
        self.snd_base + self.snd_buf.len() as u64
    }

    /// Copies `[dsn, dsn+len)` out of the meta buffer.
    fn meta_slice(&self, dsn: u64, len: u64) -> Option<Bytes> {
        if dsn < self.snd_base || dsn + len > self.write_end() {
            return None;
        }
        let start = (dsn - self.snd_base) as usize;
        let out: Vec<u8> = self
            .snd_buf
            .iter()
            .skip(start)
            .take(len as usize)
            .copied()
            .collect();
        Some(Bytes::from(out))
    }

    fn pick_subflow_for_data(&mut self, min_space: u64, exclude_dsn: Option<u64>) -> Option<usize> {
        let all_pf = self
            .subflows
            .iter()
            .filter(|sf| sf.state == SubflowState::Established)
            .all(|sf| sf.pf);
        if all_pf {
            // Linux: when every subflow is potentially failed, clear the
            // flags and keep trying rather than deadlocking.
            for sf in &mut self.subflows {
                sf.pf = false;
            }
        }
        self.subflows
            .iter()
            .enumerate()
            .filter(|(_, sf)| sf.usable_for_data() && sf.cwnd_available() >= min_space)
            .filter(|(_, sf)| exclude_dsn.is_none_or(|d| !sf.carries_dsn(d)))
            .min_by_key(|(_, sf)| sf.rtt.srtt())
            .map(|(i, _)| i)
    }

    fn orp_check(&mut self, now: SimTime) {
        if !self.config.orp || !self.config.multipath || self.subflows.len() < 2 {
            return;
        }
        // Rate-limit: the blocking check walks subflow queues; once per
        // few milliseconds is plenty (Linux evaluates per incoming ack).
        if self
            .last_orp_check
            .is_some_and(|t| now.saturating_duration_since(t) < Duration::from_millis(5))
        {
            return;
        }
        self.last_orp_check = Some(now);
        let window_blocked = self.snd_nxt >= self.send_limit && self.write_end() > self.snd_nxt;
        if !window_blocked {
            return;
        }
        let blocking = self.snd_base;
        if blocking >= self.write_end() || self.reinjected.contains(blocking) {
            return;
        }
        // A free subflow that does not already carry the blocking data.
        if self
            .pick_subflow_for_data(self.config.mss as u64, Some(blocking))
            .is_none()
        {
            return;
        }
        let len = (self.config.mss as u64).min(self.write_end() - blocking);
        self.reinject_queue.push_back((blocking, len));
        self.reinjected.insert_range(blocking, blocking + len - 1);
        self.stats.reinjections += 1;
        // Penalize the subflow that carried the blocking data.
        if let Some(slow) = self.subflows.iter_mut().find(|sf| sf.carries_dsn(blocking)) {
            if slow.penalize(now) {
                self.stats.penalizations += 1;
            }
        }
    }

    fn emit_reinjection(&mut self, now: SimTime, data_ack: u64) -> Option<Transmit> {
        while let Some(&(dsn, len)) = self.reinject_queue.front() {
            if dsn + len <= self.data_ack_remote.max(self.snd_base) {
                self.reinject_queue.pop_front();
                continue; // already meta-acked
            }
            let idx = self.pick_subflow_for_data(len, Some(dsn))?;
            self.reinject_queue.pop_front();
            let Some(payload) = self.meta_slice(dsn, len) else {
                continue;
            };
            let data_fin = self
                .fin_dsn
                .is_some_and(|fin| fin >= dsn && fin < dsn + len.max(1));
            let window = self.advertised_window();
            let seg = self.subflows[idx].send_data(now, payload, dsn, data_fin, data_ack, window);
            return Some(self.wrap(idx, seg));
        }
        None
    }

    fn emit_new_data(&mut self, now: SimTime, data_ack: u64) -> Option<Transmit> {
        let sendable_end = self.write_end().min(self.send_limit);
        if self.snd_nxt >= sendable_end {
            return None;
        }
        let idx = self.pick_subflow_for_data(self.config.mss as u64, None)?;
        let len = (self.config.mss as u64).min(sendable_end - self.snd_nxt);
        let dsn = self.snd_nxt;
        let payload = self.meta_slice(dsn, len)?;
        let data_fin = self
            .fin_dsn
            .is_some_and(|fin| fin >= dsn && fin < dsn + len);
        self.snd_nxt += len;
        let window = self.advertised_window();
        let seg = self.subflows[idx].send_data(now, payload, dsn, data_fin, data_ack, window);
        Some(self.wrap(idx, seg))
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Earliest pending timer across subflows.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.subflows.iter().filter_map(Subflow::next_timeout).min()
    }

    /// Fires due timers; subflow RTOs feed the reinjection queue.
    pub fn on_timeout(&mut self, now: SimTime) {
        for i in 0..self.subflows.len() {
            let due = self.subflows[i].next_timeout().is_some_and(|t| t <= now);
            if !due {
                continue;
            }
            let stalled = self.subflows[i].on_timeout(now);
            if !self.config.multipath || self.subflows.len() < 2 {
                continue;
            }
            // Reinject the failed subflow's outstanding data on another
            // subflow (Linux empties the queue into the meta reinjection
            // queue on RTO). Later RTOs may re-queue ranges whose earlier
            // reinjection was itself lost — the backoff bounds the rate.
            let acked = self.snd_base.max(self.data_ack_remote);
            for (dsn, len) in stalled {
                if dsn + len <= acked {
                    continue;
                }
                if self
                    .reinject_queue
                    .iter()
                    .any(|&(d, l)| d == dsn && l == len)
                {
                    continue;
                }
                self.reinject_queue.push_back((dsn, len));
                self.reinjected.insert_range(dsn, dsn + len.max(1) - 1);
                self.stats.reinjections += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const C0: &str = "10.0.0.1:50000";
    const C1: &str = "10.1.0.1:50000";
    const S0: &str = "10.0.1.1:4433";
    const S1: &str = "10.1.1.1:4433";

    fn addr(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    fn shuttle(client: &mut TcpStack, server: &mut TcpStack, now: SimTime) {
        for _ in 0..128 {
            let mut any = false;
            while let Some(t) = client.poll_transmit(now) {
                server.handle_datagram(now, t.remote, t.local, &t.payload);
                any = true;
            }
            while let Some(t) = server.poll_transmit(now) {
                client.handle_datagram(now, t.remote, t.local, &t.payload);
                any = true;
            }
            if !any {
                return;
            }
        }
        panic!("shuttle did not quiesce");
    }

    fn advance(client: &mut TcpStack, server: &mut TcpStack) -> SimTime {
        let now = [client.next_timeout(), server.next_timeout()]
            .into_iter()
            .flatten()
            .min()
            .expect("a timer is armed");
        client.on_timeout(now);
        server.on_timeout(now);
        shuttle(client, server, now);
        now
    }

    fn pair(multipath: bool) -> (TcpStack, TcpStack) {
        let config = if multipath {
            TcpConfig::multipath()
        } else {
            TcpConfig::single_path()
        };
        let client = TcpStack::client(config.clone(), vec![addr(C0), addr(C1)], 0, addr(S0));
        let server = TcpStack::server(config, vec![addr(S0), addr(S1)]);
        (client, server)
    }

    fn established(multipath: bool) -> (TcpStack, TcpStack) {
        let (mut c, mut s) = pair(multipath);
        shuttle(&mut c, &mut s, SimTime::from_millis(1));
        assert!(c.is_established() && s.is_established());
        (c, s)
    }

    #[test]
    fn zero_latency_handshake_with_tls() {
        let (c, s) = established(false);
        assert_eq!(c.established_at(), Some(SimTime::from_millis(1)));
        assert_eq!(s.established_at(), Some(SimTime::from_millis(1)));
    }

    #[test]
    fn data_round_trip_and_fin() {
        let (mut c, mut s) = established(false);
        c.write(Bytes::from_static(b"hello over tcp"));
        c.finish();
        shuttle(&mut c, &mut s, SimTime::from_millis(2));
        let mut got = Vec::new();
        while let Some(chunk) = s.read(usize::MAX) {
            got.extend_from_slice(&chunk);
        }
        // The DATA_FIN sentinel must not reach the application.
        assert_eq!(&got, b"hello over tcp");
        assert!(s.recv_finished());
        for _ in 0..4 {
            if c.send_complete() {
                break;
            }
            advance(&mut c, &mut s);
        }
        assert!(c.send_complete());
    }

    #[test]
    fn empty_stream_fin_works() {
        let (mut c, mut s) = established(false);
        c.finish();
        shuttle(&mut c, &mut s, SimTime::from_millis(2));
        assert!(s.read(usize::MAX).is_none());
        assert!(s.recv_finished());
    }

    #[test]
    fn writes_before_establishment_are_buffered() {
        let (mut c, mut s) = pair(false);
        c.write(Bytes::from_static(b"early"));
        c.finish();
        shuttle(&mut c, &mut s, SimTime::from_millis(1));
        let mut got = Vec::new();
        while let Some(chunk) = s.read(usize::MAX) {
            got.extend_from_slice(&chunk);
        }
        assert_eq!(&got, b"early");
        assert!(s.recv_finished());
    }

    #[test]
    fn mptcp_join_creates_second_subflow_both_sides() {
        let (mut c, mut s) = established(true);
        shuttle(&mut c, &mut s, SimTime::from_millis(2));
        assert_eq!(c.subflow_count(), 2);
        assert_eq!(s.subflow_count(), 2);
        let join = c.subflow(1).unwrap();
        assert!(join.is_join);
        assert_eq!(join.local, addr(C1));
        assert_eq!(join.remote, addr(S1));
        assert_eq!(join.state, SubflowState::Established);
    }

    #[test]
    fn single_path_never_joins() {
        // Server is multipath (advertises), client is plain TCP.
        let client_cfg = TcpConfig::single_path();
        let server_cfg = TcpConfig::multipath();
        let mut c = TcpStack::client(client_cfg, vec![addr(C0), addr(C1)], 0, addr(S0));
        let mut s = TcpStack::server(server_cfg, vec![addr(S0), addr(S1)]);
        shuttle(&mut c, &mut s, SimTime::from_millis(1));
        c.write(Bytes::from(vec![1u8; 10_000]));
        c.finish();
        shuttle(&mut c, &mut s, SimTime::from_millis(2));
        assert_eq!(c.subflow_count(), 1);
    }

    #[test]
    fn second_mp_capable_syn_is_ignored() {
        let (mut c, mut s) = established(false);
        // Forge a second SYN from a new address without MP_JOIN.
        let syn = Segment::new(0, 0, crate::segment::flags::SYN).encode();
        s.handle_datagram(
            SimTime::from_millis(3),
            addr(S0),
            addr(
                "203.0.113.9:999"
                    .parse::<SocketAddr>()
                    .unwrap()
                    .to_string()
                    .as_str(),
            ),
            &syn,
        );
        assert_eq!(s.subflow_count(), 1);
        let _ = &mut c;
    }

    #[test]
    fn advertised_window_shrinks_with_buffered_data() {
        let (mut c, mut s) = established(false);
        let full = s.advertised_window();
        // Deliver an out-of-order meta chunk directly: it buffers.
        s.meta_recv(100_000, &Bytes::from(vec![0u8; 5_000]), false);
        assert_eq!(s.advertised_window(), full - 5_000);
        let _ = &mut c;
    }

    #[test]
    fn meta_recv_deduplicates_overlaps() {
        let (_, mut s) = established(false);
        let base = s.rcv_nxt; // TLS bytes already consumed
        s.meta_recv(base, &Bytes::from(vec![1u8; 100]), false);
        s.meta_recv(base + 50, &Bytes::from(vec![2u8; 100]), false); // overlap
        s.meta_recv(base, &Bytes::from(vec![3u8; 150]), false); // full dup
        let mut got = Vec::new();
        while let Some(chunk) = s.read(usize::MAX) {
            got.extend_from_slice(&chunk);
        }
        assert_eq!(got.len(), 150);
        assert_eq!(&got[..100], &[1u8; 100][..], "first copy wins");
        assert_eq!(&got[100..], &[2u8; 50][..]);
    }

    #[test]
    fn stats_aggregate_subflows() {
        let (mut c, mut s) = established(true);
        c.write(Bytes::from(vec![1u8; 100_000]));
        c.finish();
        for _ in 0..20 {
            if s.recv_finished() {
                break;
            }
            shuttle(&mut c, &mut s, SimTime::from_millis(2));
            while s.read(usize::MAX).is_some() {}
            if c.next_timeout().is_some() || s.next_timeout().is_some() {
                advance(&mut c, &mut s);
            }
        }
        while s.read(usize::MAX).is_some() {}
        assert!(s.recv_finished());
        let stats = c.stats();
        assert!(stats.segments_sent > 70);
        assert!(stats.bytes_sent > 100_000);
    }

    proptest! {
        /// Meta reassembly delivers exactly the original byte stream no
        /// matter how the segments are sliced, duplicated and reordered.
        #[test]
        fn prop_meta_reassembly_matches_model(
            len in 1usize..2000,
            cuts in proptest::collection::vec(0usize..2000, 0..20),
            order in proptest::collection::vec(any::<u16>(), 0..40),
            dups in proptest::collection::vec(any::<u16>(), 0..10),
        ) {
            let mut stack = TcpStack::server(
                TcpConfig { tls: false, ..TcpConfig::single_path() },
                vec![addr(S0)],
            );
            stack.tls = TlsState::Done; // skip handshake plumbing
            // Build the original stream.
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            // Slice into segments at the cut points.
            let mut points: Vec<usize> = cuts.into_iter().map(|c| c % len).collect();
            points.push(0);
            points.push(len);
            points.sort_unstable();
            points.dedup();
            let mut segments: Vec<(u64, Bytes)> = points
                .windows(2)
                .filter(|w| w[1] > w[0])
                .map(|w| (w[0] as u64, Bytes::copy_from_slice(&data[w[0]..w[1]])))
                .collect();
            // Duplicate a few.
            for d in dups {
                let idx = (d as usize) % segments.len();
                segments.push(segments[idx].clone());
            }
            // Reorder deterministically from the order vector.
            for (i, o) in order.iter().enumerate() {
                if segments.len() > 1 {
                    let a = i % segments.len();
                    let b = (*o as usize) % segments.len();
                    segments.swap(a, b);
                }
            }
            let fin_dsn = len as u64;
            for (dsn, payload) in &segments {
                stack.meta_recv(*dsn, payload, false);
            }
            // FIN sentinel as its own final byte.
            stack.meta_recv(fin_dsn, &Bytes::from_static(&[0]), true);
            let mut got = Vec::new();
            while let Some(chunk) = stack.read(usize::MAX) {
                got.extend_from_slice(&chunk);
            }
            prop_assert_eq!(got, data);
            prop_assert!(stack.recv_finished());
        }
    }
}
