//! One TCP subflow: handshake, subflow-sequence send/receive state, SACK
//! scoreboard, fast retransmit, RTO and Karn-constrained RTT sampling.
//!
//! The constraints the paper contrasts with MPQUIC are enforced here:
//!
//! * a subflow's sequence space must stay self-contained, so lost data is
//!   retransmitted **on the same subflow** (middleboxes would otherwise
//!   see sequence holes) — cross-subflow help only comes from meta-level
//!   *reinjection* (new ssn on the other subflow, managed by the stack);
//! * the receiver reports at most 3 SACK blocks;
//! * RTT samples are discarded for retransmitted segments (Karn), so the
//!   estimate goes stale exactly when scheduling decisions matter most;
//! * an RTO marks the subflow *potentially failed* (Linux's `pf` flag,
//!   which the paper §4.3 mirrors in MPQUIC).

use bytes::Bytes;
use mpquic_cc::{CongestionController, PathSnapshot};
use mpquic_util::{RangeSet, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::time::Duration;

use crate::rtt::{TcpRttEstimator, SYN_RTO};
use crate::segment::{flags, DssOption, Segment, MAX_SACK_BLOCKS};

/// Subflow connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubflowState {
    /// Created, not yet connecting (server side before SYN).
    Idle,
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent, awaiting final ACK.
    SynRcvd,
    /// Three-way handshake complete.
    Established,
}

/// A segment in flight (or awaiting same-subflow retransmission).
#[derive(Debug, Clone)]
pub struct SentSeg {
    /// First subflow sequence number.
    pub ssn: u64,
    /// Sequence-space length (payload + SYN/FIN).
    pub len: u64,
    /// Payload (kept for same-subflow retransmission).
    pub payload: Bytes,
    /// Meta-level mapping of the payload.
    pub dsn: u64,
    /// Carries the connection-level FIN.
    pub data_fin: bool,
    /// Send (or last retransmit) time.
    pub time_sent: SimTime,
    /// True once retransmitted (Karn: no RTT samples).
    pub retransmitted: bool,
    /// Declared lost and queued for retransmission: excluded from the
    /// pipe (RFC 6675 `pipe` accounting) until re-sent.
    pub marked_lost: bool,
    /// Every byte of this segment has been SACKed (maintained
    /// incrementally; excluded from the pipe).
    pub fully_sacked: bool,
    /// True for the SYN.
    pub syn: bool,
}

/// Snapshot of a sent segment's retransmission-relevant fields.
struct SentView {
    payload: Bytes,
    dsn: u64,
    data_fin: bool,
    syn: bool,
}

/// What processing one incoming segment produced.
#[derive(Debug, Default)]
pub struct SegmentOutcome {
    /// Payload delivered with its meta mapping `(dsn, bytes, data_fin)`.
    pub payload: Option<(u64, Bytes, bool)>,
    /// Meta-level cumulative acknowledgement seen.
    pub data_ack: Option<u64>,
    /// Peer's advertised (meta) receive window.
    pub window: Option<u64>,
    /// Subflow just became established.
    pub established: bool,
    /// Subflow-level bytes newly acknowledged (cumulative + SACK).
    pub newly_acked: u64,
    /// dsn ranges of segments newly acknowledged at the subflow level.
    pub acked_dsns: Vec<(u64, u64)>,
    /// ADD_ADDR advertisements seen.
    pub add_addrs: Vec<(u8, SocketAddr)>,
    /// Peer requested a join with this address index (SYN+MP_JOIN).
    pub join_request: Option<u8>,
    /// Number of same-subflow fast retransmissions triggered.
    pub fast_retransmits: u32,
}

/// Counters for one subflow.
#[derive(Debug, Default, Clone, Copy)]
pub struct SubflowStats {
    /// Data segments sent (including retransmissions).
    pub segments_sent: u64,
    /// Segments received.
    pub segments_received: u64,
    /// Same-subflow retransmissions (fast + RTO).
    pub retransmissions: u64,
    /// RTO events.
    pub rtos: u64,
    /// Wire bytes sent.
    pub bytes_sent: u64,
    /// Wire bytes received.
    pub bytes_received: u64,
}

/// One TCP subflow.
pub struct Subflow {
    /// Stack-local subflow index.
    pub index: usize,
    /// Local address.
    pub local: SocketAddr,
    /// Remote address.
    pub remote: SocketAddr,
    /// Connection state.
    pub state: SubflowState,
    /// True if this subflow was opened with MP_JOIN.
    pub is_join: bool,
    /// Address index used in MP_JOIN / pairing.
    pub address_index: u8,
    /// Congestion controller (CUBIC or a coupled scheme).
    pub cc: Box<dyn CongestionController>,
    /// RTT estimator (Karn's rule enforced here).
    pub rtt: TcpRttEstimator,
    /// Potentially-failed flag (set on RTO, cleared on forward progress).
    pub pf: bool,
    /// Last time this subflow was penalized by ORP (rate limiting).
    pub last_penalized: Option<SimTime>,
    /// Statistics.
    pub stats: SubflowStats,

    // --- send state ---
    snd_una: u64,
    snd_nxt: u64,
    /// Incrementally maintained RFC 6675 `pipe`: bytes of outstanding
    /// segments that are neither marked lost nor fully SACKed.
    /// (Recomputing it per call is O(n·ranges) and dominated high-BDP
    /// runs.)
    pipe: u64,
    outstanding: BTreeMap<u64, SentSeg>,
    /// SACKed ssn ranges (received by peer, above `snd_una`).
    sacked: RangeSet,
    /// ssns queued for same-subflow retransmission.
    rtx_queue: VecDeque<u64>,
    /// End of the current fast-recovery episode (snd_nxt at entry).
    recovery_until: Option<u64>,
    rto_backoff: u32,
    /// The one segment being RTT-timed (classic Karn sampling: one
    /// timed segment per RTT; timing discarded if it gets retransmitted).
    timed: Option<(u64, SimTime)>,
    /// RTO reference point: restarted on every ACK that advances
    /// `snd_una` (classic TCP timer semantics, RFC 6298 §5.3).
    rto_reference: Option<SimTime>,
    /// Last multiplicative decrease — at most one per smoothed RTT, so
    /// sustained overflow keeps shrinking the window even inside one
    /// (long) recovery episode.
    last_decrease: Option<SimTime>,
    /// Pending SYN / SYN-ACK / pure-ACK emissions.
    syn_pending: bool,
    synack_pending: bool,
    ack_now: bool,

    // --- receive state ---
    rcv_nxt: u64,
    received: RangeSet,
    /// Recent out-of-order block starts, newest first (SACK generation).
    ack_deadline: Option<SimTime>,
    unacked_segments: u32,
    /// ADD_ADDR advertisements still to attach to outgoing segments
    /// (repeated on the first few segments for loss robustness).
    pub add_addr_budget: u32,
    /// The addresses to advertise while `add_addr_budget > 0`.
    pub add_addrs_to_send: Vec<(u8, SocketAddr)>,
}

/// Delayed-ACK timer (Linux's minimum).
pub const DELACK: Duration = Duration::from_millis(40);

impl std::fmt::Debug for Subflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subflow")
            .field("index", &self.index)
            .field("state", &self.state)
            .field("pf", &self.pf)
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("rcv_nxt", &self.rcv_nxt)
            .finish()
    }
}

impl Subflow {
    /// Creates a subflow (not yet connecting).
    pub fn new(
        index: usize,
        local: SocketAddr,
        remote: SocketAddr,
        cc: Box<dyn CongestionController>,
        initial_rtt: Duration,
    ) -> Subflow {
        Subflow {
            index,
            local,
            remote,
            state: SubflowState::Idle,
            is_join: false,
            address_index: 0,
            cc,
            rtt: TcpRttEstimator::new(initial_rtt),
            pf: false,
            last_penalized: None,
            stats: SubflowStats::default(),
            snd_una: 0,
            snd_nxt: 0,
            pipe: 0,
            outstanding: BTreeMap::new(),
            sacked: RangeSet::new(),
            rtx_queue: VecDeque::new(),
            recovery_until: None,
            rto_backoff: 0,
            timed: None,
            rto_reference: None,
            last_decrease: None,
            syn_pending: false,
            synack_pending: false,
            ack_now: false,
            rcv_nxt: 0,
            received: RangeSet::new(),
            ack_deadline: None,
            unacked_segments: 0,
            add_addr_budget: 0,
            add_addrs_to_send: Vec::new(),
        }
    }

    /// Begins the three-way handshake (client side). `join_index` is set
    /// for MP_JOIN subflows.
    pub fn connect(&mut self, join_index: Option<u8>) {
        debug_assert_eq!(self.state, SubflowState::Idle);
        self.state = SubflowState::SynSent;
        self.is_join = join_index.is_some();
        self.address_index = join_index.unwrap_or(0);
        self.syn_pending = true;
    }

    /// Subflow-level bytes in flight (unacked, unsacked, not marked
    /// lost). Maintained incrementally (recomputing per call is
    /// O(n·ranges) and dominated high-BDP runs).
    pub fn bytes_in_flight(&self) -> u64 {
        self.pipe
    }

    /// Whether `seg` is excluded from the pipe by SACK coverage.
    fn is_fully_sacked(&self, seg: &SentSeg) -> bool {
        seg.fully_sacked
    }

    /// True while the segment counts toward the pipe.
    fn counts_in_pipe(seg: &SentSeg) -> bool {
        !seg.marked_lost && !seg.fully_sacked
    }

    fn pipe_remove(&mut self, ssn: u64) {
        if let Some(seg) = self.outstanding.get(&ssn) {
            if Self::counts_in_pipe(seg) {
                self.pipe = self.pipe.saturating_sub(seg.len);
            }
        }
    }

    /// Congestion window space for new data.
    pub fn cwnd_available(&self) -> u64 {
        self.cc.window().saturating_sub(self.bytes_in_flight())
    }

    /// True if the scheduler may place new data here.
    pub fn usable_for_data(&self) -> bool {
        self.state == SubflowState::Established && !self.pf
    }

    /// Does this subflow have outstanding data covering the given dsn?
    pub fn carries_dsn(&self, dsn: u64) -> bool {
        self.outstanding.values().any(|seg| {
            !seg.syn
                && seg.payload.len() as u64 > 0
                && dsn >= seg.dsn
                && dsn < seg.dsn + seg.payload.len() as u64
        })
    }

    /// Next subflow sequence number for new data.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Cumulative acknowledged subflow sequence.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Receive-side next expected ssn.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// True if a retransmission is queued.
    pub fn has_rtx(&self) -> bool {
        !self.rtx_queue.is_empty()
    }

    // ------------------------------------------------------------------
    // Segment construction
    // ------------------------------------------------------------------

    fn base_segment(&mut self, fl: u8, data_ack: u64, window: u64) -> Segment {
        let mut seg = Segment::new(self.snd_nxt, self.rcv_nxt, fl);
        seg.window = window;
        seg.sack = self.sack_blocks();
        if self.add_addr_budget > 0 && !self.add_addrs_to_send.is_empty() {
            self.add_addr_budget -= 1;
            seg.mptcp.add_addrs = self.add_addrs_to_send.clone();
        }
        // Every established-state segment carries the meta data_ack.
        if self.state == SubflowState::Established {
            seg.mptcp.dss = Some(DssOption {
                dsn: 0,
                data_ack,
                data_fin: false,
            });
        }
        seg
    }

    /// Up to [`MAX_SACK_BLOCKS`] out-of-order blocks above `rcv_nxt`,
    /// highest (most informative) first.
    fn sack_blocks(&self) -> Vec<(u64, u64)> {
        self.received
            .iter_descending()
            .filter(|r| *r.start() > self.rcv_nxt)
            .take(MAX_SACK_BLOCKS)
            .map(|r| (*r.start(), *r.end() + 1))
            .collect()
    }

    /// Emits pending handshake / pure-ACK segments.
    pub fn poll_control(
        &mut self,
        now: SimTime,
        data_ack: u64,
        window: u64,
        multipath: bool,
    ) -> Option<Segment> {
        if self.syn_pending {
            self.syn_pending = false;
            let mut seg = Segment::new(0, 0, flags::SYN);
            seg.window = window;
            if multipath {
                if self.is_join {
                    seg.mptcp.mp_join = Some(self.address_index);
                } else {
                    seg.mptcp.mp_capable = true;
                }
            }
            self.snd_nxt = 1;
            self.track(SentSeg {
                ssn: 0,
                len: 1,
                payload: Bytes::new(),
                dsn: 0,
                data_fin: false,
                time_sent: now,
                retransmitted: false,
                marked_lost: false,
                fully_sacked: false,
                syn: true,
            });
            if self.timed.is_none() {
                self.timed = Some((1, now));
            }
            return Some(seg);
        }
        if self.synack_pending {
            self.synack_pending = false;
            let mut seg = Segment::new(0, self.rcv_nxt, flags::SYN | flags::ACK);
            seg.window = window;
            if multipath {
                if self.is_join {
                    seg.mptcp.mp_join = Some(self.address_index);
                } else {
                    seg.mptcp.mp_capable = true;
                }
            }
            if self.add_addr_budget > 0 && !self.add_addrs_to_send.is_empty() {
                self.add_addr_budget -= 1;
                seg.mptcp.add_addrs = self.add_addrs_to_send.clone();
            }
            self.snd_nxt = 1;
            self.track(SentSeg {
                ssn: 0,
                len: 1,
                payload: Bytes::new(),
                dsn: 0,
                data_fin: false,
                time_sent: now,
                retransmitted: false,
                marked_lost: false,
                fully_sacked: false,
                syn: true,
            });
            return Some(seg);
        }
        // Retransmissions (same subflow, original mapping). The pipe must
        // have room (RFC 6675): blasting retransmissions into a full
        // droptail queue just loses them again.
        if let Some(&ssn) = self.rtx_queue.front() {
            let seg_len = self.outstanding.get(&ssn).map_or(0, |s| s.len);
            let pipe_has_room =
                self.bytes_in_flight() + seg_len <= self.cc.window() || self.bytes_in_flight() == 0;
            if pipe_has_room {
                self.rtx_queue.pop_front();
                if let Some(seg) = self.retransmit_now(now, ssn, data_ack, window, multipath) {
                    return Some(seg);
                }
            }
        }
        // Pure ACK when due.
        if self.ack_now || self.ack_deadline.is_some_and(|d| d <= now) {
            self.ack_now = false;
            self.ack_deadline = None;
            self.unacked_segments = 0;
            let seg = self.base_segment(flags::ACK, data_ack, window);
            return Some(seg);
        }
        None
    }

    fn retransmit_now(
        &mut self,
        now: SimTime,
        ssn: u64,
        data_ack: u64,
        window: u64,
        multipath: bool,
    ) -> Option<Segment> {
        let (payload, dsn, data_fin, syn) = {
            let seg = self.outstanding.get_mut(&ssn)?;
            seg.retransmitted = true;
            if seg.marked_lost && !seg.fully_sacked {
                // Re-enters the pipe as a fresh transmission.
                self.pipe += seg.len;
            }
            seg.marked_lost = false;
            seg.time_sent = now;
            (seg.payload.clone(), seg.dsn, seg.data_fin, seg.syn)
        };
        // Karn: a retransmission inside the timed range voids the timing.
        if let Some((end, _)) = self.timed {
            if ssn < end {
                self.timed = None;
            }
        }
        self.stats.retransmissions += 1;
        let seg = SentView {
            payload,
            dsn,
            data_fin,
            syn,
        };
        let mut out = Segment::new(
            ssn,
            self.rcv_nxt,
            if seg.syn { flags::SYN } else { flags::ACK },
        );
        out.window = window;
        out.payload = seg.payload.clone();
        if seg.syn && multipath {
            if self.is_join {
                out.mptcp.mp_join = Some(self.address_index);
            } else {
                out.mptcp.mp_capable = true;
            }
        }
        if !seg.syn {
            out.sack = self.sack_blocks();
            out.mptcp.dss = Some(DssOption {
                dsn: seg.dsn,
                data_ack,
                data_fin: seg.data_fin,
            });
        }
        Some(out)
    }

    /// Builds and tracks a fresh data segment at `snd_nxt` carrying the
    /// meta range starting at `dsn`.
    pub fn send_data(
        &mut self,
        now: SimTime,
        payload: Bytes,
        dsn: u64,
        data_fin: bool,
        data_ack: u64,
        window: u64,
    ) -> Segment {
        debug_assert_eq!(self.state, SubflowState::Established);
        let mut seg = self.base_segment(flags::ACK, data_ack, window);
        seg.mptcp.dss = Some(DssOption {
            dsn,
            data_ack,
            data_fin,
        });
        seg.payload = payload.clone();
        let len = payload.len() as u64;
        self.track(SentSeg {
            ssn: self.snd_nxt,
            len: len.max(u64::from(data_fin && payload.is_empty())),
            payload,
            dsn,
            data_fin,
            time_sent: now,
            retransmitted: false,
            marked_lost: false,
            fully_sacked: false,
            syn: false,
        });
        let advance = len.max(u64::from(data_fin && seg.payload.is_empty()));
        if self.timed.is_none() && advance > 0 {
            self.timed = Some((self.snd_nxt + advance, now));
        }
        self.snd_nxt += advance;
        self.cc.on_packet_sent(now, len);
        // Sending also acknowledges (piggyback): clear pure-ack state.
        self.ack_now = false;
        self.ack_deadline = None;
        self.unacked_segments = 0;
        seg
    }

    fn track(&mut self, seg: SentSeg) {
        if self.rto_reference.is_none() {
            self.rto_reference = Some(seg.time_sent);
        }
        if Self::counts_in_pipe(&seg) {
            self.pipe += seg.len;
        }
        self.outstanding.insert(seg.ssn, seg);
    }

    // ------------------------------------------------------------------
    // Segment processing
    // ------------------------------------------------------------------

    /// Processes an incoming segment.
    pub fn on_segment(
        &mut self,
        now: SimTime,
        seg: &Segment,
        snapshots: &[PathSnapshot],
        self_index: usize,
        multipath: bool,
    ) -> SegmentOutcome {
        let mut outcome = SegmentOutcome::default();
        self.stats.segments_received += 1;
        outcome.add_addrs = seg.mptcp.add_addrs.clone();

        // --- handshake transitions ---
        if seg.is_syn() && seg.flags & flags::ACK == 0 {
            // Passive open (stack ensured this subflow matches the SYN).
            if self.state == SubflowState::Idle {
                self.state = SubflowState::SynRcvd;
                self.is_join = seg.mptcp.mp_join.is_some();
                self.address_index = seg.mptcp.mp_join.unwrap_or(0);
                outcome.join_request = seg.mptcp.mp_join;
                self.rcv_nxt = 1; // SYN occupies ssn 0
                self.synack_pending = true;
            } else {
                // Duplicate SYN: re-send the SYN-ACK.
                self.synack_pending = true;
            }
            let _ = multipath;
            return outcome;
        }
        if seg.is_syn() && seg.flags & flags::ACK != 0 {
            // SYN-ACK (client side).
            if self.state == SubflowState::SynSent {
                self.state = SubflowState::Established;
                self.rcv_nxt = 1;
                self.process_ack(now, seg, snapshots, self_index, &mut outcome);
                self.ack_now = true; // complete the handshake
                outcome.established = true;
            } else {
                self.ack_now = true; // duplicate SYN-ACK: re-ack
            }
            outcome.window = Some(seg.window);
            return outcome;
        }

        // --- regular segment ---
        if self.state == SubflowState::SynRcvd && seg.flags & flags::ACK != 0 && seg.ack >= 1 {
            self.state = SubflowState::Established;
            outcome.established = true;
        }
        self.process_ack(now, seg, snapshots, self_index, &mut outcome);
        outcome.window = Some(seg.window);
        if let Some(dss) = seg.mptcp.dss {
            outcome.data_ack = Some(dss.data_ack);
        }

        // --- payload ---
        if !seg.payload.is_empty() || seg.mptcp.dss.is_some_and(|d| d.data_fin) {
            let len = seg.payload.len() as u64;
            let start = seg.seq;
            let in_order = start <= self.rcv_nxt;
            if len > 0 {
                self.received.insert_range(start, start + len - 1);
            }
            // Advance rcv_nxt across newly contiguous data.
            while let Some(range) = self
                .received
                .iter()
                .find(|r| *r.start() <= self.rcv_nxt && *r.end() >= self.rcv_nxt)
            {
                self.rcv_nxt = *range.end() + 1;
            }
            // Deliver the payload with its meta mapping (the DSS mapping
            // makes subflow-level reordering unnecessary for delivery —
            // the meta layer reorders by dsn).
            if let Some(dss) = seg.mptcp.dss {
                outcome.payload = Some((dss.dsn, seg.payload.clone(), dss.data_fin));
            } else {
                // Plain TCP: dsn == ssn - 1 (SYN consumed ssn 0).
                outcome.payload = Some((start - 1, seg.payload.clone(), false));
            }
            // ACK policy: immediately on out-of-order (dupack), else
            // every second segment or after the delayed-ack timer.
            self.unacked_segments += 1;
            if !in_order || self.unacked_segments >= 2 {
                self.ack_now = true;
            } else {
                let deadline = now + DELACK;
                self.ack_deadline = Some(self.ack_deadline.map_or(deadline, |d| d.min(deadline)));
            }
        }
        outcome
    }

    fn process_ack(
        &mut self,
        now: SimTime,
        seg: &Segment,
        snapshots: &[PathSnapshot],
        self_index: usize,
        outcome: &mut SegmentOutcome,
    ) {
        if seg.flags & flags::ACK == 0 {
            return;
        }
        let ack = seg.ack;
        // Record SACK information and update the per-segment coverage
        // flags for segments inside the (bounded-size) new blocks.
        for &(start, end) in &seg.sack {
            if end > start {
                self.sacked.insert_range(start, end - 1);
                let affected: Vec<u64> = self
                    .outstanding
                    .range(..end)
                    .filter(|(_, s)| !s.fully_sacked && s.ssn + s.len <= end && s.ssn >= start)
                    .map(|(&ssn, _)| ssn)
                    .collect();
                for ssn in affected {
                    self.pipe_remove(ssn);
                    if let Some(s) = self.outstanding.get_mut(&ssn) {
                        s.fully_sacked = true;
                    }
                }
            }
        }
        let mut newly_acked = 0u64;
        // Cumulative ack: drop fully acked segments.
        if ack > self.snd_una {
            let acked: Vec<u64> = self
                .outstanding
                .range(..ack)
                .filter(|(_, s)| s.ssn + s.len <= ack)
                .map(|(&ssn, _)| ssn)
                .collect();
            for ssn in acked {
                self.pipe_remove(ssn);
                let seg_info = self.outstanding.remove(&ssn).expect("listed");
                newly_acked += seg_info.len;
                if !seg_info.syn && !seg_info.payload.is_empty() {
                    outcome
                        .acked_dsns
                        .push((seg_info.dsn, seg_info.payload.len() as u64));
                }
                if seg_info.data_fin {
                    outcome.acked_dsns.push((seg_info.dsn, 1));
                }
            }
            self.snd_una = ack;
            self.sacked.remove_below(ack);
            self.rto_backoff = 0;
            // Restart the retransmission timer on forward progress.
            self.rto_reference = if self.outstanding.is_empty() {
                None
            } else {
                Some(now)
            };
            if self.pf {
                // Forward progress clears potentially-failed (Linux pf).
                self.pf = false;
            }
            // Exit recovery once the episode's data is acked; a *partial*
            // ACK during recovery means the next hole starts at the new
            // snd_una — retransmit it immediately (NewReno, RFC 6582).
            // Without this every hole after an RTO costs a full RTO.
            match self.recovery_until {
                Some(r) if ack >= r => self.recovery_until = None,
                Some(_) => {
                    let srtt = self.rtt.srtt();
                    if let Some((&ssn, seg)) = self.outstanding.iter().next() {
                        // Retransmit the new hole head at most once per
                        // RTT (it may already be in flight from go-back
                        // recovery or an earlier partial ack).
                        let recently_sent = seg.time_sent + srtt > now;
                        if ssn == self.snd_una && !self.rtx_queue.contains(&ssn) && !recently_sent {
                            self.pipe_remove(ssn);
                            if let Some(seg) = self.outstanding.get_mut(&ssn) {
                                seg.marked_lost = true;
                            }
                            self.rtx_queue.push_back(ssn);
                        }
                    }
                }
                None => {}
            }
        }
        // RTT: sample the one timed segment when the cumulative ack
        // first covers it (Karn: timing was voided if it or anything
        // before it was retransmitted).
        if let Some((end, sent_at)) = self.timed {
            if ack >= end {
                self.rtt.on_sample(sent_at, now);
                self.timed = None;
            }
        }
        // SYN-ACK gives the handshake sample (never retransmitted path).
        if self.state == SubflowState::SynSent {
            // handled in the SYN-ACK branch of on_segment via timed SYN
        }
        if newly_acked > 0 {
            outcome.newly_acked = newly_acked;
            // The window is frozen during loss recovery (standard fast
            // recovery: cwnd stays at its post-decrease value until the
            // episode's data is fully acknowledged).
            if self.recovery_until.is_none() {
                let rtt = self.rtt.srtt();
                self.cc.on_ack(now, newly_acked, rtt, snapshots, self_index);
            }
        }
        // SACK-based loss detection (RFC 6675-lite): a segment is lost
        // when data ≥ 3·MSS beyond it has been SACKed.
        let highest_sacked = self.sacked.max();
        if let Some(high) = highest_sacked {
            let threshold = 3 * 1400u64;
            // A retransmission that is itself lost becomes re-markable
            // once it has been outstanding longer than the loss window
            // (otherwise it could only ever be recovered by an RTO).
            let stale = self.rtt.srtt() + self.rtt.srtt() / 4;
            let lost: Vec<u64> = self
                .outstanding
                .values()
                .filter(|s| {
                    !s.marked_lost
                        && (!s.retransmitted || s.time_sent + stale <= now)
                        && s.ssn + s.len <= high.saturating_sub(threshold)
                        && !self.sacked.contains(s.ssn)
                })
                .map(|s| s.ssn)
                .collect();
            if !lost.is_empty() {
                // At most one multiplicative decrease per RTT (losses
                // detected within the same flight belong to one event,
                // but persistent overflow across rounds keeps halving).
                let decrease_due = self
                    .last_decrease
                    .is_none_or(|t| t + self.rtt.srtt() <= now);
                if decrease_due {
                    self.cc.on_congestion_event(now);
                    self.last_decrease = Some(now);
                }
                if self.recovery_until.is_none() {
                    self.recovery_until = Some(self.snd_nxt);
                }
                for ssn in lost {
                    if !self.rtx_queue.contains(&ssn) {
                        self.pipe_remove(ssn);
                        if let Some(seg) = self.outstanding.get_mut(&ssn) {
                            seg.marked_lost = true;
                        }
                        self.rtx_queue.push_back(ssn);
                        outcome.fast_retransmits += 1;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Earliest pending timer (RTO or delayed ACK).
    pub fn next_timeout(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        if let Some(rto_at) = self.rto_deadline() {
            earliest = Some(rto_at);
        }
        if let Some(d) = self.ack_deadline {
            earliest = Some(earliest.map_or(d, |e| e.min(d)));
        }
        earliest
    }

    fn rto_deadline(&self) -> Option<SimTime> {
        if !self.outstanding.values().any(|s| !self.is_fully_sacked(s)) {
            return None;
        }
        let reference = self.rto_reference?;
        let base = if self
            .outstanding
            .values()
            .any(|s| s.syn && !self.is_fully_sacked(s))
        {
            SYN_RTO.max(self.rtt.rto())
        } else {
            self.rtt.rto()
        };
        let backoff = 1u32 << self.rto_backoff.min(10);
        Some(reference + base * backoff)
    }

    /// Fires due timers. Returns the dsn ranges of **all** outstanding
    /// data on this subflow when an RTO fired — the stack reinjects them
    /// on other subflows (Linux MPTCP empties the failed subflow's queue
    /// into the meta reinjection queue on RTO).
    pub fn on_timeout(&mut self, now: SimTime) -> Vec<(u64, u64)> {
        if self.ack_deadline.is_some_and(|d| d <= now) {
            self.ack_now = true;
            self.ack_deadline = None;
        }
        let rto_due = self.rto_deadline().is_some_and(|d| d <= now);
        if !rto_due {
            return Vec::new();
        }
        self.stats.rtos += 1;
        self.rto_backoff += 1;
        self.pf = true;
        self.rto_reference = Some(now);
        self.cc.on_rto(now);
        // The RTO opens a recovery episode: partial ACKs retransmit the
        // next hole immediately instead of waiting out further RTOs.
        self.recovery_until = Some(self.snd_nxt);
        // The RTO invalidates the scoreboard: every un-SACKed outstanding
        // segment is considered lost and queued for (ACK-clocked,
        // cwnd-gated) retransmission in sequence order — classic go-back
        // recovery. Marking them lost removes them from the pipe so the
        // collapsed window can clock the retransmissions out.
        let lost: Vec<u64> = self
            .outstanding
            .values()
            .filter(|s| !self.is_fully_sacked(s) && !s.marked_lost)
            .map(|s| s.ssn)
            .collect();
        for ssn in lost {
            self.pipe_remove(ssn);
            if let Some(seg) = self.outstanding.get_mut(&ssn) {
                seg.marked_lost = true;
            }
            if !self.rtx_queue.contains(&ssn) {
                self.rtx_queue.push_back(ssn);
            }
        }
        self.rtx_queue.make_contiguous().sort_unstable();
        // ... and surrender every outstanding mapping for reinjection.
        self.outstanding
            .values()
            .filter(|s| !s.syn && !s.payload.is_empty())
            .map(|s| (s.dsn, s.payload.len() as u64))
            .collect()
    }

    /// Snapshot for coupled congestion control.
    pub fn snapshot(&self) -> PathSnapshot {
        PathSnapshot {
            cwnd: self.cc.window(),
            srtt: self.rtt.srtt(),
            loss_interval_bytes: self.cc.loss_interval_bytes(),
        }
    }

    /// Applies an ORP penalization: halve the window, at most once per
    /// smoothed RTT (the Linux rate limit).
    pub fn penalize(&mut self, now: SimTime) -> bool {
        let min_gap = self.rtt.srtt();
        if self
            .last_penalized
            .is_some_and(|t| now.saturating_duration_since(t) < min_gap)
        {
            return false;
        }
        self.last_penalized = Some(now);
        self.cc.on_congestion_event(now);
        true
    }

    /// True when this subflow has nothing left in flight.
    pub fn is_idle(&self) -> bool {
        self.outstanding.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpquic_cc::CcAlgorithm;

    const MSS: u64 = 1330;

    fn subflow() -> Subflow {
        Subflow::new(
            0,
            "10.0.0.1:1000".parse().unwrap(),
            "10.0.1.1:2000".parse().unwrap(),
            CcAlgorithm::Cubic.build(MSS),
            Duration::from_millis(100),
        )
    }

    fn established_sender() -> Subflow {
        let mut sf = subflow();
        sf.state = SubflowState::Established;
        sf.snd_una = 1;
        sf.snd_nxt = 1;
        sf.rcv_nxt = 1;
        sf
    }

    fn data_seg(sf: &mut Subflow, now_ms: u64, len: usize, dsn: u64) -> Segment {
        sf.send_data(
            SimTime::from_millis(now_ms),
            Bytes::from(vec![7u8; len]),
            dsn,
            false,
            0,
            1 << 20,
        )
    }

    fn ack_seg(ack: u64, sack: Vec<(u64, u64)>) -> Segment {
        let mut seg = Segment::new(0, ack, flags::ACK);
        seg.window = 1 << 20;
        seg.sack = sack;
        seg
    }

    #[test]
    fn syn_handshake_state_machine() {
        let mut client = subflow();
        client.connect(None);
        assert_eq!(client.state, SubflowState::SynSent);
        let syn = client
            .poll_control(SimTime::ZERO, 0, 1 << 20, true)
            .expect("SYN emitted");
        assert!(syn.is_syn());
        assert!(syn.mptcp.mp_capable);

        let mut server = subflow();
        let out = server.on_segment(SimTime::from_millis(10), &syn, &[], 0, true);
        assert!(!out.established);
        assert_eq!(server.state, SubflowState::SynRcvd);
        let synack = server
            .poll_control(SimTime::from_millis(10), 0, 1 << 20, true)
            .expect("SYN-ACK");
        assert!(synack.is_syn());
        assert_eq!(synack.ack, 1);

        let out = client.on_segment(SimTime::from_millis(20), &synack, &[], 0, true);
        assert!(out.established);
        assert_eq!(client.state, SubflowState::Established);
        // Client completes with a pure ACK.
        let ack = client
            .poll_control(SimTime::from_millis(20), 0, 1 << 20, true)
            .expect("final ACK");
        assert_eq!(ack.flags & flags::ACK, flags::ACK);
        let out = server.on_segment(SimTime::from_millis(30), &ack, &[], 0, true);
        assert!(out.established);
    }

    #[test]
    fn syn_retransmits_after_syn_rto() {
        let mut client = subflow();
        client.connect(None);
        let _syn = client
            .poll_control(SimTime::ZERO, 0, 1 << 20, true)
            .unwrap();
        let deadline = client.next_timeout().expect("SYN RTO armed");
        assert!(
            deadline >= SimTime::from_millis(1000),
            "Linux SYN RTO is 1 s"
        );
        client.on_timeout(deadline);
        let retx = client
            .poll_control(deadline, 0, 1 << 20, true)
            .expect("SYN retransmission");
        assert!(retx.is_syn());
        assert!(retx.mptcp.mp_capable, "options preserved on retransmit");
    }

    #[test]
    fn sack_blocks_report_three_newest_ooo_ranges() {
        let mut sf = established_sender();
        // Receive 5 disjoint out-of-order blocks above rcv_nxt = 1.
        for i in 0..5u64 {
            let mut seg = Segment::new(100 + i * 100, 0, flags::ACK);
            seg.payload = Bytes::from(vec![1u8; 10]);
            seg.mptcp.dss = Some(DssOption {
                dsn: 0,
                data_ack: 0,
                data_fin: false,
            });
            sf.on_segment(SimTime::from_millis(i), &seg, &[], 0, true);
        }
        let ack = sf
            .poll_control(SimTime::from_millis(10), 0, 1 << 20, true)
            .expect("dupack due");
        assert_eq!(ack.sack.len(), MAX_SACK_BLOCKS);
        // Highest blocks reported first.
        assert_eq!(ack.sack[0], (500, 510));
        assert_eq!(ack.sack[1], (400, 410));
        assert_eq!(ack.sack[2], (300, 310));
    }

    #[test]
    fn fast_retransmit_on_sack_hole() {
        let mut sf = established_sender();
        // Send 6 segments; the first is "lost".
        for i in 0..6 {
            data_seg(&mut sf, i, MSS as usize, i * MSS);
        }
        assert_eq!(sf.bytes_in_flight(), 6 * MSS);
        // Peer SACKs segments 2..6 (ssn 1+MSS .. 1+6*MSS) but not the first.
        let out = sf.on_segment(
            SimTime::from_millis(50),
            &ack_seg(1, vec![(1 + MSS, 1 + 6 * MSS)]),
            &[],
            0,
            true,
        );
        assert!(out.fast_retransmits > 0, "hole must be marked lost");
        assert!(sf.has_rtx());
        // The marked segment left the pipe.
        assert!(sf.bytes_in_flight() < 6 * MSS);
        let retx = sf
            .poll_control(SimTime::from_millis(50), 0, 1 << 20, true)
            .expect("retransmission");
        assert_eq!(retx.seq, 1);
        assert_eq!(retx.payload.len(), MSS as usize);
    }

    #[test]
    fn karn_discards_timing_of_retransmitted_range() {
        let mut sf = established_sender();
        data_seg(&mut sf, 0, 100, 0);
        assert!(!sf.rtt.has_sample());
        // Force an RTO and retransmit.
        let deadline = sf.next_timeout().unwrap();
        let _ = sf.on_timeout(deadline);
        let _ = sf.poll_control(deadline, 0, 1 << 20, true);
        // The (late) cumulative ack must NOT produce an RTT sample.
        sf.on_segment(
            deadline + Duration::from_millis(400),
            &ack_seg(101, vec![]),
            &[],
            0,
            true,
        );
        assert!(
            !sf.rtt.has_sample(),
            "Karn: no samples from retransmitted data"
        );
    }

    #[test]
    fn rto_marks_pf_and_surrenders_mappings() {
        let mut sf = established_sender();
        data_seg(&mut sf, 0, 500, 1000);
        data_seg(&mut sf, 1, 500, 1500);
        let deadline = sf.next_timeout().unwrap();
        let stalled = sf.on_timeout(deadline);
        assert!(sf.pf);
        assert_eq!(stalled, vec![(1000, 500), (1500, 500)]);
        assert_eq!(sf.stats.rtos, 1);
        // Progress clears pf.
        sf.on_segment(
            deadline + Duration::from_millis(10),
            &ack_seg(501, vec![]),
            &[],
            0,
            true,
        );
        assert!(!sf.pf);
    }

    #[test]
    fn penalize_rate_limited_to_once_per_rtt() {
        let mut sf = established_sender();
        sf.rtt.on_sample(SimTime::ZERO, SimTime::from_millis(50));
        let w0 = sf.cc.window();
        assert!(sf.penalize(SimTime::from_millis(100)));
        assert!(sf.cc.window() < w0);
        let w1 = sf.cc.window();
        // Within one srtt: refused.
        assert!(!sf.penalize(SimTime::from_millis(120)));
        assert_eq!(sf.cc.window(), w1);
        // After an srtt: allowed again.
        assert!(sf.penalize(SimTime::from_millis(160)));
    }

    #[test]
    fn carries_dsn_checks_outstanding_mappings() {
        let mut sf = established_sender();
        data_seg(&mut sf, 0, 500, 7000);
        assert!(sf.carries_dsn(7000));
        assert!(sf.carries_dsn(7499));
        assert!(!sf.carries_dsn(7500));
        assert!(!sf.carries_dsn(6999));
        sf.on_segment(
            SimTime::from_millis(10),
            &ack_seg(501, vec![]),
            &[],
            0,
            true,
        );
        assert!(!sf.carries_dsn(7000), "acked segments leave the map");
    }

    #[test]
    fn delayed_ack_timer_forces_pure_ack() {
        let mut sf = established_sender();
        let mut seg = Segment::new(1, 0, flags::ACK);
        seg.payload = Bytes::from(vec![1u8; 10]);
        seg.mptcp.dss = Some(DssOption {
            dsn: 0,
            data_ack: 0,
            data_fin: false,
        });
        sf.on_segment(SimTime::ZERO, &seg, &[], 0, true);
        // One in-order segment: no immediate ack, timer armed at +40 ms.
        assert!(sf
            .poll_control(SimTime::from_millis(1), 0, 1 << 20, true)
            .is_none());
        let deadline = sf.next_timeout().expect("delack armed");
        assert_eq!(deadline, SimTime::ZERO + DELACK);
        sf.on_timeout(deadline);
        let ack = sf
            .poll_control(deadline, 0, 1 << 20, true)
            .expect("pure ack");
        assert_eq!(ack.ack, 11);
        assert!(ack.payload.is_empty());
    }
}
