//! TCP round-trip-time estimation with **Karn's algorithm**.
//!
//! TCP sequence numbers identify *bytes*, not transmissions, so an ACK
//! arriving after a retransmission is ambiguous: it may acknowledge the
//! original or the retransmitted copy. Karn's rule therefore discards RTT
//! samples from retransmitted segments. The paper blames exactly this for
//! Linux MPTCP's scheduling trouble ("this might be related to the
//! ambiguities linked to the estimation of the round-trip-time in the
//! Linux kernel") — so the model keeps the handicap faithfully: under
//! loss, TCP's RTT estimate goes stale while QUIC keeps sampling.

use mpquic_util::SimTime;
use std::time::Duration;

/// Default RTT assumed before the first sample.
pub const DEFAULT_INITIAL_RTT: Duration = Duration::from_millis(100);

/// Linux's minimum retransmission timeout.
pub const MIN_RTO: Duration = Duration::from_millis(200);

/// Maximum retransmission timeout.
pub const MAX_RTO: Duration = Duration::from_secs(60);

/// Initial SYN retransmission timeout (Linux: 1 s).
pub const SYN_RTO: Duration = Duration::from_secs(1);

/// RFC 6298 estimator with Karn's sampling rule applied by the caller
/// (samples must only be fed for never-retransmitted segments).
#[derive(Debug, Clone)]
pub struct TcpRttEstimator {
    srtt: Duration,
    rttvar: Duration,
    has_sample: bool,
    initial_rtt: Duration,
}

impl TcpRttEstimator {
    /// Creates an estimator that reports `initial_rtt` until a sample
    /// arrives.
    pub fn new(initial_rtt: Duration) -> TcpRttEstimator {
        TcpRttEstimator {
            srtt: initial_rtt,
            rttvar: initial_rtt / 2,
            has_sample: false,
            initial_rtt,
        }
    }

    /// Feeds a sample from a **never-retransmitted** segment (Karn's
    /// rule is the caller's responsibility; `Subflow` enforces it).
    pub fn on_sample(&mut self, sent: SimTime, now: SimTime) {
        let sample = now.saturating_duration_since(sent);
        if sample.is_zero() {
            return;
        }
        if !self.has_sample {
            self.srtt = sample;
            self.rttvar = sample / 2;
            self.has_sample = true;
        } else {
            let delta = self.srtt.abs_diff(sample);
            self.rttvar = (self.rttvar * 3 + delta) / 4;
            self.srtt = (self.srtt * 7 + sample) / 8;
        }
    }

    /// Smoothed RTT (the MPTCP scheduler's ranking key).
    pub fn srtt(&self) -> Duration {
        self.srtt
    }

    /// True once a sample was accepted.
    pub fn has_sample(&self) -> bool {
        self.has_sample
    }

    /// Initial RTT (reported before samples).
    pub fn initial_rtt(&self) -> Duration {
        self.initial_rtt
    }

    /// RTO per RFC 6298, clamped to Linux's bounds.
    pub fn rto(&self) -> Duration {
        let rto = self.srtt + (self.rttvar * 4).max(Duration::from_millis(1));
        rto.clamp(MIN_RTO, MAX_RTO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_like_rfc6298() {
        let mut est = TcpRttEstimator::new(DEFAULT_INITIAL_RTT);
        for i in 0..40u64 {
            est.on_sample(
                SimTime::from_millis(i * 100),
                SimTime::from_millis(i * 100 + 50),
            );
        }
        let srtt = est.srtt().as_millis();
        assert!((49..=51).contains(&srtt), "srtt {srtt}");
    }

    #[test]
    fn min_rto_applies() {
        let mut est = TcpRttEstimator::new(DEFAULT_INITIAL_RTT);
        est.on_sample(SimTime::from_millis(0), SimTime::from_millis(2));
        assert_eq!(est.rto(), MIN_RTO);
    }

    #[test]
    fn initial_state() {
        let est = TcpRttEstimator::new(Duration::from_millis(80));
        assert!(!est.has_sample());
        assert_eq!(est.srtt(), Duration::from_millis(80));
        // 80 + 4*40 = 240 ms.
        assert_eq!(est.rto(), Duration::from_millis(240));
    }

    #[test]
    fn zero_sample_ignored() {
        let mut est = TcpRttEstimator::new(DEFAULT_INITIAL_RTT);
        est.on_sample(SimTime::from_millis(5), SimTime::from_millis(5));
        assert!(!est.has_sample());
    }
}
