//! TCP segment wire format (simplified but size-faithful).
//!
//! The model encodes segments into datagrams for the simulator, with
//! realistic header overheads so link-level throughput comparisons
//! against QUIC are fair. Simplifications versus RFC 793 are documented
//! in DESIGN.md §8: 64-bit sequence numbers (no wraparound handling) and
//! byte-granular windows (no window scaling) — neither affects the
//! dynamics the paper measures.
//!
//! Option set:
//!
//! * **SACK** — at most [`MAX_SACK_BLOCKS`] blocks, the constraint the
//!   paper contrasts with QUIC's 256 ACK ranges ("much larger than the
//!   2-3 blocks than can be acknowledged with the SACK TCP option
//!   depending on the space consumed by the other TCP options");
//! * **MP_CAPABLE / MP_JOIN / DSS / ADD_ADDR** — the MPTCP option suite
//!   (RFC 6824) in reduced form.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};

/// Maximum SACK blocks per segment (RFC 2018 with timestamps consuming
/// option space — the Linux reality the paper refers to).
pub const MAX_SACK_BLOCKS: usize = 3;

/// Flags bitfield.
pub mod flags {
    /// Synchronize (connection / subflow open).
    pub const SYN: u8 = 0x01;
    /// Acknowledgement field valid (set on everything after SYN).
    pub const ACK: u8 = 0x02;
    /// Sender finished (subflow level).
    pub const FIN: u8 = 0x04;
    /// Reset.
    pub const RST: u8 = 0x08;
}

/// MPTCP DSS mapping: where this segment's payload sits in the
/// connection-level (meta) sequence space, plus the cumulative data-level
/// acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DssOption {
    /// Data sequence number of the first payload byte.
    pub dsn: u64,
    /// Cumulative meta-level acknowledgement.
    pub data_ack: u64,
    /// This segment carries the connection-level FIN at `dsn + len`.
    pub data_fin: bool,
}

/// MPTCP-related options (reduced RFC 6824 set).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MptcpOptions {
    /// MP_CAPABLE: present on the initial subflow's SYN/SYN-ACK.
    pub mp_capable: bool,
    /// MP_JOIN with the joining subflow's address index (token handling
    /// elided — the simulator has no off-path attackers).
    pub mp_join: Option<u8>,
    /// DSS mapping / data ack.
    pub dss: Option<DssOption>,
    /// ADD_ADDR advertisements: `(address id, address)`.
    pub add_addrs: Vec<(u8, SocketAddr)>,
}

impl MptcpOptions {
    /// True if no option is present.
    pub fn is_empty(&self) -> bool {
        !self.mp_capable
            && self.mp_join.is_none()
            && self.dss.is_none()
            && self.add_addrs.is_empty()
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Subflow-level sequence number of the first payload byte (SYN and
    /// FIN each occupy one sequence number, per TCP).
    pub seq: u64,
    /// Cumulative subflow-level acknowledgement (valid with `ACK`).
    pub ack: u64,
    /// Flags bitfield (see [`flags`]).
    pub flags: u8,
    /// Receive window in bytes, measured from `data_ack` when MPTCP DSS
    /// is present (the coupled meta window), else from `ack`.
    pub window: u64,
    /// SACK blocks: `(start, end)` exclusive-end ssn ranges, most recent
    /// first, at most [`MAX_SACK_BLOCKS`].
    pub sack: Vec<(u64, u64)>,
    /// MPTCP options.
    pub mptcp: MptcpOptions,
    /// Payload.
    pub payload: Bytes,
}

impl Segment {
    /// A bare segment with the given flags.
    pub fn new(seq: u64, ack: u64, flags: u8) -> Segment {
        Segment {
            seq,
            ack,
            flags,
            window: 0,
            sack: Vec::new(),
            mptcp: MptcpOptions::default(),
            payload: Bytes::new(),
        }
    }

    /// True if the SYN flag is set.
    pub fn is_syn(&self) -> bool {
        self.flags & flags::SYN != 0
    }

    /// True if the FIN flag is set.
    pub fn is_fin(&self) -> bool {
        self.flags & flags::FIN != 0
    }

    /// Sequence space this segment occupies (payload + SYN/FIN).
    pub fn seq_len(&self) -> u64 {
        self.payload.len() as u64 + u64::from(self.is_syn()) + u64::from(self.is_fin())
    }

    /// Serializes the segment.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(40 + self.payload.len());
        buf.put_u8(self.flags);
        buf.put_u64(self.seq);
        buf.put_u64(self.ack);
        buf.put_u32(self.window as u32);
        // Option block, length-prefixed.
        let mut opts = BytesMut::new();
        debug_assert!(self.sack.len() <= MAX_SACK_BLOCKS);
        for &(start, end) in self.sack.iter().take(MAX_SACK_BLOCKS) {
            opts.put_u8(OPT_SACK);
            opts.put_u64(start);
            opts.put_u64(end);
        }
        if self.mptcp.mp_capable {
            opts.put_u8(OPT_MP_CAPABLE);
        }
        if let Some(idx) = self.mptcp.mp_join {
            opts.put_u8(OPT_MP_JOIN);
            opts.put_u8(idx);
        }
        if let Some(dss) = self.mptcp.dss {
            opts.put_u8(OPT_DSS);
            opts.put_u8(u8::from(dss.data_fin));
            opts.put_u64(dss.dsn);
            opts.put_u64(dss.data_ack);
        }
        for &(id, addr) in &self.mptcp.add_addrs {
            opts.put_u8(OPT_ADD_ADDR);
            opts.put_u8(id);
            match addr.ip() {
                IpAddr::V4(ip) => {
                    opts.put_u8(4);
                    opts.put_slice(&ip.octets());
                }
                IpAddr::V6(ip) => {
                    opts.put_u8(6);
                    opts.put_slice(&ip.octets());
                }
            }
            opts.put_u16(addr.port());
        }
        buf.put_u16(opts.len() as u16);
        buf.put_slice(&opts);
        buf.put_slice(&self.payload);
        buf.to_vec()
    }

    /// Parses a segment; `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<Segment> {
        let mut buf = data;
        if buf.remaining() < 1 + 8 + 8 + 4 + 2 {
            return None;
        }
        let flags = buf.get_u8();
        let seq = buf.get_u64();
        let ack = buf.get_u64();
        let window = u64::from(buf.get_u32());
        let opt_len = buf.get_u16() as usize;
        if buf.remaining() < opt_len {
            return None;
        }
        let mut opts = &buf[..opt_len];
        buf.advance(opt_len);
        let mut segment = Segment {
            seq,
            ack,
            flags,
            window,
            sack: Vec::new(),
            mptcp: MptcpOptions::default(),
            payload: Bytes::copy_from_slice(buf),
        };
        while opts.remaining() > 0 {
            match opts.get_u8() {
                OPT_SACK => {
                    if opts.remaining() < 16 || segment.sack.len() >= MAX_SACK_BLOCKS {
                        return None;
                    }
                    let start = opts.get_u64();
                    let end = opts.get_u64();
                    segment.sack.push((start, end));
                }
                OPT_MP_CAPABLE => segment.mptcp.mp_capable = true,
                OPT_MP_JOIN => {
                    if opts.remaining() < 1 {
                        return None;
                    }
                    segment.mptcp.mp_join = Some(opts.get_u8());
                }
                OPT_DSS => {
                    if opts.remaining() < 17 {
                        return None;
                    }
                    let data_fin = opts.get_u8() != 0;
                    let dsn = opts.get_u64();
                    let data_ack = opts.get_u64();
                    segment.mptcp.dss = Some(DssOption {
                        dsn,
                        data_ack,
                        data_fin,
                    });
                }
                OPT_ADD_ADDR => {
                    if opts.remaining() < 2 {
                        return None;
                    }
                    let id = opts.get_u8();
                    let version = opts.get_u8();
                    let ip: IpAddr = match version {
                        4 => {
                            if opts.remaining() < 4 {
                                return None;
                            }
                            let mut octets = [0u8; 4];
                            opts.copy_to_slice(&mut octets);
                            IpAddr::V4(Ipv4Addr::from(octets))
                        }
                        6 => {
                            if opts.remaining() < 16 {
                                return None;
                            }
                            let mut octets = [0u8; 16];
                            opts.copy_to_slice(&mut octets);
                            IpAddr::V6(std::net::Ipv6Addr::from(octets))
                        }
                        _ => return None,
                    };
                    if opts.remaining() < 2 {
                        return None;
                    }
                    let port = opts.get_u16();
                    segment
                        .mptcp
                        .add_addrs
                        .push((id, SocketAddr::new(ip, port)));
                }
                _ => return None,
            }
        }
        Some(segment)
    }
}

const OPT_SACK: u8 = 1;
const OPT_MP_CAPABLE: u8 = 2;
const OPT_MP_JOIN: u8 = 3;
const OPT_DSS: u8 = 4;
const OPT_ADD_ADDR: u8 = 5;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(s: &Segment) -> Segment {
        Segment::decode(&s.encode()).expect("decodes")
    }

    #[test]
    fn bare_syn() {
        let mut s = Segment::new(100, 0, flags::SYN);
        s.mptcp.mp_capable = true;
        assert_eq!(round_trip(&s), s);
        assert_eq!(s.seq_len(), 1);
    }

    #[test]
    fn data_segment_with_dss() {
        let mut s = Segment::new(1000, 500, flags::ACK);
        s.window = 16 << 20;
        s.payload = Bytes::from_static(b"hello tcp");
        s.mptcp.dss = Some(DssOption {
            dsn: 42_000,
            data_ack: 10_000,
            data_fin: false,
        });
        assert_eq!(round_trip(&s), s);
        assert_eq!(s.seq_len(), 9);
    }

    #[test]
    fn sack_blocks_capped() {
        let mut s = Segment::new(0, 100, flags::ACK);
        s.sack = vec![(200, 300), (400, 500), (600, 700)];
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn add_addr_v4_and_v6() {
        let mut s = Segment::new(0, 0, flags::ACK);
        s.mptcp.add_addrs = vec![
            (0, "192.0.2.1:8080".parse().unwrap()),
            (1, "[2001:db8::5]:443".parse().unwrap()),
        ];
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn mp_join() {
        let mut s = Segment::new(0, 0, flags::SYN);
        s.mptcp.mp_join = Some(1);
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn fin_occupies_sequence_space() {
        let mut s = Segment::new(10, 0, flags::FIN | flags::ACK);
        s.payload = Bytes::from_static(b"xy");
        assert_eq!(s.seq_len(), 3);
    }

    #[test]
    fn truncated_rejected() {
        let mut s = Segment::new(1, 2, flags::ACK);
        s.payload = Bytes::from_static(b"data");
        s.sack = vec![(5, 10)];
        let bytes = s.encode();
        // Cutting inside header or options must fail; cutting inside the
        // payload silently shortens it (length-prefix free payload), so
        // only check the structured part.
        for cut in 0..(bytes.len() - s.payload.len()) {
            assert!(Segment::decode(&bytes[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn header_overhead_is_realistic() {
        let s = Segment::new(0, 0, flags::ACK);
        // Bare header ~23 bytes; with IP (+20) that is in the realistic
        // 40-60 byte range of real TCP headers with options.
        assert!(s.encode().len() >= 20 && s.encode().len() <= 30);
    }

    proptest! {
        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
            let _ = Segment::decode(&bytes);
        }

        #[test]
        fn prop_round_trip(
            seq in any::<u64>(),
            ack in any::<u64>(),
            fl in 0u8..16,
            window in any::<u32>(),
            payload in proptest::collection::vec(any::<u8>(), 0..200),
            sack in proptest::collection::vec((0u64..1000, 1000u64..2000), 0..=MAX_SACK_BLOCKS),
            dss in proptest::option::of((any::<u64>(), any::<u64>(), any::<bool>())),
        ) {
            let mut s = Segment::new(seq, ack, fl);
            s.window = u64::from(window);
            s.payload = Bytes::from(payload);
            s.sack = sack;
            s.mptcp.dss = dss.map(|(dsn, data_ack, data_fin)| DssOption { dsn, data_ack, data_fin });
            prop_assert_eq!(round_trip(&s), s);
        }
    }
}
