//! End-to-end (MP)TCP tests over an in-memory network with per-path
//! latency, programmable loss and path kill switches — mirrors the
//! mpquic-core end-to-end suite so both stacks are validated the same
//! way before the full simulator comparison.

use bytes::Bytes;
use mpquic_tcp::{SubflowState, TcpConfig, TcpStack, Transmit};
use mpquic_util::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::SocketAddr;
use std::time::Duration;

const C0: &str = "10.0.0.1:50000";
const C1: &str = "10.1.0.1:50001";
const S0: &str = "10.0.1.1:4433";
const S1: &str = "10.1.1.1:4433";

fn addr(s: &str) -> SocketAddr {
    s.parse().unwrap()
}

struct Net {
    client: TcpStack,
    server: TcpStack,
    in_flight: BinaryHeap<Reverse<(SimTime, u64, u8, usize)>>,
    payloads: Vec<Option<Transmit>>,
    now: SimTime,
    path0_delay: Duration,
    path1_delay: Duration,
    drop_seqs: Vec<u64>,
    path0_dead: bool,
    path1_dead: bool,
    seq: u64,
}

impl Net {
    fn new(client: TcpStack, server: TcpStack) -> Net {
        Net {
            client,
            server,
            in_flight: BinaryHeap::new(),
            payloads: Vec::new(),
            now: SimTime::ZERO,
            path0_delay: Duration::from_millis(20),
            path1_delay: Duration::from_millis(20),
            drop_seqs: Vec::new(),
            path0_dead: false,
            path1_dead: false,
            seq: 0,
        }
    }

    fn is_path0(t: &Transmit) -> bool {
        t.local == addr(C0) || t.local == addr(S0) || t.remote == addr(S0) || t.remote == addr(C0)
    }

    fn enqueue(&mut self, dir: u8, t: Transmit) {
        let seq = self.seq;
        self.seq += 1;
        let on_path0 = Net::is_path0(&t);
        if self.drop_seqs.contains(&seq) {
            return;
        }
        let delay = if on_path0 {
            self.path0_delay
        } else {
            self.path1_delay
        };
        let key = self.payloads.len();
        self.payloads.push(Some(t));
        self.in_flight
            .push(Reverse((self.now + delay, seq, dir, key)));
    }

    fn step(&mut self) -> bool {
        loop {
            let mut any = false;
            while let Some(t) = self.client.poll_transmit(self.now) {
                self.enqueue(0, t);
                any = true;
            }
            while let Some(t) = self.server.poll_transmit(self.now) {
                self.enqueue(1, t);
                any = true;
            }
            if !any {
                break;
            }
        }
        let next_delivery = self.in_flight.peek().map(|Reverse((t, ..))| *t);
        let next_timer = [self.client.next_timeout(), self.server.next_timeout()]
            .into_iter()
            .flatten()
            .min();
        let next = match (next_delivery, next_timer) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        self.now = next.max(self.now);
        while let Some(&Reverse((t, _, dir, key))) = self.in_flight.peek() {
            if t > self.now {
                break;
            }
            self.in_flight.pop();
            let transmit = self.payloads[key].take().expect("once");
            // Path death applies at delivery time so in-flight packets
            // are lost too (a real link failure drops what is on the
            // wire, not just future sends).
            let on_path0 = Net::is_path0(&transmit);
            if (on_path0 && self.path0_dead) || (!on_path0 && self.path1_dead) {
                continue;
            }
            match dir {
                0 => self.server.handle_datagram(
                    self.now,
                    transmit.remote,
                    transmit.local,
                    &transmit.payload,
                ),
                _ => self.client.handle_datagram(
                    self.now,
                    transmit.remote,
                    transmit.local,
                    &transmit.payload,
                ),
            }
        }
        if self.client.next_timeout().is_some_and(|t| t <= self.now) {
            self.client.on_timeout(self.now);
        }
        if self.server.next_timeout().is_some_and(|t| t <= self.now) {
            self.server.on_timeout(self.now);
        }
        true
    }

    fn run_until(&mut self, mut cond: impl FnMut(&mut Net) -> bool, limit: SimTime) -> bool {
        loop {
            if cond(self) {
                return true;
            }
            if self.now > limit || !self.step() {
                return cond(self);
            }
        }
    }
}

fn single_pair() -> Net {
    let client = TcpStack::client(TcpConfig::single_path(), vec![addr(C0)], 0, addr(S0));
    let server = TcpStack::server(TcpConfig::single_path(), vec![addr(S0)]);
    Net::new(client, server)
}

fn multipath_pair() -> Net {
    let client = TcpStack::client(
        TcpConfig::multipath(),
        vec![addr(C0), addr(C1)],
        0,
        addr(S0),
    );
    let server = TcpStack::server(TcpConfig::multipath(), vec![addr(S0), addr(S1)]);
    Net::new(client, server)
}

fn drain(stack: &mut TcpStack) -> usize {
    let mut total = 0;
    while let Some(chunk) = stack.read(usize::MAX) {
        total += chunk.len();
    }
    total
}

#[test]
fn tls_over_tcp_takes_three_rtts() {
    let mut net = single_pair();
    assert!(net.run_until(|n| n.client.is_established(), SimTime::from_secs(5),));
    // One-way 20 ms → RTT 40 ms. SYN(0.5 RTT) + SYNACK(1) + CH(1.5)
    // + SH(2) + CKE(2.5) + FIN(3): client app-ready at 3 RTT = 120 ms.
    let established = net.client.established_at().unwrap();
    assert!(
        established >= SimTime::from_millis(115) && established <= SimTime::from_millis(135),
        "client established at {established:?}, expected ~120 ms"
    );
}

#[test]
fn tcp_without_tls_is_one_rtt() {
    let client = TcpStack::client(
        TcpConfig {
            tls: false,
            ..TcpConfig::single_path()
        },
        vec![addr(C0)],
        0,
        addr(S0),
    );
    let server = TcpStack::server(
        TcpConfig {
            tls: false,
            ..TcpConfig::single_path()
        },
        vec![addr(S0)],
    );
    let mut net = Net::new(client, server);
    assert!(net.run_until(|n| n.client.is_established(), SimTime::from_secs(5)));
    assert_eq!(net.client.established_at(), Some(SimTime::from_millis(40)));
}

#[test]
fn request_response_round_trip() {
    let mut net = single_pair();
    net.client.write(Bytes::from_static(b"GET /file"));
    let mut request_len = 0;
    let mut responded = false;
    assert!(net.run_until(
        |n| {
            request_len += drain(&mut n.server);
            if request_len >= 9 && !responded {
                responded = true;
                n.server.write(Bytes::from(vec![0x5A; 200_000]));
                n.server.finish();
            }
            drain(&mut n.client);
            n.client.recv_finished()
        },
        SimTime::from_secs(60),
    ));
    // The final data-ACK needs one more half-RTT to reach the server.
    let deadline = net.now + Duration::from_secs(5);
    assert!(net.run_until(|n| n.server.send_complete(), deadline));
}

#[test]
fn transfer_survives_random_loss() {
    let mut net = single_pair();
    net.drop_seqs = (30..120).step_by(4).collect();
    net.client.write(Bytes::from(vec![7u8; 300_000]));
    net.client.finish();
    assert!(net.run_until(
        |n| {
            drain(&mut n.server);
            n.server.recv_finished()
        },
        SimTime::from_secs(120),
    ));
    assert!(net.client.stats().retransmissions > 0);
}

#[test]
fn mptcp_joins_and_aggregates() {
    let mut net = multipath_pair();
    net.client.write(Bytes::from(vec![3u8; 2_000_000]));
    net.client.finish();
    assert!(net.run_until(
        |n| {
            drain(&mut n.server);
            n.server.recv_finished()
        },
        SimTime::from_secs(120),
    ));
    assert_eq!(net.client.subflow_count(), 2, "join subflow expected");
    let sf1 = net.client.subflow(1).unwrap();
    assert_eq!(sf1.state, SubflowState::Established);
    assert!(sf1.stats.bytes_sent > 10_000, "subflow 1 should carry data");
    assert!(net.client.subflow(0).unwrap().stats.bytes_sent > 10_000);
    // Server-side join accepted.
    assert_eq!(net.server.subflow_count(), 2);
}

#[test]
fn join_needs_a_handshake_before_data() {
    // Verifies the MPTCP property the paper contrasts with MPQUIC: the
    // second subflow carries no payload until its 3-way handshake
    // completes, so its first data can't appear before ~1 RTT after the
    // SYN.
    let mut net = multipath_pair();
    net.client.write(Bytes::from(vec![1u8; 500_000]));
    net.client.finish();
    let mut first_data_on_sf1: Option<SimTime> = None;
    let mut join_syn_at: Option<SimTime> = None;
    assert!(net.run_until(
        |n| {
            if join_syn_at.is_none() {
                if let Some(sf) = n.client.subflow(1) {
                    join_syn_at = Some(n.now).filter(|_| sf.state != SubflowState::Idle);
                }
            }
            if first_data_on_sf1.is_none() {
                if let Some(sf) = n.client.subflow(1) {
                    if sf.stats.bytes_sent > 2000 {
                        first_data_on_sf1 = Some(n.now);
                    }
                }
            }
            drain(&mut n.server);
            n.server.recv_finished()
        },
        SimTime::from_secs(120),
    ));
    let (syn_at, data_at) = (join_syn_at.unwrap(), first_data_on_sf1.unwrap());
    assert!(
        data_at.saturating_duration_since(syn_at) >= Duration::from_millis(40),
        "subflow data at {data_at:?} must wait a full RTT after the join SYN at {syn_at:?}"
    );
}

#[test]
fn mptcp_handover_reinjets_after_path_death() {
    let mut net = multipath_pair();
    // A slow initial path keeps data in flight on it for a while.
    net.path0_delay = Duration::from_millis(100);
    net.client.write(Bytes::from(vec![2u8; 300_000]));
    // Wait until subflow 1 is up and subflow 0 provably has un-acked
    // data in the pipe, then kill path 0 — that data is now lost and
    // leaves a hole in the meta sequence space.
    assert!(net.run_until(
        |n| {
            drain(&mut n.server);
            n.client
                .subflow(1)
                .is_some_and(|sf| sf.state == SubflowState::Established)
                && n.client
                    .subflow(0)
                    .is_some_and(|sf| sf.bytes_in_flight() > 2_000)
        },
        SimTime::from_secs(60),
    ));
    net.path0_dead = true;
    net.client.write(Bytes::from(vec![4u8; 300_000]));
    net.client.finish();
    assert!(
        net.run_until(
            |n| {
                drain(&mut n.server);
                n.server.recv_finished()
            },
            SimTime::from_secs(300),
        ),
        "transfer must complete over the surviving subflow"
    );
    assert!(net.client.stats().rtos > 0);
    assert!(
        net.client.stats().reinjections > 0,
        "RTO on the dead subflow must reinject on the live one"
    );
}

#[test]
fn single_path_ignores_add_addr() {
    let client = TcpStack::client(
        TcpConfig::single_path(),
        vec![addr(C0), addr(C1)],
        0,
        addr(S0),
    );
    let server = TcpStack::server(TcpConfig::multipath(), vec![addr(S0), addr(S1)]);
    let mut net = Net::new(client, server);
    net.client.write(Bytes::from(vec![6u8; 100_000]));
    net.client.finish();
    assert!(net.run_until(
        |n| {
            drain(&mut n.server);
            n.server.recv_finished()
        },
        SimTime::from_secs(60),
    ));
    assert_eq!(net.client.subflow_count(), 1);
}

#[test]
fn worst_path_first_still_joins_fast_path() {
    let client = TcpStack::client(
        TcpConfig::multipath(),
        vec![addr(C0), addr(C1)],
        1,
        addr(S1),
    );
    let server = TcpStack::server(TcpConfig::multipath(), vec![addr(S0), addr(S1)]);
    let mut net = Net::new(client, server);
    net.path1_delay = Duration::from_millis(80);
    net.client.write(Bytes::from(vec![9u8; 1_000_000]));
    net.client.finish();
    assert!(net.run_until(
        |n| {
            drain(&mut n.server);
            n.server.recv_finished()
        },
        SimTime::from_secs(300),
    ));
    assert_eq!(net.client.subflow_count(), 2);
    assert!(net.client.subflow(1).unwrap().stats.bytes_sent > 10_000);
}

#[test]
fn bidirectional_transfer() {
    let mut net = single_pair();
    net.client.write(Bytes::from(vec![1u8; 150_000]));
    net.client.finish();
    net.server.write(Bytes::from(vec![2u8; 150_000]));
    net.server.finish();
    assert!(net.run_until(
        |n| {
            drain(&mut n.server);
            drain(&mut n.client);
            n.server.recv_finished() && n.client.recv_finished()
        },
        SimTime::from_secs(120),
    ));
}
