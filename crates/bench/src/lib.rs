//! Shared helpers for the benchmark targets.
//!
//! The real figure regeneration lives in `mpquic-harness`'s `figN`
//! binaries (full paper scale); the Criterion benches here run scaled
//! sweeps with identical structure so `cargo bench` exercises every
//! experiment end-to-end in bounded time, plus ablations and
//! micro-benches of the hot paths.

#![forbid(unsafe_code)]

pub mod gate;

use mpquic_expdesign::ExperimentClass;
use mpquic_harness::{Overrides, SweepConfig};
use std::time::Duration;

/// A deliberately small sweep (identical structure to the paper's, far
/// fewer samples) for `cargo bench`.
pub fn bench_sweep(class: ExperimentClass, response_size: usize) -> SweepConfig {
    let mut config = SweepConfig::scaled(class, 2, response_size);
    config.repeats = 1;
    config.time_cap = Duration::from_secs(60);
    config.threads = 1; // stable timing
    config.overrides = Overrides::default();
    config
}

/// Response size for the scaled 20 MB experiments.
pub const SCALED_LARGE: usize = 512 << 10;

/// Response size for the 256 kB experiments (already small; keep as-is).
pub const SHORT: usize = 256 << 10;
