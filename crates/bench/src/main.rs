//! `mpquic-bench` — loopback datapath throughput benchmark.
//!
//! Measures what the batched datapath (DESIGN.md §11) buys over the
//! one-datagram-per-syscall path on this machine's loopback: a sender
//! registry pushes fixed-size datagrams at a draining receiver thread,
//! once via [`SocketRegistry::send_from`] (one syscall per datagram) and
//! once via [`SocketRegistry::send_train`] (one `sendmmsg` per
//! 16-segment train on Linux). Steady-state allocations on the sender
//! thread are counted by the workspace's counting global allocator.
//!
//! ```text
//! mpquic-bench [--smoke] [--out PATH] [--baseline PATH]
//! ```
//!
//! Results go to `BENCH_datapath.json` (override with `--out`). With
//! `--baseline PATH` the run fails (exit 1) if the batched datagram
//! rate regressed more than 30% below the baseline file's.

use mpquic_io::{RecvBatch, SocketRegistry};
use mpquic_util::alloc_count::{self, CountingAlloc};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Wire datagram size: the workspace's default QUIC MTU budget.
const SEGMENT: usize = 1200;
/// Segments per batched train (capped by the core's GSO train length).
const TRAIN: usize = 16;

struct ModeResult {
    datagrams: u64,
    bytes: u64,
    syscalls: u64,
    elapsed: f64,
    allocs_per_sec: f64,
}

impl ModeResult {
    fn datagrams_per_sec(&self) -> f64 {
        self.datagrams as f64 / self.elapsed
    }

    fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.elapsed
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_datapath.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--baseline" => {
                baseline_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--baseline needs a path")),
                )
            }
            "--help" => {
                println!("usage: mpquic-bench [--smoke] [--out PATH] [--baseline PATH]");
                return;
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }

    let measure = if smoke {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };
    let warmup = measure / 4;

    println!(
        "datapath benchmark: {SEGMENT} B datagrams, {TRAIN}-segment trains, \
         {:.1} s per mode{}",
        measure.as_secs_f64(),
        if smoke { " (smoke)" } else { "" },
    );

    let single = run_mode(false, warmup, measure);
    println!(
        "  single : {:>12.0} datagrams/s  {:>7.1} MB/s  {} syscalls",
        single.datagrams_per_sec(),
        single.bytes_per_sec() / 1e6,
        single.syscalls,
    );
    let batched = run_mode(true, warmup, measure);
    println!(
        "  batched: {:>12.0} datagrams/s  {:>7.1} MB/s  {} syscalls  \
         {:.1} allocs/s steady-state",
        batched.datagrams_per_sec(),
        batched.bytes_per_sec() / 1e6,
        batched.syscalls,
        batched.allocs_per_sec,
    );

    let speedup = batched.datagrams_per_sec() / single.datagrams_per_sec().max(1.0);
    let saved = batched.datagrams.saturating_sub(batched.syscalls);
    println!("  speedup: {speedup:.2}x  ({saved} syscalls saved in batched mode)");

    let json = render_json(&single, &batched, speedup, smoke);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("mpquic-bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(path) = baseline_path {
        check_baseline(&path, batched.datagrams_per_sec());
    }
}

fn usage(message: &str) -> ! {
    eprintln!("mpquic-bench: {message}");
    eprintln!("usage: mpquic-bench [--smoke] [--out PATH] [--baseline PATH]");
    std::process::exit(1)
}

/// Runs one mode: a receiver thread drains its registry while the main
/// thread sends as fast as the sockets accept, then reports accepted
/// datagrams over the measured window.
fn run_mode(batched: bool, warmup: Duration, measure: Duration) -> ModeResult {
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
    let mut sender = SocketRegistry::bind(&[loopback]).expect("bind sender");
    let mut receiver = SocketRegistry::bind(&[loopback]).expect("bind receiver");
    let from = sender.local_addrs()[0];
    let to = receiver.local_addrs()[0];

    let stop = Arc::new(AtomicBool::new(false));
    let drain_stop = stop.clone();
    let drain = std::thread::spawn(move || {
        let mut batch = RecvBatch::new(64);
        let mut received: u64 = 0;
        while !drain_stop.load(Ordering::Relaxed) {
            match receiver.poll_recv_batch(&mut batch) {
                Ok(0) => std::thread::yield_now(),
                Ok(n) => received += n as u64,
                Err(_) => std::thread::yield_now(),
            }
        }
        received
    });

    let payload = vec![0xa5u8; SEGMENT * TRAIN];
    let mut datagrams: u64 = 0;

    // Warm-up: reach steady state (socket buffers sized, scratch arrays
    // at high-water capacity), then reset the counters.
    let warm_until = Instant::now() + warmup;
    while Instant::now() < warm_until {
        send_once(&mut sender, from, to, &payload, batched);
    }
    alloc_count::reset_thread_counts();
    let syscalls_before = sender.batch_stats().send_syscalls;
    let started = Instant::now();

    let until = started + measure;
    while Instant::now() < until {
        datagrams += send_once(&mut sender, from, to, &payload, batched);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let allocs = alloc_count::thread_counts().allocs;
    let syscalls = sender.batch_stats().send_syscalls - syscalls_before;

    stop.store(true, Ordering::Relaxed);
    let _ = drain.join();

    ModeResult {
        datagrams,
        bytes: datagrams * SEGMENT as u64,
        syscalls,
        elapsed,
        allocs_per_sec: allocs as f64 / elapsed,
    }
}

fn send_once(
    sender: &mut SocketRegistry,
    from: SocketAddr,
    to: SocketAddr,
    payload: &[u8],
    batched: bool,
) -> u64 {
    if batched {
        sender
            .send_train(from, to, payload, Some(SEGMENT))
            .unwrap_or(0) as u64
    } else {
        let mut sent = 0;
        for chunk in payload.chunks(SEGMENT) {
            if sender.send_from(from, to, chunk).unwrap_or(false) {
                sent += 1;
            }
        }
        sent
    }
}

fn render_json(single: &ModeResult, batched: &ModeResult, speedup: f64, smoke: bool) -> String {
    format!(
        "{{\n  \"benchmark\": \"datapath_loopback\",\n  \"smoke\": {smoke},\n  \
         \"segment_bytes\": {SEGMENT},\n  \"train_segments\": {TRAIN},\n  \
         \"single\": {{\n    \"datagrams_per_sec\": {:.0},\n    \
         \"bytes_per_sec\": {:.0},\n    \"syscalls\": {}\n  }},\n  \
         \"batched\": {{\n    \"datagrams_per_sec\": {:.0},\n    \
         \"bytes_per_sec\": {:.0},\n    \"syscalls\": {},\n    \
         \"allocs_steady_state_per_sec\": {:.1},\n    \
         \"syscalls_saved\": {}\n  }},\n  \
         \"batched_datagrams_per_sec\": {:.0},\n  \"speedup\": {speedup:.3}\n}}\n",
        single.datagrams_per_sec(),
        single.bytes_per_sec(),
        single.syscalls,
        batched.datagrams_per_sec(),
        batched.bytes_per_sec(),
        batched.syscalls,
        batched.allocs_per_sec,
        batched.datagrams.saturating_sub(batched.syscalls),
        batched.datagrams_per_sec(),
    )
}

/// Reads `batched_datagrams_per_sec` out of a previous run's JSON (flat
/// key, no JSON dependency needed) and fails the run on a >30%
/// regression.
fn check_baseline(path: &str, current: f64) {
    let baseline = match std::fs::read_to_string(path) {
        Ok(text) => parse_flat_key(&text, "batched_datagrams_per_sec"),
        Err(e) => {
            eprintln!("mpquic-bench: cannot read baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let Some(baseline) = baseline else {
        eprintln!("mpquic-bench: no batched_datagrams_per_sec in {path}");
        std::process::exit(1);
    };
    let floor = baseline * 0.7;
    if current < floor {
        eprintln!(
            "mpquic-bench: REGRESSION: batched rate {current:.0}/s is below \
             70% of baseline {baseline:.0}/s"
        );
        std::process::exit(1);
    }
    println!("  baseline check ok: {current:.0}/s vs {baseline:.0}/s baseline");
}

fn parse_flat_key(text: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\":");
    let start = text.find(&pattern)? + pattern.len();
    let rest = &text[start..];
    let value: String = rest
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    value.parse().ok()
}
