//! `mpquic-bench` — loopback benchmarks: datapath and endpoint.
//!
//! **`datapath` mode (default)** measures what the batched datapath
//! (DESIGN.md §11) buys over the one-datagram-per-syscall path on this
//! machine's loopback: a sender registry pushes fixed-size datagrams at
//! a draining receiver thread, once via [`SocketRegistry::send_from`]
//! (one syscall per datagram) and once via
//! [`SocketRegistry::send_train`] (one `sendmmsg` per 16-segment train
//! on Linux). Steady-state allocations on the sender thread are counted
//! by the workspace's counting global allocator.
//!
//! **`conns` mode** measures connection scaling through the sharded
//! [`Endpoint`] (DESIGN.md §12): M concurrent clients each push one
//! file transfer at a multi-worker endpoint, against a 1-connection
//! run of the same transfer — aggregate connections/sec, goodput and
//! endpoint datagram rate go to `BENCH_endpoint.json`.
//!
//! `datapath` mode also runs the batched sender a third time with a
//! live [`EndpointPlane`] wired into the hot loop — the same Relaxed
//! counters and log2 histograms every shard updates per iteration
//! (DESIGN.md §15) — and reports `metrics_overhead_ratio` (metered
//! rate / plain batched rate). `--gate-overhead` fails the run if the
//! ratio drops below 0.97 or the metered arm allocates in steady
//! state.
//!
//! `datapath` mode finishes with a **per-backend matrix**: the batched
//! train is re-run once per datapath backend (`uring`, `mmsg`,
//! `portable` — DESIGN.md §17) with that arm forced, so
//! `BENCH_datapath.json` records io_uring vs `sendmmsg` vs the portable
//! loop on the same hardware, plus which backend `auto` probing picked.
//! An arm the kernel lacks is recorded as unavailable, not an error.
//!
//! ```text
//! mpquic-bench [conns] [--smoke] [--out PATH] [--baseline PATH]
//!              [--conns M] [--workers N] [--gate-overhead]
//!              [--backend auto|uring|mmsg|portable]
//! ```
//!
//! Results go to `BENCH_datapath.json` / `BENCH_endpoint.json`
//! (override with `--out`). With `--baseline PATH` the run fails
//! (exit 1) if the gated rate (`batched_datagrams_per_sec` /
//! `aggregate_datagrams_per_sec`) regressed more than 30% below the
//! baseline file's.

use mpquic_bench::gate::{enforce_baseline, Direction};
use mpquic_core::Config;
use mpquic_io::backend::{self, BackendChoice};
use mpquic_io::transfer;
use mpquic_io::{quic_client, Endpoint, RecvBatch, SocketRegistry, TransferApp};
use mpquic_telemetry::endpoint::EndpointPlane;
use mpquic_util::alloc_count::{self, CountingAlloc};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The client-side application stream (the transport pre-opens it).
const APP_STREAM: mpquic_core::StreamId = 1;
/// Wire datagram size: the workspace's default QUIC MTU budget.
const SEGMENT: usize = 1200;
/// Segments per batched train (capped by the core's GSO train length).
const TRAIN: usize = 16;

/// `conns` mode defaults: concurrent client connections, endpoint
/// worker shards (0 = auto: `available_parallelism`, which on a 1-core
/// host selects the endpoint's in-thread fast path), and per-connection
/// transfer size.
const CONNS_DEFAULT: usize = 8;
const WORKERS_DEFAULT: usize = 0;
const TRANSFER_BYTES: usize = 2 << 20;
const TRANSFER_BYTES_SMOKE: usize = 128 << 10;

struct ModeResult {
    datagrams: u64,
    bytes: u64,
    syscalls: u64,
    elapsed: f64,
    allocs_per_sec: f64,
}

impl ModeResult {
    fn datagrams_per_sec(&self) -> f64 {
        self.datagrams as f64 / self.elapsed
    }

    fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.elapsed
    }
}

fn main() {
    let mut mode = "datapath".to_string();
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut conns = CONNS_DEFAULT;
    let mut workers = WORKERS_DEFAULT;
    let mut gate_overhead = false;
    let mut choice = BackendChoice::Auto;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--baseline" => {
                baseline_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--baseline needs a path")),
                )
            }
            "--conns" => {
                conns = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .unwrap_or_else(|| usage("--conns needs a number"))
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a number"))
            }
            "--gate-overhead" => gate_overhead = true,
            "--backend" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| usage("--backend needs a value"));
                match raw.parse() {
                    Ok(c) => choice = c,
                    Err(e) => usage(&format!("--backend: {e}")),
                }
            }
            "--help" => {
                println!(
                    "usage: mpquic-bench [conns] [--smoke] [--out PATH] [--baseline PATH] \
                     [--conns M] [--workers N] [--gate-overhead] \
                     [--backend auto|uring|mmsg|portable]"
                );
                return;
            }
            "datapath" | "conns" => mode = arg,
            other => usage(&format!("unknown flag {other:?}")),
        }
    }

    // Every registry the process binds — conns-mode endpoint shards
    // included — follows the chosen backend; datapath mode additionally
    // forces each arm of its per-backend matrix.
    backend::set_default_choice(choice);

    match mode.as_str() {
        "conns" => run_conns_bench(
            smoke,
            conns.max(1),
            workers,
            &out_path.unwrap_or_else(|| "BENCH_endpoint.json".to_string()),
            baseline_path.as_deref(),
        ),
        _ => run_datapath_bench(
            smoke,
            &out_path.unwrap_or_else(|| "BENCH_datapath.json".to_string()),
            baseline_path.as_deref(),
            gate_overhead,
            choice,
        ),
    }
}

/// Fail `--gate-overhead` when the metered arm runs slower than this
/// fraction of the plain batched arm (ISSUE budget: within 3%).
const OVERHEAD_FLOOR: f64 = 0.97;

/// The PR-4 datapath benchmark: raw registry throughput, single
/// syscalls versus batched trains, plus a metered arm that prices the
/// endpoint metrics plane on the same hot loop.
fn run_datapath_bench(
    smoke: bool,
    out_path: &str,
    baseline_path: Option<&str>,
    gate: bool,
    choice: BackendChoice,
) {
    let measure = if smoke {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };
    let warmup = measure / 4;

    println!(
        "datapath benchmark: {SEGMENT} B datagrams, {TRAIN}-segment trains, \
         {:.1} s per mode{}",
        measure.as_secs_f64(),
        if smoke { " (smoke)" } else { "" },
    );

    // The three classic arms run on the user's chosen backend (auto by
    // default). A forced backend the kernel cannot construct is a hard
    // error here — the user asked for that arm specifically.
    let must = |r: std::io::Result<ModeResult>| -> ModeResult {
        r.unwrap_or_else(|e| {
            eprintln!("mpquic-bench: backend {choice}: {e}");
            std::process::exit(1);
        })
    };
    let single = must(run_mode(false, warmup, measure, None, choice));
    println!(
        "  single : {:>12.0} datagrams/s  {:>7.1} MB/s  {} syscalls",
        single.datagrams_per_sec(),
        single.bytes_per_sec() / 1e6,
        single.syscalls,
    );
    let batched = must(run_mode(true, warmup, measure, None, choice));
    println!(
        "  batched: {:>12.0} datagrams/s  {:>7.1} MB/s  {} syscalls  \
         {:.1} allocs/s steady-state",
        batched.datagrams_per_sec(),
        batched.bytes_per_sec() / 1e6,
        batched.syscalls,
        batched.allocs_per_sec,
    );
    // Third arm: the identical batched loop, now feeding a live
    // metrics plane the way a worker shard does (per-iteration
    // counters + loop-time histogram). Its cost relative to `batched`
    // is exactly what turning metrics on costs the datapath.
    let plane = EndpointPlane::new(1);
    let metered = must(run_mode(true, warmup, measure, Some(&plane), choice));
    let overhead = metered.datagrams_per_sec() / batched.datagrams_per_sec().max(1.0);
    println!(
        "  metered: {:>12.0} datagrams/s  {:>7.1} MB/s  {} syscalls  \
         {:.1} allocs/s steady-state  ({:.3}x of batched)",
        metered.datagrams_per_sec(),
        metered.bytes_per_sec() / 1e6,
        metered.syscalls,
        metered.allocs_per_sec,
        overhead,
    );

    let speedup = batched.datagrams_per_sec() / single.datagrams_per_sec().max(1.0);
    let saved = batched.datagrams.saturating_sub(batched.syscalls);
    println!("  speedup: {speedup:.2}x  ({saved} syscalls saved in batched mode)");

    // Per-backend matrix (DESIGN.md §17): the identical batched train,
    // once per forced backend. An arm whose registry cannot bind
    // (kernel without io_uring, say) is recorded as unavailable rather
    // than failing the benchmark — that is exactly what `auto` probing
    // protects production traffic from.
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
    let auto_backend = SocketRegistry::bind_with(&[loopback], BackendChoice::Auto)
        .map(|r| r.backend_kind().name())
        .unwrap_or("unknown");
    println!("  backend matrix (auto probes to {auto_backend}):");
    let arms = [
        BackendChoice::Uring,
        BackendChoice::Mmsg,
        BackendChoice::Portable,
    ];
    let mut matrix: Vec<(BackendChoice, Option<ModeResult>)> = Vec::new();
    for arm in arms {
        match run_mode(true, warmup, measure, None, arm) {
            Ok(result) => {
                println!(
                    "    {:<8}: {:>12.0} datagrams/s  {} syscalls  \
                     {:.1} allocs/s steady-state",
                    arm.to_string(),
                    result.datagrams_per_sec(),
                    result.syscalls,
                    result.allocs_per_sec,
                );
                matrix.push((arm, Some(result)));
            }
            Err(e) => {
                println!("    {:<8}: unavailable ({e})", arm.to_string());
                matrix.push((arm, None));
            }
        }
    }

    let json = render_json(
        &single,
        &batched,
        &metered,
        speedup,
        overhead,
        smoke,
        choice,
        auto_backend,
        &matrix,
    );
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("mpquic-bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(path) = baseline_path {
        enforce_baseline(
            "mpquic-bench",
            path,
            "batched_datagrams_per_sec",
            batched.datagrams_per_sec(),
            Direction::HigherIsBetter,
        );
    }

    if gate {
        if overhead < OVERHEAD_FLOOR {
            eprintln!(
                "mpquic-bench: metrics overhead gate FAILED: metered/batched ratio \
                 {overhead:.3} < {OVERHEAD_FLOOR}"
            );
            std::process::exit(1);
        }
        if metered.allocs_per_sec > 0.0 {
            eprintln!(
                "mpquic-bench: metrics overhead gate FAILED: metered arm allocated \
                 in steady state ({:.1} allocs/s; the plane must be allocation-free)",
                metered.allocs_per_sec,
            );
            std::process::exit(1);
        }
        println!("  metrics overhead gate passed ({overhead:.3} >= {OVERHEAD_FLOOR}, 0 allocs/s)");
    }
}

/// One phase of the `conns` benchmark: M concurrent transfers.
struct ConnsResult {
    conns: usize,
    bytes: u64,
    datagrams: u64,
    elapsed: f64,
}

impl ConnsResult {
    fn datagrams_per_sec(&self) -> f64 {
        self.datagrams as f64 / self.elapsed.max(1e-9)
    }

    fn goodput_bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.elapsed.max(1e-9)
    }

    fn conns_per_sec(&self) -> f64 {
        self.conns as f64 / self.elapsed.max(1e-9)
    }
}

/// The endpoint benchmark: one sharded server endpoint, first 1 then M
/// concurrent client connections, each a full `mpq` transfer.
fn run_conns_bench(
    smoke: bool,
    conns: usize,
    workers: usize,
    out_path: &str,
    baseline_path: Option<&str>,
) {
    let size = if smoke {
        TRANSFER_BYTES_SMOKE
    } else {
        TRANSFER_BYTES
    };
    let config = Config::builder()
        .single_path()
        .max_incoming_connections(conns + 1)
        .worker_shards(workers)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("mpquic-bench: config: {e}");
            std::process::exit(1);
        });
    let listen: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
    let endpoint = Endpoint::bind(
        &[listen],
        config,
        0x5EED,
        Box::new(|_cid| Box::new(TransferApp::new())),
    )
    .unwrap_or_else(|e| {
        eprintln!("mpquic-bench: bind: {e}");
        std::process::exit(1);
    });
    let server = endpoint.local_addrs()[0];
    // 0 = auto; report what actually ran (1 worker means the unified
    // in-thread fast path, no demux thread).
    let workers = endpoint.workers();

    println!(
        "endpoint benchmark: {size} B per transfer, {workers} workers{}{}",
        if workers == 1 {
            " (unified fast path)"
        } else {
            ""
        },
        if smoke { " (smoke)" } else { "" },
    );

    // Same total work in both phases — `conns` transfers run one after
    // another on a single connection at a time, then all concurrently —
    // so the comparison isolates what concurrency buys.
    let single = run_conns_phase(&endpoint, server, 1, conns, size, 0x1000);
    println!(
        "  single : {:>10.0} datagrams/s  {:>7.2} MB/s goodput  {:.2} conns/s",
        single.datagrams_per_sec(),
        single.goodput_bytes_per_sec() / 1e6,
        single.conns_per_sec(),
    );
    let multi = run_conns_phase(&endpoint, server, conns, 1, size, 0x2000);
    println!(
        "  x{conns:<5} : {:>10.0} datagrams/s  {:>7.2} MB/s goodput  {:.2} conns/s",
        multi.datagrams_per_sec(),
        multi.goodput_bytes_per_sec() / 1e6,
        multi.conns_per_sec(),
    );

    let speedup = multi.datagrams_per_sec() / single.datagrams_per_sec().max(1.0);
    println!("  speedup: {speedup:.2}x aggregate datagram rate over single-connection");

    let report = endpoint.shutdown();
    if report.totals.failed > 0 {
        eprintln!(
            "mpquic-bench: {} transfers failed verification",
            report.totals.failed
        );
        std::process::exit(1);
    }

    // Record the host's parallelism: the concurrent phase only beats
    // the serial one when shards actually run on separate cores, so a
    // sub-1x speedup on a single-core runner is expected, not a bug.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"endpoint_conns\",\n  \"smoke\": {smoke},\n  \
         \"workers\": {workers},\n  \"conns\": {conns},\n  \"cores\": {cores},\n  \
         \"transfer_bytes\": {size},\n  \
         \"single\": {{\n    \"datagrams_per_sec\": {:.0},\n    \
         \"goodput_bytes_per_sec\": {:.0},\n    \"conns_per_sec\": {:.3}\n  }},\n  \
         \"multi\": {{\n    \"datagrams_per_sec\": {:.0},\n    \
         \"goodput_bytes_per_sec\": {:.0},\n    \"conns_per_sec\": {:.3}\n  }},\n  \
         \"aggregate_datagrams_per_sec\": {:.0},\n  \
         \"aggregate_goodput_bytes_per_sec\": {:.0},\n  \"speedup\": {speedup:.3}\n}}\n",
        single.datagrams_per_sec(),
        single.goodput_bytes_per_sec(),
        single.conns_per_sec(),
        multi.datagrams_per_sec(),
        multi.goodput_bytes_per_sec(),
        multi.conns_per_sec(),
        multi.datagrams_per_sec(),
        multi.goodput_bytes_per_sec(),
    );
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("mpquic-bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(path) = baseline_path {
        enforce_baseline(
            "mpquic-bench",
            path,
            "aggregate_datagrams_per_sec",
            multi.datagrams_per_sec(),
            Direction::HigherIsBetter,
        );
    }
}

/// Runs `m` concurrent connection slots, each performing `rounds`
/// sequential transfers (a fresh connection per transfer), and returns
/// the aggregate over the phase's wall time. Datagram counts come from the
/// endpoint's ingress counter (its side of the load). `seed_base` must
/// differ between phases: the client seed determines its connection
/// ID, and a reused CID would hit the endpoint's retired-CID
/// tombstones from the previous phase.
fn run_conns_phase(
    endpoint: &Endpoint,
    server: SocketAddr,
    m: usize,
    rounds: usize,
    size: usize,
    seed_base: u64,
) -> ConnsResult {
    let before = endpoint.stats();
    let started = Instant::now();
    // Client threads are capped at the core count, each multiplexing
    // its share of the M connection slots through non-blocking
    // drivers. M blocking threads on fewer cores would measure the
    // scheduler's context-switch churn, not the endpoint.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = m.min(cores).max(1);
    let mut clients = Vec::with_capacity(threads);
    for t in 0..threads {
        let slots: Vec<usize> = (t..m).step_by(threads).collect();
        clients.push(std::thread::spawn(move || {
            run_client_slots(&slots, server, rounds, size, seed_base)
        }));
    }
    let mut bytes = 0u64;
    for client in clients {
        match client.join() {
            Ok(n) => bytes += n,
            Err(_) => {
                eprintln!("mpquic-bench: a client thread panicked");
                std::process::exit(1);
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let after = endpoint.stats();
    ConnsResult {
        conns: m * rounds,
        bytes,
        datagrams: after.datagrams_in.saturating_sub(before.datagrams_in),
        elapsed,
    }
}

/// Grace given to a clean close before a slot's driver is dropped; the
/// server's idle timer reaps anything left hanging.
const CLOSE_GRACE: Duration = Duration::from_millis(50);

/// Drives this thread's connection slots concurrently through
/// non-blocking drivers: each slot performs `rounds` sequential `mpq`
/// transfers (a fresh connection per transfer), all slots interleaved
/// in one event loop. Returns the payload bytes transferred.
fn run_client_slots(
    slots: &[usize],
    server: SocketAddr,
    rounds: usize,
    size: usize,
    seed_base: u64,
) -> u64 {
    enum Phase {
        /// Request written; accumulating the response.
        Transfer,
        /// Clean close sent; waiting for it to land.
        Closing(Instant),
    }
    struct Slot {
        index: usize,
        round: usize,
        driver: mpquic_io::Driver<mpquic_io::QuicTransport>,
        phase: Phase,
        resp: Vec<u8>,
    }

    // One pattern buffer per thread; each transfer clones it into the
    // send stream (the per-round cost the blocking client also paid).
    let payload = transfer::pattern(size);
    let header = transfer::TransferHeader::for_data("bench.bin", &payload).encode();
    let open = |index: usize, round: usize| -> Slot {
        let config = Config::builder()
            .single_path()
            .build()
            .expect("client config");
        let local: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
        let seed = seed_base + (index * rounds + round) as u64;
        let mut driver = quic_client(config, &[local], server, seed).expect("client bind");
        // The whole request is buffered into the pre-opened app stream
        // up front; the core flushes it as the handshake and windows
        // allow.
        let conn = driver.connection_mut();
        let _ = conn.stream_write(APP_STREAM, bytes::Bytes::from(header.clone()));
        let _ = conn.stream_write(APP_STREAM, bytes::Bytes::from(payload.clone()));
        conn.stream_finish(APP_STREAM);
        Slot {
            index,
            round,
            driver,
            phase: Phase::Transfer,
            resp: Vec::with_capacity(16),
        }
    };

    let mut bytes = 0u64;
    let mut active: Vec<Slot> = slots.iter().map(|&i| open(i, 0)).collect();
    while !active.is_empty() {
        let mut progressed = false;
        let mut idx = 0;
        while idx < active.len() {
            let slot = &mut active[idx];
            progressed |= slot.driver.step().unwrap_or(false);
            let conn = slot.driver.connection_mut();
            match slot.phase {
                Phase::Transfer => {
                    while let Some(chunk) = conn.stream_read(APP_STREAM, usize::MAX) {
                        slot.resp.extend_from_slice(&chunk);
                    }
                    if conn.stream_is_finished(APP_STREAM) {
                        let (ok, _checksum) =
                            transfer::recv_response(&mut slot.resp.as_slice()).expect("response");
                        assert!(ok, "server failed to verify transfer");
                        bytes += size as u64;
                        // Close cleanly so the server retires the
                        // connection now instead of waiting out its
                        // idle timer (a pinned slot would starve the
                        // accept limit).
                        conn.close(0, "transfer complete");
                        slot.phase = Phase::Closing(Instant::now());
                        progressed = true;
                    }
                }
                Phase::Closing(since) => {
                    if conn.is_closed() || since.elapsed() > CLOSE_GRACE {
                        let (index, round) = (slot.index, slot.round + 1);
                        if round < rounds {
                            active[idx] = open(index, round);
                        } else {
                            active.swap_remove(idx);
                            continue;
                        }
                        progressed = true;
                    }
                }
            }
            idx += 1;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    bytes
}

fn usage(message: &str) -> ! {
    eprintln!("mpquic-bench: {message}");
    eprintln!(
        "usage: mpquic-bench [conns] [--smoke] [--out PATH] [--baseline PATH] \
         [--conns M] [--workers N] [--gate-overhead] \
         [--backend auto|uring|mmsg|portable]"
    );
    std::process::exit(1)
}

/// Runs one mode: a receiver thread drains its registry while the main
/// thread sends as fast as the sockets accept, then reports accepted
/// datagrams over the measured window. With `plane`, every send
/// iteration also updates the endpoint metrics plane the way a worker
/// shard's loop does — Relaxed counter bumps plus a log2 histogram
/// record of the iteration time — so the metered arm prices exactly
/// the per-iteration instrumentation the real datapath carries.
fn run_mode(
    batched: bool,
    warmup: Duration,
    measure: Duration,
    plane: Option<&EndpointPlane>,
    choice: BackendChoice,
) -> std::io::Result<ModeResult> {
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
    let mut sender = SocketRegistry::bind_with(&[loopback], choice)?;
    let mut receiver = SocketRegistry::bind_with(&[loopback], choice)?;
    let from = sender.local_addrs()[0];
    let to = receiver.local_addrs()[0];

    let stop = Arc::new(AtomicBool::new(false));
    let drain_stop = stop.clone();
    let drain = std::thread::spawn(move || {
        let mut batch = RecvBatch::new(64);
        let mut received: u64 = 0;
        // Acquire pairs with the main thread's Release store below.
        while !drain_stop.load(Ordering::Acquire) {
            match receiver.poll_recv_batch(&mut batch) {
                Ok(0) => std::thread::yield_now(),
                Ok(n) => received += n as u64,
                Err(_) => std::thread::yield_now(),
            }
        }
        received
    });

    let payload = vec![0xa5u8; SEGMENT * TRAIN];
    let mut datagrams: u64 = 0;

    // Warm-up: reach steady state (socket buffers sized, scratch arrays
    // at high-water capacity), then reset the counters.
    let warm_until = Instant::now() + warmup;
    while Instant::now() < warm_until {
        send_once(&mut sender, from, to, &payload, batched);
    }
    alloc_count::reset_thread_counts();
    let syscalls_before = sender.batch_stats().send_syscalls;
    let started = Instant::now();

    let until = started + measure;
    match plane {
        None => {
            while Instant::now() < until {
                datagrams += send_once(&mut sender, from, to, &payload, batched);
            }
        }
        Some(plane) => {
            let shard = plane.shard(0);
            loop {
                let iter_start = Instant::now();
                if iter_start >= until {
                    break;
                }
                let sent = send_once(&mut sender, from, to, &payload, batched);
                datagrams += sent;
                plane.stats.datagrams_in.add(sent);
                shard.loop_iterations.add(1);
                if sent > 0 {
                    shard.busy_iterations.add(1);
                }
                shard.loop_ns.record(iter_start.elapsed().as_nanos() as u64);
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let allocs = alloc_count::thread_counts().allocs;
    let syscalls = sender.batch_stats().send_syscalls - syscalls_before;

    // Release pairs with the drain thread's Acquire load: everything
    // sent before the stop is visible to its final accounting.
    stop.store(true, Ordering::Release);
    let _ = drain.join();

    Ok(ModeResult {
        datagrams,
        bytes: datagrams * SEGMENT as u64,
        syscalls,
        elapsed,
        allocs_per_sec: allocs as f64 / elapsed,
    })
}

fn send_once(
    sender: &mut SocketRegistry,
    from: SocketAddr,
    to: SocketAddr,
    payload: &[u8],
    batched: bool,
) -> u64 {
    if batched {
        sender
            .send_train(from, to, payload, Some(SEGMENT))
            .unwrap_or(0) as u64
    } else {
        let mut sent = 0;
        for chunk in payload.chunks(SEGMENT) {
            if sender.send_from(from, to, chunk).unwrap_or(false) {
                sent += 1;
            }
        }
        sent
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    single: &ModeResult,
    batched: &ModeResult,
    metered: &ModeResult,
    speedup: f64,
    overhead: f64,
    smoke: bool,
    choice: BackendChoice,
    auto_backend: &str,
    matrix: &[(BackendChoice, Option<ModeResult>)],
) -> String {
    let mut backends = String::from("{");
    for (i, (arm, result)) in matrix.iter().enumerate() {
        if i > 0 {
            backends.push(',');
        }
        match result {
            Some(r) => backends.push_str(&format!(
                "\n    \"{arm}\": {{\n      \"available\": true,\n      \
                 \"datagrams_per_sec\": {:.0},\n      \
                 \"bytes_per_sec\": {:.0},\n      \"syscalls\": {},\n      \
                 \"allocs_steady_state_per_sec\": {:.1}\n    }}",
                r.datagrams_per_sec(),
                r.bytes_per_sec(),
                r.syscalls,
                r.allocs_per_sec,
            )),
            None => backends.push_str(&format!(
                "\n    \"{arm}\": {{\n      \"available\": false\n    }}"
            )),
        }
    }
    backends.push_str("\n  }");

    format!(
        "{{\n  \"benchmark\": \"datapath_loopback\",\n  \"smoke\": {smoke},\n  \
         \"segment_bytes\": {SEGMENT},\n  \"train_segments\": {TRAIN},\n  \
         \"backend\": \"{choice}\",\n  \"auto_backend\": \"{auto_backend}\",\n  \
         \"single\": {{\n    \"datagrams_per_sec\": {:.0},\n    \
         \"bytes_per_sec\": {:.0},\n    \"syscalls\": {}\n  }},\n  \
         \"batched\": {{\n    \"datagrams_per_sec\": {:.0},\n    \
         \"bytes_per_sec\": {:.0},\n    \"syscalls\": {},\n    \
         \"allocs_steady_state_per_sec\": {:.1},\n    \
         \"syscalls_saved\": {}\n  }},\n  \
         \"metered\": {{\n    \"datagrams_per_sec\": {:.0},\n    \
         \"bytes_per_sec\": {:.0},\n    \"syscalls\": {},\n    \
         \"allocs_steady_state_per_sec\": {:.1}\n  }},\n  \
         \"backends\": {backends},\n  \
         \"batched_datagrams_per_sec\": {:.0},\n  \
         \"metrics_overhead_ratio\": {overhead:.3},\n  \"speedup\": {speedup:.3}\n}}\n",
        single.datagrams_per_sec(),
        single.bytes_per_sec(),
        single.syscalls,
        batched.datagrams_per_sec(),
        batched.bytes_per_sec(),
        batched.syscalls,
        batched.allocs_per_sec,
        batched.datagrams.saturating_sub(batched.syscalls),
        metered.datagrams_per_sec(),
        metered.bytes_per_sec(),
        metered.syscalls,
        metered.allocs_per_sec,
        batched.datagrams_per_sec(),
    )
}
