//! Ablation benches for the design choices DESIGN.md §6 calls out.
//!
//! Each bench pair runs the same workload with a design feature on and
//! off; `cargo run --release -p mpquic-harness --bin ablations` prints
//! the *simulated* outcome comparison (transfer times, handover delays),
//! while these benches track the computational cost of each variant.

use criterion::{criterion_group, criterion_main, Criterion};
use mpquic_core::SchedulerKind;
use mpquic_harness::{run_file_transfer, run_handover, HandoverConfig, Overrides, Protocol};
use mpquic_netsim::PathSpec;
use std::hint::black_box;
use std::time::Duration;

const SIZE: usize = 512 << 10;
const CAP: Duration = Duration::from_secs(60);

fn heterogeneous_paths() -> [PathSpec; 2] {
    [
        PathSpec::new(12.0, 20, 80, 0.0),
        PathSpec::new(4.0, 90, 80, 0.0),
    ]
}

fn bench_scheduler_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_scheduler");
    group.sample_size(10);
    for (name, kind) in [
        ("lowest_rtt_duplicate", SchedulerKind::LowestRtt),
        (
            "lowest_rtt_no_duplicate",
            SchedulerKind::LowestRttNoDuplicate,
        ),
        ("round_robin", SchedulerKind::RoundRobin),
        ("redundant", SchedulerKind::Redundant),
        ("blest", SchedulerKind::Blest),
    ] {
        group.bench_function(name, |b| {
            let overrides = Overrides {
                scheduler: Some(kind),
                ..Overrides::default()
            };
            b.iter(|| {
                let outcome = run_file_transfer(
                    &heterogeneous_paths(),
                    Protocol::Mpquic,
                    SIZE,
                    3,
                    CAP,
                    black_box(&overrides),
                );
                black_box(outcome.duration_secs)
            })
        });
    }
    group.finish();
}

fn bench_pn_space_ablation(c: &mut Criterion) {
    // The paper's per-path packet-number spaces (§3.1) vs one shared
    // space: the shared variant lets slow-path reordering distort
    // fast-path loss detection, and this pair tracks what the extra
    // spurious-retransmission work costs.
    let mut group = c.benchmark_group("ablate_pn_space");
    group.sample_size(10);
    for (name, shared) in [("per_path_spaces", false), ("single_shared_space", true)] {
        group.bench_function(name, |b| {
            let overrides = Overrides {
                shared_pn_space: Some(shared),
                ..Overrides::default()
            };
            b.iter(|| {
                let outcome = run_file_transfer(
                    &heterogeneous_paths(),
                    Protocol::Mpquic,
                    SIZE,
                    3,
                    CAP,
                    black_box(&overrides),
                );
                black_box(outcome.duration_secs)
            })
        });
    }
    group.finish();
}

fn bench_window_update_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_wupdate");
    group.sample_size(10);
    for (name, dup) in [
        ("duplicated_on_all_paths", true),
        ("single_path_only", false),
    ] {
        group.bench_function(name, |b| {
            let overrides = Overrides {
                duplicate_window_updates: Some(dup),
                // Small receive window so WINDOW_UPDATE delivery matters.
                quic_recv_window: Some(256 << 10),
                ..Overrides::default()
            };
            b.iter(|| {
                let outcome = run_file_transfer(
                    &heterogeneous_paths(),
                    Protocol::Mpquic,
                    SIZE,
                    3,
                    CAP,
                    black_box(&overrides),
                );
                black_box(outcome.duration_secs)
            })
        });
    }
    group.finish();
}

fn bench_paths_frame_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_paths_frame");
    group.sample_size(10);
    for (name, enabled) in [("with_paths_frame", true), ("without_paths_frame", false)] {
        group.bench_function(name, |b| {
            let config = HandoverConfig {
                overrides: Overrides {
                    send_paths_frames: Some(enabled),
                    ..Overrides::default()
                },
                ..HandoverConfig::default()
            };
            b.iter(|| {
                let delays = run_handover(black_box(&config), 42);
                black_box(delays.iter().map(|(_, d)| *d).fold(0.0, f64::max))
            })
        });
    }
    group.finish();
}

fn bench_cc_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_cc");
    group.sample_size(10);
    for (name, cc) in [
        ("olia", mpquic_cc::CcAlgorithm::Olia),
        ("lia", mpquic_cc::CcAlgorithm::Lia),
        ("uncoupled_cubic", mpquic_cc::CcAlgorithm::Cubic),
        ("uncoupled_bbr_lite", mpquic_cc::CcAlgorithm::BbrLite),
    ] {
        group.bench_function(name, |b| {
            let overrides = Overrides {
                cc: Some(cc),
                ..Overrides::default()
            };
            b.iter(|| {
                let outcome = run_file_transfer(
                    &heterogeneous_paths(),
                    Protocol::Mpquic,
                    SIZE,
                    3,
                    CAP,
                    black_box(&overrides),
                );
                black_box(outcome.goodput)
            })
        });
    }
    group.finish();
}

fn bench_orp_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_orp");
    group.sample_size(10);
    for (name, orp) in [("mptcp_with_orp", true), ("mptcp_without_orp", false)] {
        group.bench_function(name, |b| {
            let overrides = Overrides {
                orp: Some(orp),
                ..Overrides::default()
            };
            b.iter(|| {
                let outcome = run_file_transfer(
                    &heterogeneous_paths(),
                    Protocol::Mptcp,
                    SIZE,
                    3,
                    CAP,
                    black_box(&overrides),
                );
                black_box(outcome.duration_secs)
            })
        });
    }
    group.finish();
}

fn bench_ack_ranges_ablation(c: &mut Criterion) {
    // The paper: "the ACK frame ... can acknowledge up to 256 packet
    // number ranges. This is much larger than the 2-3 blocks ... with the
    // SACK TCP option." Cap QUIC's ACK ranges at 3 and compare recovery
    // on a lossy path.
    let mut group = c.benchmark_group("ablate_ack_ranges");
    group.sample_size(10);
    for (name, ranges) in [
        ("quic_256_ranges", 256usize),
        ("quic_3_ranges_like_sack", 3),
    ] {
        group.bench_function(name, |b| {
            let overrides = Overrides {
                quic_ack_ranges: Some(ranges),
                ..Overrides::default()
            };
            let lossy = [PathSpec::new(10.0, 100, 50, 2.5)];
            b.iter(|| {
                let outcome =
                    run_file_transfer(&lossy, Protocol::Quic, SIZE, 3, CAP, black_box(&overrides));
                black_box(outcome.duration_secs)
            })
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_scheduler_ablation,
    bench_pn_space_ablation,
    bench_window_update_ablation,
    bench_paths_frame_ablation,
    bench_cc_ablation,
    bench_orp_ablation,
    bench_ack_ranges_ablation
);
criterion_main!(ablations);
