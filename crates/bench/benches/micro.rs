//! Micro-benches of the hot paths: wire codecs, packet protection, ACK
//! range bookkeeping, scheduling decisions, link model and a complete
//! small transfer per protocol.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpquic_crypto::{nonce_for, Aead, NonceMode};
use mpquic_harness::{run_file_transfer, Overrides, Protocol};
use mpquic_netsim::{Link, LinkParams, PathSpec};
use mpquic_util::{DetRng, RangeSet, SimTime};
use mpquic_wire::{AckFrame, Frame, PathId, StreamFrame};
use std::hint::black_box;
use std::time::Duration;

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let stream_frame = Frame::Stream(StreamFrame {
        stream_id: 1,
        offset: 1 << 30,
        data: Bytes::from(vec![0xAB; 1200]),
        fin: false,
    });
    group.throughput(Throughput::Bytes(1200));
    group.bench_function("stream_frame_encode", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(1400);
            black_box(&stream_frame).encode(&mut buf);
            black_box(buf.len())
        })
    });
    let mut encoded = BytesMut::new();
    stream_frame.encode(&mut encoded);
    let encoded = encoded.freeze();
    group.bench_function("stream_frame_decode", |b| {
        b.iter(|| {
            let mut read = &encoded[..];
            black_box(Frame::decode(&mut read).unwrap())
        })
    });
    // A worst-case ACK frame: 256 ranges.
    let mut set = RangeSet::new();
    for i in 0..256u64 {
        set.insert_range(i * 10, i * 10 + 3);
    }
    let ack = Frame::Ack(AckFrame::from_range_set(PathId(1), &set, 100).unwrap());
    group.bench_function("ack_frame_256_ranges_encode", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(4096);
            black_box(&ack).encode(&mut buf);
            black_box(buf.len())
        })
    });
    group.finish();
}

fn bench_tcp_segment_codec(c: &mut Criterion) {
    use mpquic_tcp::segment::{flags, DssOption, Segment};
    let mut seg = Segment::new(1 << 30, 1 << 20, flags::ACK);
    seg.window = 16 << 20;
    seg.payload = Bytes::from(vec![0x55; 1330]);
    seg.mptcp.dss = Some(DssOption {
        dsn: 1 << 31,
        data_ack: 1 << 29,
        data_fin: false,
    });
    seg.sack = vec![(100, 2000), (5000, 7000), (9000, 9500)];
    let mut group = c.benchmark_group("tcp_segment_codec");
    group.throughput(Throughput::Bytes(1330));
    group.bench_function("segment_encode", |b| {
        b.iter(|| black_box(black_box(&seg).encode().len()))
    });
    let encoded = seg.encode();
    group.bench_function("segment_decode", |b| {
        b.iter(|| black_box(Segment::decode(black_box(&encoded)).unwrap()))
    });
    group.finish();
}

fn bench_packet_protection(c: &mut Criterion) {
    let aead = Aead::new([7u8; 32]);
    let payload = vec![0xEE; 1300];
    let header = [0x41u8; 12];
    let nonce = nonce_for(NonceMode::PathIdMixed, 3, 123_456);
    let mut group = c.benchmark_group("packet_protection");
    group.throughput(Throughput::Bytes(1300));
    group.bench_function("seal_1300B", |b| {
        b.iter(|| black_box(aead.seal(&nonce, &header, black_box(&payload))))
    });
    let sealed = aead.seal(&nonce, &header, &payload);
    group.bench_function("open_1300B", |b| {
        b.iter(|| black_box(aead.open(&nonce, &header, black_box(&sealed)).unwrap()))
    });
    group.finish();
}

fn bench_range_set(c: &mut Criterion) {
    c.bench_function("range_set/insert_10k_with_gaps", |b| {
        b.iter(|| {
            let mut set = RangeSet::new();
            for i in 0..10_000u64 {
                // ~1% gaps, like a lossy receive sequence.
                if i % 97 != 0 {
                    set.insert(black_box(i));
                }
            }
            black_box(set.range_count())
        })
    });
}

fn bench_link_model(c: &mut Criterion) {
    c.bench_function("link/offer_100k_packets", |b| {
        b.iter(|| {
            let mut link = Link::new(LinkParams::from_paper_units(100.0, 10.0, 50.0, 1.0));
            let mut rng = DetRng::new(5);
            let mut delivered = 0u64;
            for i in 0..100_000u64 {
                let t = SimTime::from_micros(i * 110);
                if link.offer(t, 1378, &mut rng).is_ok() {
                    delivered += 1;
                }
            }
            black_box(delivered)
        })
    });
}

fn bench_full_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_transfer_256kb");
    group.sample_size(10);
    let duo = [
        PathSpec::new(10.0, 30, 50, 0.0),
        PathSpec::new(5.0, 60, 50, 0.0),
    ];
    for protocol in Protocol::ALL {
        group.bench_function(protocol.name(), |b| {
            let specs: &[PathSpec] = if protocol.is_multipath() {
                &duo
            } else {
                &duo[..1]
            };
            b.iter(|| {
                let outcome = run_file_transfer(
                    black_box(specs),
                    protocol,
                    256 << 10,
                    9,
                    Duration::from_secs(30),
                    &Overrides::default(),
                );
                black_box(outcome.duration_secs)
            })
        });
    }
    group.finish();
}

criterion_group!(
    micro,
    bench_wire_codec,
    bench_tcp_segment_codec,
    bench_packet_protection,
    bench_range_set,
    bench_link_model,
    bench_full_transfers
);
criterion_main!(micro);
