//! One bench per paper table/figure.
//!
//! Each bench runs a scaled-down version of the corresponding
//! experiment with identical structure (WSP design → four protocols →
//! ratio/benefit metrics). Full-scale regeneration is
//! `cargo run --release -p mpquic-harness --bin figN`.

use criterion::{criterion_group, criterion_main, Criterion};
use mpquic_bench::{bench_sweep, SCALED_LARGE, SHORT};
use mpquic_expdesign::table1::design_scenarios;
use mpquic_expdesign::ExperimentClass;
use mpquic_harness::{run_class_sweep, run_handover, HandoverConfig};
use std::hint::black_box;

fn bench_table1_design(c: &mut Criterion) {
    c.bench_function("table1_design/wsp_253_scenarios", |b| {
        b.iter(|| {
            let scenarios = design_scenarios(
                black_box(ExperimentClass::LowBdpNoLoss),
                mpquic_expdesign::SCENARIOS_PER_CLASS,
            );
            black_box(scenarios.len())
        })
    });
}

fn bench_ratio_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_ratio_cdf");
    group.sample_size(10);
    for (name, class, size) in [
        (
            "fig3_low_bdp_no_loss_20mb",
            ExperimentClass::LowBdpNoLoss,
            SCALED_LARGE,
        ),
        (
            "fig5_low_bdp_losses_20mb",
            ExperimentClass::LowBdpLosses,
            SCALED_LARGE,
        ),
        (
            "fig8_high_bdp_losses_20mb",
            ExperimentClass::HighBdpLosses,
            SCALED_LARGE,
        ),
        (
            "fig9_low_bdp_no_loss_256kb",
            ExperimentClass::LowBdpNoLoss,
            SHORT,
        ),
    ] {
        group.bench_function(name, |b| {
            let config = bench_sweep(class, size);
            b.iter(|| {
                let results = run_class_sweep(black_box(&config));
                black_box(results.mpquic_win_fraction())
            })
        });
    }
    group.finish();
}

fn bench_benefit_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_aggregation_benefit");
    group.sample_size(10);
    for (name, class, size) in [
        (
            "fig4_low_bdp_no_loss",
            ExperimentClass::LowBdpNoLoss,
            SCALED_LARGE,
        ),
        (
            "fig6_low_bdp_losses",
            ExperimentClass::LowBdpLosses,
            SCALED_LARGE,
        ),
        (
            "fig7_high_bdp_no_loss",
            ExperimentClass::HighBdpNoLoss,
            SCALED_LARGE,
        ),
        (
            "fig10_short_transfers",
            ExperimentClass::LowBdpNoLoss,
            SHORT,
        ),
    ] {
        group.bench_function(name, |b| {
            let config = bench_sweep(class, size);
            b.iter(|| {
                let results = run_class_sweep(black_box(&config));
                black_box((
                    results.beneficial_fraction(true),
                    results.beneficial_fraction(false),
                ))
            })
        });
    }
    group.finish();
}

fn bench_fig11_handover(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_handover");
    group.sample_size(10);
    group.bench_function("fig11_mpquic_handover", |b| {
        let config = HandoverConfig::default();
        b.iter(|| {
            let delays = run_handover(black_box(&config), 42);
            black_box(delays.len())
        })
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_table1_design,
    bench_ratio_figures,
    bench_benefit_figures,
    bench_fig11_handover
);
criterion_main!(figures);
