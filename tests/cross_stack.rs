//! Workspace-level integration tests spanning every crate: the wire
//! format, crypto, both protocol stacks, the simulator, the experimental
//! design and the harness — invariants that only hold when all the
//! pieces cooperate.

use bytes::Bytes;
use mpquic_core::{Config, Connection, PathId, Transmit};
use mpquic_crypto::{nonce_for, NonceMode};
use mpquic_expdesign::table1::design_scenarios;
use mpquic_expdesign::ExperimentClass;
use mpquic_harness::{run_file_transfer, Overrides, Protocol};
use mpquic_netsim::{Datagram, Endpoint, NetworkPlan, PathSpec, Simulation};
use mpquic_util::SimTime;
use mpquic_wire::PublicHeader;
use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::Duration;

/// An endpoint wrapper that records every public header it emits, so
/// tests can check wire-level invariants of a live connection.
struct RecordingEndpoint {
    conn: Connection,
    headers: Vec<PublicHeader>,
}

impl Endpoint for RecordingEndpoint {
    fn on_datagram(&mut self, now: SimTime, local: SocketAddr, remote: SocketAddr, payload: &[u8]) {
        self.conn.handle_datagram(now, local, remote, payload);
    }
    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        self.conn.poll_transmit(now).map(|t: Transmit| {
            let mut cursor = &t.payload[..];
            let header = PublicHeader::decode(&mut cursor).expect("own packets parse");
            self.headers.push(header);
            Datagram {
                local: t.local,
                remote: t.remote,
                payload: t.payload,
            }
        })
    }
    fn next_timeout(&self) -> Option<SimTime> {
        self.conn.next_timeout()
    }
    fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
    }
}

fn run_recorded_transfer(size: usize) -> (RecordingEndpoint, RecordingEndpoint) {
    let plan = NetworkPlan::two_host(&[
        PathSpec::new(10.0, 30, 80, 1.0),
        PathSpec::new(6.0, 50, 80, 1.0),
    ]);
    let mut client = Connection::client(
        Config::multipath(),
        plan.client_addrs.clone(),
        0,
        plan.server_addrs[0],
        11,
    );
    let server = Connection::server(Config::multipath(), plan.server_addrs.clone(), 12);
    let stream = client.open_stream();
    client
        .stream_write(stream, Bytes::from(vec![9u8; size]))
        .unwrap();
    client.stream_finish(stream);
    let mut sim = Simulation::new(
        RecordingEndpoint {
            conn: client,
            headers: Vec::new(),
        },
        RecordingEndpoint {
            conn: server,
            headers: Vec::new(),
        },
        plan,
        13,
    );
    let done = sim.run_until(SimTime::ZERO + Duration::from_secs(120), |_c, s, _| {
        while s.conn.stream_read(stream, usize::MAX).is_some() {}
        s.conn.stream_is_finished(stream)
    });
    assert!(done, "transfer must complete");
    let Simulation { a, b, .. } = sim;
    (a, b)
}

#[test]
fn packet_numbers_monotonic_per_path_on_the_wire() {
    let (client, server) = run_recorded_transfer(1 << 20);
    for endpoint in [&client, &server] {
        let mut last: std::collections::HashMap<PathId, u64> = Default::default();
        for header in &endpoint.headers {
            if let Some(prev) = last.get(&header.path_id) {
                assert!(
                    header.packet_number > *prev,
                    "pn must increase per path: {header:?} after {prev}"
                );
            }
            last.insert(header.path_id, header.packet_number);
        }
    }
}

#[test]
fn nonces_never_repeat_across_the_whole_connection() {
    // The paper's §3 security concern: with per-path packet-number spaces
    // the nonce must involve the Path ID. Verify no nonce repeats across
    // every packet either endpoint sent in a real multipath transfer.
    let (client, server) = run_recorded_transfer(1 << 20);
    for endpoint in [&client, &server] {
        let mut nonces = HashSet::new();
        for header in &endpoint.headers {
            let nonce = nonce_for(
                NonceMode::PathIdMixed,
                header.path_id.0,
                header.packet_number,
            );
            assert!(nonces.insert(nonce), "nonce reuse at {header:?}");
        }
    }
    // Sanity: both paths actually carried packets (the invariant is
    // about cross-path collisions).
    let paths_used: HashSet<PathId> = client.headers.iter().map(|h| h.path_id).collect();
    assert!(
        paths_used.len() >= 2,
        "expected multipath traffic: {paths_used:?}"
    );
}

#[test]
fn full_pipeline_is_deterministic_end_to_end() {
    let scenario = design_scenarios(ExperimentClass::LowBdpLosses, 3)
        .into_iter()
        .nth(1)
        .unwrap();
    let specs = scenario.path_specs();
    let run = || {
        Protocol::ALL.map(|p| {
            let s: &[PathSpec] = if p.is_multipath() {
                &specs
            } else {
                &specs[..1]
            };
            run_file_transfer(
                s,
                p,
                256 << 10,
                scenario.seed(),
                Duration::from_secs(60),
                &Overrides::default(),
            )
            .duration_secs
        })
    };
    assert_eq!(run(), run());
}

#[test]
fn all_protocols_complete_across_design_space_sample() {
    // A smoke sweep across all four classes: every protocol must either
    // complete or make measurable progress on every WSP-designed network.
    for class in ExperimentClass::ALL {
        for scenario in design_scenarios(class, 3) {
            let specs = scenario.path_specs();
            for protocol in Protocol::ALL {
                let s: &[PathSpec] = if protocol.is_multipath() {
                    &specs
                } else {
                    &specs[..1]
                };
                let outcome = run_file_transfer(
                    s,
                    protocol,
                    128 << 10,
                    scenario.seed(),
                    Duration::from_secs(90),
                    &Overrides::default(),
                );
                assert!(
                    outcome.bytes_received > 0,
                    "{} moved no data on {class:?} #{}: {outcome:?} (paths {:?})",
                    protocol.name(),
                    scenario.index,
                    scenario.paths,
                );
            }
        }
    }
}

#[test]
fn handshake_latency_ordering_quic_vs_tcp() {
    // 1-RTT QUIC vs 3-RTT TCP+TLS: on a high-latency clean path, the
    // difference for a tiny transfer must be ≈ 2 RTTs.
    let one = [PathSpec::new(50.0, 200, 100, 0.0)];
    let quic = run_file_transfer(
        &one,
        Protocol::Quic,
        10_000,
        5,
        Duration::from_secs(30),
        &Overrides::default(),
    );
    let tcp = run_file_transfer(
        &one,
        Protocol::Tcp,
        10_000,
        5,
        Duration::from_secs(30),
        &Overrides::default(),
    );
    let gap = tcp.duration_secs - quic.duration_secs;
    assert!(
        (0.3..0.6).contains(&gap),
        "expected ~2 RTT (0.4s) handshake gap, got {gap:.3}s (TCP {:.3}, QUIC {:.3})",
        tcp.duration_secs,
        quic.duration_secs
    );
}

#[test]
fn three_paths_aggregate() {
    // The paper evaluates two paths; the design supports N. Three
    // disjoint paths must all open (odd client Path IDs 1, 3) and all
    // carry data.
    use mpquic_harness::{build_pair, App};
    use mpquic_netsim::Simulation;
    let plan = NetworkPlan::two_host(&[
        PathSpec::new(6.0, 30, 100, 0.0),
        PathSpec::new(6.0, 50, 100, 0.0),
        PathSpec::new(6.0, 70, 100, 0.0),
    ]);
    let (client, server) = build_pair(
        Protocol::Mpquic,
        &plan,
        17,
        App::file_client(100),
        App::file_server(100, 6 << 20),
        &Overrides::default(),
    );
    let mut sim = Simulation::new(client, server, plan, 17);
    let done = sim.run_until(SimTime::ZERO + Duration::from_secs(120), |c, _, _| {
        c.app.done_at().is_some()
    });
    assert!(done, "three-path transfer should finish");
    let conn = sim.b.transport.quic().expect("server side");
    let ids = conn.path_ids();
    assert_eq!(ids.len(), 3, "paths: {ids:?}");
    for id in ids {
        let path = conn.path(id).expect("listed");
        assert!(
            path.bytes_sent > 200_000,
            "{id} should carry a meaningful share, sent {}",
            path.bytes_sent
        );
    }
    // Aggregation: 6 MB over 3 × 6 Mbps should be much faster than one path.
    let elapsed = sim.a.app.done_at().unwrap().as_secs_f64();
    assert!(
        elapsed < 2.0 * 6.0 * 8.0 / 18.0 + 1.0,
        "aggregate throughput should approach 18 Mbps: took {elapsed:.2}s"
    );
}
