//! A multipath transfer over **real UDP sockets** — no simulator.
//!
//! Everything the other examples do inside `mpquic-netsim`, this one does
//! through the OS network stack: the client binds two loopback ports (its
//! two "interfaces"), the server binds one, and `mpquic-io` drives the
//! same sans-IO `Connection` over `std::net::UdpSocket`. The server runs
//! in a thread, standing in for a separate process; `mpq-server` and
//! `mpq-client` are the two halves as real binaries.
//!
//! Run with:
//! `cargo run --release --example loopback_transfer -- [size_mb] [--qlog FILE]`
//!
//! With `--qlog FILE` the client connection streams its telemetry events
//! (scheduler decisions, per-path metrics updates, ...) to FILE as JSON
//! lines while the transfer runs.

use mpquic_core::telemetry::{MetricsSubscriber, StreamingQlog};
use mpquic_core::Config;
use mpquic_io::{quic_client, quic_server, transfer, BlockingStream};
use std::io::Read;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn main() {
    let mut size_mb = 4.0f64;
    let mut qlog_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--qlog" {
            qlog_path = args.next();
        } else if let Ok(v) = arg.parse() {
            size_mb = v;
        }
    }
    let size = (size_mb * 1024.0 * 1024.0) as usize;
    let loopback: SocketAddr = "127.0.0.1:0".parse().unwrap();

    // The "remote host": one socket, its address advertised via
    // ADD_ADDRESS during the handshake.
    let (addr_tx, addr_rx) = mpsc::channel();
    let server = std::thread::spawn(move || {
        let driver = quic_server(
            Config::builder().build().expect("defaults are valid"),
            &[loopback],
            2,
        )
        .expect("bind server");
        addr_tx.send(driver.local_addrs()[0]).unwrap();
        let mut stream = BlockingStream::new(driver);
        stream.wait_established().expect("server handshake");
        let (header, _payload) = transfer::recv_request(&mut stream).expect("receive upload");
        transfer::send_response(&mut stream, true, header.checksum).expect("send verdict");
        stream.finish().expect("finish");
        let _ = stream.driver_mut().run_until(Duration::from_secs(2), |t| {
            t.conn.stream_fully_acked(1) || t.conn.is_closed()
        });
        header
    });
    let server_addr = addr_rx.recv().expect("server came up");

    // The "client host": two loopback ports play the role of two
    // interfaces (say, Wi-Fi and LTE on a smartphone).
    let mut driver = quic_client(
        Config::builder().build().expect("defaults are valid"),
        &[loopback, loopback],
        server_addr,
        1,
    )
    .expect("bind client");
    let (metrics, metrics_handle) = MetricsSubscriber::new();
    let qlog = qlog_path.as_deref().map(|path| {
        StreamingQlog::create(path).unwrap_or_else(|e| panic!("create qlog {path}: {e}"))
    });
    driver
        .connection_mut()
        .set_subscriber(Box::new((metrics, qlog)));
    println!(
        "client {:?} -> server {server_addr} ({:.1} MB over real UDP sockets)",
        driver.local_addrs(),
        size as f64 / 1048576.0
    );
    let mut stream = BlockingStream::new(driver);
    stream.wait_established().expect("client handshake");

    let started = Instant::now();
    let payload = transfer::pattern(size);
    transfer::send_request(&mut stream, "loopback.bin", &payload).expect("send upload");
    stream.finish().expect("finish");
    let (verified, checksum) = transfer::recv_response(&mut stream).expect("read verdict");
    let elapsed = started.elapsed().as_secs_f64();
    assert!(verified && checksum == transfer::fnv1a64(&payload));

    let mut sink = Vec::new();
    stream.read_to_end(&mut sink).expect("drain EOF");
    let mut driver = stream.into_driver();
    driver.connection_mut().close(0, "done");
    let _ = driver.run_for(Duration::from_millis(100));
    let header = server.join().expect("server thread");
    assert_eq!(header.size as usize, size);

    println!();
    println!(
        "server verified {} bytes in {elapsed:.3} s ({:.1} Mbit/s)",
        size,
        size as f64 * 8.0 / elapsed / 1e6
    );
    let conn = driver.connection();
    let total: u64 = conn
        .path_ids()
        .iter()
        .map(|&id| conn.path(id).unwrap().bytes_sent)
        .sum();
    let snapshot = metrics_handle.snapshot();
    for id in conn.path_ids() {
        let path = conn.path(id).unwrap();
        let share = snapshot
            .path(id)
            .map(|p| p.sched_share * 100.0)
            .unwrap_or(0.0);
        println!(
            "path {}: {} -> {}  {} B sent ({:.1}% of wire bytes, {share:.1}% of \
             scheduler picks), srtt {:.2} ms",
            id.0,
            path.local,
            path.remote,
            path.bytes_sent,
            path.bytes_sent as f64 * 100.0 / total.max(1) as f64,
            path.rtt.srtt().as_secs_f64() * 1e3,
        );
    }
    if let Some(path) = &qlog_path {
        // The streaming writer flushed when the connection dropped the
        // subscriber stack; the trace is complete on disk by now.
        drop(driver);
        println!("qlog written to {path}");
    }
}
