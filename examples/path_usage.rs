//! Per-path utilization of an MPQUIC download, from the packet trace —
//! watch the scheduler light up the second path after the handshake and
//! rebalance toward the faster link.
//!
//! Run with: `cargo run --release --example path_usage`

use bytes::Bytes;
use mpquic_core::{Config, Connection, Transmit};
use mpquic_netsim::{Datagram, Endpoint, NetworkPlan, PathSpec, Side, Simulation};
use mpquic_util::SimTime;
use std::net::SocketAddr;
use std::time::Duration;

struct QuicEndpoint {
    conn: Connection,
}

impl Endpoint for QuicEndpoint {
    fn on_datagram(&mut self, now: SimTime, local: SocketAddr, remote: SocketAddr, payload: &[u8]) {
        self.conn.handle_datagram(now, local, remote, payload);
    }
    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        self.conn.poll_transmit(now).map(|t: Transmit| Datagram {
            local: t.local,
            remote: t.remote,
            payload: t.payload,
        })
    }
    fn next_timeout(&self) -> Option<SimTime> {
        self.conn.next_timeout()
    }
    fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
    }
}

fn bar(bytes: u64, per_char: u64) -> String {
    "█".repeat((bytes / per_char.max(1)) as usize)
}

fn main() {
    // Asymmetric paths: fast/short vs slow/long.
    let plan = NetworkPlan::two_host(&[
        PathSpec::new(16.0, 30, 100, 0.0),
        PathSpec::new(6.0, 90, 100, 0.0),
    ]);
    let mut client = Connection::client(
        Config::builder().build().expect("defaults are valid"),
        plan.client_addrs.clone(),
        0,
        plan.server_addrs[0],
        0x7ACE,
    );
    let server = Connection::server(
        Config::builder().build().expect("defaults are valid"),
        plan.server_addrs.clone(),
        0x7ACF,
    );

    // Server-push style: client requests, server sends 6 MB back.
    let stream = client.open_stream();
    client
        .stream_write(stream, Bytes::from_static(b"GET /big"))
        .expect("write");
    client.stream_finish(stream);

    let mut sim = Simulation::new(
        QuicEndpoint { conn: client },
        QuicEndpoint { conn: server },
        plan,
        9,
    );
    sim.enable_trace();

    let mut responded = false;
    let done = sim.run_until(SimTime::ZERO + Duration::from_secs(60), |c, s, _now| {
        while s.conn.stream_read(stream, usize::MAX).is_some() {}
        if !responded && s.conn.stream_is_finished(stream) {
            responded = true;
            s.conn
                .stream_write(stream, Bytes::from(vec![0x0Fu8; 6 << 20]))
                .expect("response");
            s.conn.stream_finish(stream);
        }
        while c.conn.stream_read(stream, usize::MAX).is_some() {}
        responded && c.conn.stream_is_finished(stream)
    });
    assert!(done, "download should finish");

    let horizon = sim.now();
    let trace = sim.trace().expect("tracing enabled");
    println!(
        "6 MB downloaded in {:.2}s — server-side bytes offered per 250 ms bucket:",
        horizon.as_secs_f64()
    );
    println!(
        "{:>6}  {:<32} {:<32}",
        "t[s]", "path 0 (16 Mbps / 30 ms)", "path 1 (6 Mbps / 90 ms)"
    );
    let bucket = Duration::from_millis(250);
    let u0 = trace.utilization(0, Side::B, bucket, horizon);
    let u1 = trace.utilization(1, Side::B, bucket, horizon);
    // One █ per 20 kB.
    for ((t, b0), (_, b1)) in u0.iter().zip(&u1) {
        println!(
            "{t:>6.2}  {:<32} {:<32}",
            bar(*b0, 20_000),
            bar(*b1, 20_000)
        );
    }
    println!();
    println!(
        "totals: path 0 carried {:.2} MB, path 1 carried {:.2} MB | drop rates {:.2}% / {:.2}%",
        trace.bytes_on_path(0, Side::B, SimTime::ZERO, horizon) as f64 / 1e6,
        trace.bytes_on_path(1, Side::B, SimTime::ZERO, horizon) as f64 / 1e6,
        trace.drop_rate(0) * 100.0,
        trace.drop_rate(1) * 100.0,
    );
}
