//! The §4.3 network-handover experiment, interactively: a smartphone on a
//! bad WiFi network (initial path) and a good cellular network fails over
//! without breaking the request/response flow — Fig. 11, plus an MPTCP
//! comparison run and an ablation without the PATHS frame.
//!
//! Run with: `cargo run --release --example handover`

use mpquic_harness::{run_handover, HandoverConfig, Overrides, Protocol};

fn sparkline(delays: &[(f64, f64)]) -> String {
    const GLYPHS: [char; 7] = ['▁', '▂', '▃', '▄', '▅', '▆', '█'];
    let max = delays.iter().map(|(_, d)| *d).fold(1.0, f64::max);
    delays
        .iter()
        .map(|(_, d)| {
            let idx = ((d / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

fn report(label: &str, delays: &[(f64, f64)]) {
    let worst = delays.iter().map(|(_, d)| *d).fold(0.0, f64::max);
    let after: Vec<f64> = delays
        .iter()
        .filter(|(t, _)| *t > 5.0)
        .map(|(_, d)| *d)
        .collect();
    let post = after.iter().sum::<f64>() / after.len().max(1) as f64;
    println!("{label}");
    println!("  {}", sparkline(delays));
    println!(
        "  answered {} requests | worst delay {worst:.1} ms | post-failover average {post:.1} ms",
        delays.len()
    );
}

fn main() {
    println!("request/response every 400 ms; initial path (15 ms RTT) dies at t = 3 s;");
    println!("second path (25 ms RTT) carries the rest. One glyph per request delay:");
    println!();

    let mpquic = run_handover(&HandoverConfig::default(), 42);
    report("MPQUIC (paper Fig. 11):", &mpquic);

    println!();
    let no_paths_frame = HandoverConfig {
        overrides: Overrides {
            send_paths_frames: Some(false),
            ..Overrides::default()
        },
        ..HandoverConfig::default()
    };
    let ablated = run_handover(&no_paths_frame, 42);
    report(
        "MPQUIC without the PATHS frame (ablation — server must discover the failure itself):",
        &ablated,
    );

    println!();
    let mptcp = HandoverConfig {
        protocol: Protocol::Mptcp,
        ..HandoverConfig::default()
    };
    let tcp_delays = run_handover(&mptcp, 42);
    report("MPTCP (same scenario):", &tcp_delays);

    println!();
    println!("the failover request pays one RTO (~200 ms); everything after continues at the");
    println!("second path's RTT. The PATHS frame spares the *server* its own RTO discovery.");
}
