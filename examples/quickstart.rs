//! Quickstart: a Multipath QUIC transfer over two paths.
//!
//! Shows the sans-IO API directly: build two [`mpquic_core::Connection`]s,
//! join them with the discrete-event network simulator, transfer a file
//! over both paths at once, and inspect what each path carried.
//!
//! Run with: `cargo run --release --example quickstart`

use bytes::Bytes;
use mpquic_core::{Config, Connection, Event, Transmit};
use mpquic_netsim::{Datagram, Endpoint, NetworkPlan, PathSpec, Simulation};
use mpquic_util::SimTime;
use std::net::SocketAddr;
use std::time::Duration;

/// A minimal adapter driving a Connection inside the simulator.
struct QuicEndpoint {
    conn: Connection,
}

impl Endpoint for QuicEndpoint {
    fn on_datagram(&mut self, now: SimTime, local: SocketAddr, remote: SocketAddr, payload: &[u8]) {
        self.conn.handle_datagram(now, local, remote, payload);
    }
    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        self.conn.poll_transmit(now).map(|t: Transmit| Datagram {
            local: t.local,
            remote: t.remote,
            payload: t.payload,
        })
    }
    fn next_timeout(&self) -> Option<SimTime> {
        self.conn.next_timeout()
    }
    fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
    }
}

fn main() {
    // Two disjoint paths, like WiFi (fast, short RTT) + LTE (slower).
    let plan = NetworkPlan::two_host(&[
        PathSpec::new(20.0, 30, 100, 0.0), // 20 Mbps, 30 ms RTT
        PathSpec::new(8.0, 60, 100, 0.0),  //  8 Mbps, 60 ms RTT
    ]);

    // The client dials server address 0 from interface 0; the path
    // manager opens the second path automatically after the handshake,
    // using the addresses the server advertises via ADD_ADDRESS frames.
    let mut client = Connection::client(
        Config::builder().build().expect("defaults are valid"),
        plan.client_addrs.clone(),
        0,
        plan.server_addrs[0],
        0xC0FFEE,
    );
    let server = Connection::server(
        Config::builder().build().expect("defaults are valid"),
        plan.server_addrs.clone(),
        0xBEEF,
    );

    // Queue 4 MB of application data on one stream before the handshake
    // even starts — it will flow as soon as keys are established.
    let stream = client.open_stream();
    client
        .stream_write(stream, Bytes::from(vec![0x42u8; 4 << 20]))
        .expect("fresh stream accepts writes");
    client.stream_finish(stream);

    let mut sim = Simulation::new(
        QuicEndpoint { conn: client },
        QuicEndpoint { conn: server },
        plan,
        7,
    );

    // Drive the simulation until the server has read the whole stream.
    let deadline = SimTime::ZERO + Duration::from_secs(60);
    let mut received = 0usize;
    let done = sim.run_until(deadline, |_client, server, _now| {
        while let Some(chunk) = server.conn.stream_read(stream, usize::MAX) {
            received += chunk.len();
        }
        server.conn.stream_is_finished(stream)
    });
    assert!(done, "transfer should complete");

    println!(
        "transferred {} bytes in {:.3}s of simulated time",
        received,
        sim.now().as_secs_f64()
    );
    println!();
    println!("client paths:");
    for id in sim.a.conn.path_ids() {
        let path = sim.a.conn.path(id).expect("listed");
        println!(
            "  {id}: {} -> {} | sent {} bytes | srtt {:.1} ms | state {:?}",
            path.local,
            path.remote,
            path.bytes_sent,
            path.rtt.srtt().as_secs_f64() * 1e3,
            path.state,
        );
    }
    let stats = sim.a.conn.stats();
    println!();
    println!(
        "stats: {} packets sent, {} duplicated stream frames (unknown-RTT phase), {} retransmitted frames",
        stats.packets_sent, stats.duplicated_stream_frames, stats.frames_retransmitted
    );
    // Surface a couple of interesting events.
    let mut events = Vec::new();
    while let Some(e) = sim.a.conn.poll_event() {
        if matches!(e, Event::HandshakeCompleted | Event::PathActive(_)) {
            events.push(e);
        }
    }
    println!("events: {events:?}");
}
