//! Dual-stack (IPv4 + IPv6) aggregation — the paper's second motivating
//! use case: "a growing fraction of hosts are dual-stack and the IPv4 and
//! IPv6 paths between them often differ and have different performance."
//!
//! The connection starts over IPv4; the server advertises its IPv6
//! address in an encrypted ADD_ADDRESS frame (no MPTCP-style cleartext
//! ADD_ADDR security concerns), and the client opens a second path over
//! IPv6 with data in its very first packet.
//!
//! Run with: `cargo run --release --example dualstack`

use bytes::Bytes;
use mpquic_core::{Config, Connection, Transmit};
use mpquic_netsim::{Datagram, Endpoint, NetworkPlan, PathSpec, Simulation};
use mpquic_util::SimTime;
use std::net::SocketAddr;
use std::time::Duration;

struct QuicEndpoint {
    conn: Connection,
}

impl Endpoint for QuicEndpoint {
    fn on_datagram(&mut self, now: SimTime, local: SocketAddr, remote: SocketAddr, payload: &[u8]) {
        self.conn.handle_datagram(now, local, remote, payload);
    }
    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        self.conn.poll_transmit(now).map(|t: Transmit| Datagram {
            local: t.local,
            remote: t.remote,
            payload: t.payload,
        })
    }
    fn next_timeout(&self) -> Option<SimTime> {
        self.conn.next_timeout()
    }
    fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
    }
}

fn main() {
    // Hand-built plan: path 0 is the IPv4 route, path 1 the IPv6 route
    // (here: lower latency — e.g. native v6 vs a detouring v4 route).
    let plan = NetworkPlan {
        client_addrs: vec![
            "203.0.113.7:40000".parse().unwrap(),
            "[2001:db8:cafe::7]:40000".parse().unwrap(),
        ],
        server_addrs: vec![
            "198.51.100.1:443".parse().unwrap(),
            "[2001:db8:beef::1]:443".parse().unwrap(),
        ],
        paths: vec![
            PathSpec::new(10.0, 70, 100, 0.0), // IPv4: 10 Mbps, 70 ms
            PathSpec::new(10.0, 25, 100, 0.0), // IPv6: 10 Mbps, 25 ms
        ],
    };

    let mut client = Connection::client(
        Config::builder().build().expect("defaults are valid"),
        plan.client_addrs.clone(),
        0, // dial over IPv4
        plan.server_addrs[0],
        0xD0A1,
    );
    let server = Connection::server(
        Config::builder().build().expect("defaults are valid"),
        plan.server_addrs.clone(),
        0xD0A2,
    );

    let stream = client.open_stream();
    client
        .stream_write(stream, Bytes::from(vec![6u8; 3 << 20]))
        .expect("write");
    client.stream_finish(stream);

    let mut sim = Simulation::new(
        QuicEndpoint { conn: client },
        QuicEndpoint { conn: server },
        plan,
        3,
    );
    let done = sim.run_until(SimTime::ZERO + Duration::from_secs(60), |_c, s, _| {
        while s.conn.stream_read(stream, usize::MAX).is_some() {}
        s.conn.stream_is_finished(stream)
    });
    assert!(done);

    println!(
        "3 MB uploaded in {:.3}s over IPv4 + IPv6 simultaneously",
        sim.now().as_secs_f64()
    );
    for id in sim.a.conn.path_ids() {
        let p = sim.a.conn.path(id).expect("listed");
        let family = if p.local.is_ipv4() { "IPv4" } else { "IPv6" };
        println!(
            "  {id} ({family}): {} -> {} | {} bytes sent | srtt {:.1} ms",
            p.local,
            p.remote,
            p.bytes_sent,
            p.rtt.srtt().as_secs_f64() * 1e3
        );
    }
    println!();
    println!("the IPv6 path was advertised in an encrypted ADD_ADDRESS frame and came up");
    println!("mid-connection — no second handshake, data in its first packet.");
}
