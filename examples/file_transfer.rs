//! Compare all four protocols on the same two-path network — the §4.1
//! experiment for one hand-picked scenario.
//!
//! Usage:
//! `cargo run --release --example file_transfer -- [size_mb] [cap0] [rtt0] [cap1] [rtt1] [loss_pct]`
//!
//! Defaults: 20 MB over a 15 Mbps/30 ms path and a 5 Mbps/80 ms path,
//! no random loss.

use mpquic_harness::{aggregation_benefit, run_file_transfer, Overrides, Protocol};
use mpquic_netsim::PathSpec;
use std::time::Duration;

fn arg(n: usize, default: f64) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let size = (arg(1, 20.0) * 1024.0 * 1024.0) as usize;
    let specs = [
        PathSpec::new(arg(2, 15.0), arg(3, 30.0) as u64, 100, arg(6, 0.0)),
        PathSpec::new(arg(4, 5.0), arg(5, 80.0) as u64, 100, arg(6, 0.0)),
    ];
    println!(
        "downloading {:.1} MB over pathA {{{} Mbps, {} ms}} + pathB {{{} Mbps, {} ms}}, loss {:.1}%",
        size as f64 / 1048576.0,
        specs[0].capacity_mbps,
        specs[0].rtt.as_millis(),
        specs[1].capacity_mbps,
        specs[1].rtt.as_millis(),
        specs[0].loss_percent,
    );
    println!();
    println!(
        "{:<8} {:>12} {:>14} {:>10}",
        "protocol", "time [s]", "goodput [Mbps]", "complete"
    );

    let cap = Duration::from_secs(600);
    let overrides = Overrides::default();
    let mut singles = Vec::new();
    let mut multis = Vec::new();
    for protocol in Protocol::ALL {
        let path_slice: &[PathSpec] = if protocol.is_multipath() {
            &specs
        } else {
            &specs[..1]
        };
        let outcome = run_file_transfer(path_slice, protocol, size, 1, cap, &overrides);
        println!(
            "{:<8} {:>12.3} {:>14.2} {:>10}",
            protocol.name(),
            outcome.duration_secs,
            outcome.goodput * 8.0 / 1e6,
            outcome.completed,
        );
        if protocol.is_multipath() {
            multis.push((protocol, outcome));
        } else {
            singles.push((protocol, outcome));
        }
    }

    // Aggregation benefit needs the single-path goodput on *each* path.
    println!();
    for (multi_proto, single_proto) in [
        (Protocol::Mpquic, Protocol::Quic),
        (Protocol::Mptcp, Protocol::Tcp),
    ] {
        let g0 = run_file_transfer(&specs[..1], single_proto, size, 1, cap, &overrides).goodput;
        let g1 = run_file_transfer(&specs[1..], single_proto, size, 1, cap, &overrides).goodput;
        let gm = multis
            .iter()
            .find(|(p, _)| *p == multi_proto)
            .map(|(_, o)| o.goodput)
            .expect("ran above");
        println!(
            "experimental aggregation benefit {} vs {}: {:+.3}  (multi {:.2} Mbps, singles {:.2} / {:.2})",
            multi_proto.name(),
            single_proto.name(),
            aggregation_benefit(gm, &[g0, g1]),
            gm * 8.0 / 1e6,
            g0 * 8.0 / 1e6,
            g1 * 8.0 / 1e6,
        );
    }
}
